// Streaming access to trace files, chunk by chunk.
//
// TraceChunkReader opens a trace file, parses only the header (call-site
// table) and the chunk index, and then hands out fixed-size batches of
// decoded records on demand — the whole trace is never materialized. For
// chunked v2 and columnar v3 files the index comes from the footer; v1
// files have no index, but their records are contiguous and fixed width,
// so the reader synthesizes chunk boundaries arithmetically and serves
// them the same way. Consumers therefore never care which version is on
// disk. v3 index entries additionally carry each chunk's zone map
// (ChunkRef::zone), which predicate-carrying consumers use to skip
// chunks without decoding them.
//
// Read path: Open memory-maps the file read-only when the platform
// allows it, so cursors decode straight out of the page cache with no
// read syscalls or staging copies; when mapping fails (or on platforms
// without mmap) each cursor falls back to a private stdio handle.
//
// Concurrency model: the reader itself is immutable after Open and safe
// to share across threads. Each worker thread creates its own Cursor,
// which owns a private decode buffer (and file handle in the fallback
// path); Cursor::Read seeks to any chunk in any order, so N workers can
// stream disjoint chunk ranges in parallel (this is what
// analysis/pipeline.h does).

#ifndef TEMPO_SRC_TRACE_CHUNKED_H_
#define TEMPO_SRC_TRACE_CHUNKED_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/trace/callsite.h"
#include "src/trace/codec.h"
#include "src/trace/file.h"

namespace tempo {

class TraceChunkReader {
 public:
  // One chunk's location on disk. `stored_bytes` is the chunk's on-disk
  // footprint (fixed records * 48 for v1/v2, the compressed size for v3);
  // `zone` is valid only for v3 chunks.
  struct ChunkRef {
    uint64_t offset = 0;  // absolute file offset of the chunk
    uint32_t records = 0;
    uint64_t stored_bytes = 0;
    ChunkZone zone;
  };

  // Parses the header and chunk index of `path`. On failure returns
  // nullopt with the reason in `*error` when given.
  static std::optional<TraceChunkReader> Open(const std::string& path,
                                              TraceReadError* error = nullptr);

  uint32_t version() const { return version_; }
  uint64_t record_count() const { return record_count_; }
  size_t chunk_count() const { return chunks_.size(); }
  const ChunkRef& chunk(size_t index) const { return chunks_[index]; }
  const CallsiteRegistry& callsites() const { return callsites_; }
  const std::string& path() const { return path_; }
  // Total on-disk bytes of all record chunks (excludes header and index).
  uint64_t payload_bytes() const { return payload_bytes_; }
  // True when reads go through a shared memory map instead of stdio.
  bool mapped() const { return map_ != nullptr; }

  // A per-thread read position: private decode buffer, plus a private
  // file handle when the file is not memory-mapped. Spans returned by
  // Read are valid until the next Read on the same cursor (or its
  // destruction).
  class Cursor {
   public:
    explicit Cursor(const TraceChunkReader* reader);
    ~Cursor();
    Cursor(Cursor&& other) noexcept;
    Cursor& operator=(Cursor&& other) noexcept;
    Cursor(const Cursor&) = delete;
    Cursor& operator=(const Cursor&) = delete;

    // Decodes chunk `index`. Returns an empty span and sets error() on
    // I/O failure or a corrupt record; an empty trace has no chunks, so
    // an empty result always means failure.
    std::span<const TraceRecord> Read(size_t index) { return Read(index, kAllTraceFields); }

    // As Read(index), but decodes only the fields in `field_mask`
    // (projection pushdown). On v3 files the unselected stripes are
    // skipped, not decoded, and the corresponding record fields come
    // back default-initialised; v1/v2 rows are fixed width, so the mask
    // is ignored and every field is populated — consumers must treat
    // extra populated fields as allowed, not guaranteed.
    std::span<const TraceRecord> Read(size_t index, uint16_t field_mask);

    bool ok() const { return !failed_; }
    TraceReadError error() const { return error_; }

   private:
    // The chunk's stored bytes, from the map or read via file_ into raw_.
    const uint8_t* ChunkBytes(const ChunkRef& chunk);

    const TraceChunkReader* reader_;
    std::FILE* file_ = nullptr;
    std::vector<uint8_t> raw_;
    std::vector<TraceRecord> decoded_;
    V3DecodeScratch scratch_;
    // Field mask of the last successful v3 decode, or kAllTraceFields+1
    // (an impossible mask) when decoded_ is not reusable. When the next
    // Read wants the same chunk size and a superset of these fields, the
    // row buffer is recycled instead of re-initialised.
    uint16_t last_mask_ = kAllTraceFields + 1;
    bool failed_ = false;
    TraceReadError error_ = TraceReadError::kIo;
  };

  // Opens a new private cursor for one consumer thread.
  Cursor MakeCursor() const { return Cursor(this); }

 private:
  // A read-only memory map of the whole file, shared by all cursors.
  struct MappedFile {
    const uint8_t* data = nullptr;
    size_t size = 0;
    ~MappedFile();
  };

  TraceChunkReader() = default;

  std::string path_;
  uint32_t version_ = 0;
  uint64_t record_count_ = 0;
  uint64_t payload_bytes_ = 0;
  std::vector<ChunkRef> chunks_;
  CallsiteRegistry callsites_;
  std::shared_ptr<const MappedFile> map_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_CHUNKED_H_
