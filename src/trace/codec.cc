#include "src/trace/codec.h"

#include <cstdio>
#include <cstring>

namespace tempo {

namespace {

void Put64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Put32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Put16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

uint64_t Get64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint32_t Get32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint16_t Get16(const uint8_t* p) { return static_cast<uint16_t>(p[0] | (p[1] << 8)); }

}  // namespace

void EncodeRecord(const TraceRecord& record, std::vector<uint8_t>* out) {
  // Layout (little endian):
  //   0  timestamp   i64
  //   8  timer       u64
  //  16  timeout     i64
  //  24  expiry(low) u32   -- expiry is stored as ns / 1024 to fit 32+8 bits
  //  28  callsite    u32
  //  32  stack       u32
  //  36  pid         i16
  //  38  tid         i16
  //  40  op          u8
  //  41  expiry(hi)  u8
  //  42  flags       u16
  //  44  reserved    u32
  // Expiry is quantised to 1.024 us in the binary form; the in-memory form
  // keeps full resolution. This mirrors real binary trace formats that trade
  // precision of redundant fields for record density.
  const uint64_t expiry_q = static_cast<uint64_t>(record.expiry) >> 10;
  Put64(static_cast<uint64_t>(record.timestamp), out);
  Put64(record.timer, out);
  Put64(static_cast<uint64_t>(record.timeout), out);
  Put32(static_cast<uint32_t>(expiry_q & 0xffffffffu), out);
  Put32(record.callsite, out);
  Put32(record.stack, out);
  Put16(static_cast<uint16_t>(record.pid), out);
  Put16(static_cast<uint16_t>(record.tid), out);
  out->push_back(static_cast<uint8_t>(record.op));
  out->push_back(static_cast<uint8_t>((expiry_q >> 32) & 0xff));
  Put16(record.flags, out);
  Put32(0, out);
}

std::optional<TraceRecord> DecodeRecord(const uint8_t* data) {
  TraceRecord r;
  r.timestamp = static_cast<SimTime>(Get64(data + 0));
  r.timer = Get64(data + 8);
  r.timeout = static_cast<SimDuration>(Get64(data + 16));
  const uint64_t expiry_lo = Get32(data + 24);
  r.callsite = Get32(data + 28);
  r.stack = Get32(data + 32);
  r.pid = static_cast<Pid>(static_cast<int16_t>(Get16(data + 36)));
  r.tid = static_cast<Tid>(static_cast<int16_t>(Get16(data + 38)));
  const uint8_t op = data[40];
  if (op > static_cast<uint8_t>(TimerOp::kUnblock)) {
    return std::nullopt;
  }
  r.op = static_cast<TimerOp>(op);
  const uint64_t expiry_hi = data[41];
  r.expiry = static_cast<SimTime>(((expiry_hi << 32) | expiry_lo) << 10);
  r.flags = Get16(data + 42);
  return r;
}

std::vector<uint8_t> EncodeTrace(const std::vector<TraceRecord>& records) {
  std::vector<uint8_t> out;
  out.reserve(records.size() * kEncodedRecordSize);
  for (const TraceRecord& r : records) {
    EncodeRecord(r, &out);
  }
  return out;
}

std::vector<TraceRecord> DecodeTrace(const std::vector<uint8_t>& bytes) {
  std::vector<TraceRecord> out;
  out.reserve(bytes.size() / kEncodedRecordSize);
  for (size_t off = 0; off + kEncodedRecordSize <= bytes.size(); off += kEncodedRecordSize) {
    auto r = DecodeRecord(bytes.data() + off);
    if (!r.has_value()) {
      break;
    }
    out.push_back(*r);
  }
  return out;
}

std::string FormatRecord(const TraceRecord& record, const CallsiteRegistry& callsites) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%12.6f %-7s timer=%llu pid=%d tid=%d timeout=%s %s%s%s%s[%s]",
                ToSeconds(record.timestamp), TimerOpName(record.op),
                static_cast<unsigned long long>(record.timer), record.pid, record.tid,
                FormatDuration(record.timeout).c_str(), record.is_user() ? "user " : "kernel ",
                (record.flags & kFlagDeferrable) ? "deferrable " : "",
                (record.flags & kFlagRounded) ? "rounded " : "",
                (record.flags & kFlagWaitSatisfied) ? "satisfied " : "",
                callsites.Name(record.callsite).c_str());
  return buf;
}

}  // namespace tempo
