#include "src/trace/codec.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "src/trace/wire.h"

namespace tempo {

namespace {

void Put64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Put32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Put16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

uint64_t Get64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint32_t Get32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint16_t Get16(const uint8_t* p) { return static_cast<uint16_t>(p[0] | (p[1] << 8)); }

}  // namespace

void EncodeRecord(const TraceRecord& record, std::vector<uint8_t>* out) {
  // Layout (little endian):
  //   0  timestamp   i64
  //   8  timer       u64
  //  16  timeout     i64
  //  24  expiry(low) u32   -- expiry is stored as ns / 1024 to fit 32+8 bits
  //  28  callsite    u32
  //  32  stack       u32
  //  36  pid         i16
  //  38  tid         i16
  //  40  op          u8
  //  41  expiry(hi)  u8
  //  42  flags       u16
  //  44  reserved    u32
  // Expiry is quantised to 1.024 us in the binary form; the in-memory form
  // keeps full resolution. This mirrors real binary trace formats that trade
  // precision of redundant fields for record density.
  const uint64_t expiry_q = static_cast<uint64_t>(record.expiry) >> 10;
  Put64(static_cast<uint64_t>(record.timestamp), out);
  Put64(record.timer, out);
  Put64(static_cast<uint64_t>(record.timeout), out);
  Put32(static_cast<uint32_t>(expiry_q & 0xffffffffu), out);
  Put32(record.callsite, out);
  Put32(record.stack, out);
  Put16(static_cast<uint16_t>(record.pid), out);
  Put16(static_cast<uint16_t>(record.tid), out);
  out->push_back(static_cast<uint8_t>(record.op));
  out->push_back(static_cast<uint8_t>((expiry_q >> 32) & 0xff));
  Put16(record.flags, out);
  Put32(0, out);
}

std::optional<TraceRecord> DecodeRecord(const uint8_t* data) {
  TraceRecord r;
  r.timestamp = static_cast<SimTime>(Get64(data + 0));
  r.timer = Get64(data + 8);
  r.timeout = static_cast<SimDuration>(Get64(data + 16));
  const uint64_t expiry_lo = Get32(data + 24);
  r.callsite = Get32(data + 28);
  r.stack = Get32(data + 32);
  r.pid = static_cast<Pid>(static_cast<int16_t>(Get16(data + 36)));
  r.tid = static_cast<Tid>(static_cast<int16_t>(Get16(data + 38)));
  const uint8_t op = data[40];
  if (op > static_cast<uint8_t>(TimerOp::kUnblock)) {
    return std::nullopt;
  }
  r.op = static_cast<TimerOp>(op);
  const uint64_t expiry_hi = data[41];
  r.expiry = static_cast<SimTime>(((expiry_hi << 32) | expiry_lo) << 10);
  r.flags = Get16(data + 42);
  return r;
}

std::vector<uint8_t> EncodeTrace(const std::vector<TraceRecord>& records) {
  std::vector<uint8_t> out;
  out.reserve(records.size() * kEncodedRecordSize);
  for (const TraceRecord& r : records) {
    EncodeRecord(r, &out);
  }
  return out;
}

std::vector<TraceRecord> DecodeTrace(const std::vector<uint8_t>& bytes) {
  std::vector<TraceRecord> out;
  out.reserve(bytes.size() / kEncodedRecordSize);
  for (size_t off = 0; off + kEncodedRecordSize <= bytes.size(); off += kEncodedRecordSize) {
    auto r = DecodeRecord(bytes.data() + off);
    if (!r.has_value()) {
      break;
    }
    out.push_back(*r);
  }
  return out;
}

// ---------------------------------------------------------------------------
// v3 stripe codecs.

namespace {

void EncodeRaw(std::span<const uint64_t> values, std::vector<uint8_t>* out) {
  for (const uint64_t v : values) {
    Put64(v, out);
  }
}

void EncodeVarints(std::span<const uint64_t> values, std::vector<uint8_t>* out) {
  for (const uint64_t v : values) {
    wire::PutVarint(v, out);
  }
}

void EncodeDeltaVarints(std::span<const uint64_t> values, std::vector<uint8_t>* out) {
  uint64_t prev = 0;
  for (const uint64_t v : values) {
    wire::PutVarint(wire::ZigZag(v - prev), out);
    prev = v;
  }
}

void EncodeDict(std::span<const uint64_t> values, std::vector<uint8_t>* out) {
  // First-appearance order keeps the encoding deterministic for a given
  // value sequence (streamed == buffered).
  std::unordered_map<uint64_t, uint64_t> ids;
  std::vector<uint64_t> dict;
  std::vector<uint64_t> indexes;
  indexes.reserve(values.size());
  for (const uint64_t v : values) {
    auto [it, inserted] = ids.emplace(v, dict.size());
    if (inserted) {
      dict.push_back(v);
    }
    indexes.push_back(it->second);
  }
  wire::PutVarint(dict.size(), out);
  for (const uint64_t v : dict) {
    wire::PutVarint(v, out);
  }
  for (const uint64_t i : indexes) {
    wire::PutVarint(i, out);
  }
}

void EncodeRle(std::span<const uint64_t> values, std::vector<uint8_t>* out) {
  size_t i = 0;
  while (i < values.size()) {
    size_t run = 1;
    while (i + run < values.size() && values[i + run] == values[i]) {
      ++run;
    }
    wire::PutVarint(values[i], out);
    wire::PutVarint(run, out);
    i += run;
  }
}

}  // namespace

void EncodeStripe(std::span<const uint64_t> values, StripeCodec codec,
                  std::vector<uint8_t>* out) {
  switch (codec) {
    case StripeCodec::kRaw:
      EncodeRaw(values, out);
      return;
    case StripeCodec::kVarint:
      EncodeVarints(values, out);
      return;
    case StripeCodec::kDeltaVarint:
      EncodeDeltaVarints(values, out);
      return;
    case StripeCodec::kDict:
      EncodeDict(values, out);
      return;
    case StripeCodec::kRle:
      EncodeRle(values, out);
      return;
  }
}

StripeCodec EncodeStripeBest(std::span<const uint64_t> values, std::vector<uint8_t>* out) {
  static constexpr StripeCodec kCandidates[] = {
      StripeCodec::kRaw, StripeCodec::kVarint, StripeCodec::kDeltaVarint,
      StripeCodec::kDict, StripeCodec::kRle};
  StripeCodec best = StripeCodec::kRaw;
  std::vector<uint8_t> best_bytes;
  std::vector<uint8_t> scratch;
  for (const StripeCodec codec : kCandidates) {
    scratch.clear();
    EncodeStripe(values, codec, &scratch);
    if (codec == StripeCodec::kRaw || scratch.size() < best_bytes.size()) {
      best = codec;
      best_bytes.swap(scratch);
    }
  }
  out->insert(out->end(), best_bytes.begin(), best_bytes.end());
  return best;
}

namespace {

// Decode-side varint fast path: callers guarantee at least 10 readable
// bytes, so the per-byte bounds check of wire::GetVarint drops out and
// the common widths (1-byte dict indexes, 2-byte ids, 4-byte deltas)
// become straight-line loads instead of a shift loop.
inline const uint8_t* GetVarintUnchecked(const uint8_t* p, uint64_t* v) {
  const uint64_t b0 = p[0];
  if (b0 < 0x80) {
    *v = b0;
    return p + 1;
  }
  const uint64_t b1 = p[1];
  if (b1 < 0x80) {
    *v = (b0 & 0x7f) | b1 << 7;
    return p + 2;
  }
  const uint64_t b2 = p[2];
  if (b2 < 0x80) {
    *v = (b0 & 0x7f) | (b1 & 0x7f) << 7 | b2 << 14;
    return p + 3;
  }
  const uint64_t b3 = p[3];
  if (b3 < 0x80) {
    *v = (b0 & 0x7f) | (b1 & 0x7f) << 7 | (b2 & 0x7f) << 14 | b3 << 21;
    return p + 4;
  }
  uint64_t value = (b0 & 0x7f) | (b1 & 0x7f) << 7 | (b2 & 0x7f) << 14 | (b3 & 0x7f) << 21;
  unsigned shift = 28;
  p += 4;
  uint64_t byte;
  do {
    byte = *p++;
    value |= (byte & 0x7f) << shift;
    shift += 7;
  } while ((byte & 0x80) != 0 && shift < 70);
  if ((byte & 0x80) != 0) {
    return nullptr;  // encoding exceeds 10 bytes
  }
  *v = value;
  return p;
}

// The tail of a stripe (fewer than 10 bytes left) takes the checked path.
inline const uint8_t* NextVarint(const uint8_t* p, const uint8_t* end, uint64_t* v) {
  return static_cast<size_t>(end - p) >= 10 ? GetVarintUnchecked(p, v)
                                            : wire::GetVarint(p, end, v);
}

}  // namespace

ChunkParse DecodeStripe(StripeCodec codec, const uint8_t* data, size_t size,
                        size_t count, std::vector<uint64_t>* out) {
  // Sized up front and written through a raw pointer: this is the decode
  // hot loop, and per-value push_back bounds checks cost more than the
  // whole varint parse.
  out->resize(count);
  uint64_t* values = out->data();
  const uint8_t* p = data;
  const uint8_t* const end = data + size;
  switch (codec) {
    case StripeCodec::kRaw: {
      if (size < count * 8) {
        return ChunkParse::kTruncated;
      }
      if (size != count * 8) {
        return ChunkParse::kCorrupt;
      }
      for (size_t i = 0; i < count; ++i) {
        values[i] = Get64(p + i * 8);
      }
      return ChunkParse::kOk;
    }
    case StripeCodec::kVarint: {
      if (size == count) {
        // Candidate for the all-one-byte layout (enum-like lanes: op,
        // pid, callsite) — a plain widening copy the compiler
        // vectorizes. A continuation bit anywhere disproves it, and the
        // strict loop below re-decodes for the exact error.
        uint8_t high = 0;
        for (size_t i = 0; i < count; ++i) {
          high |= p[i];
          values[i] = p[i];
        }
        if ((high & 0x80) == 0) {
          return ChunkParse::kOk;
        }
      }
      for (size_t i = 0; i < count; ++i) {
        p = NextVarint(p, end, &values[i]);
        if (p == nullptr) {
          return ChunkParse::kTruncated;
        }
      }
      return p == end ? ChunkParse::kOk : ChunkParse::kCorrupt;
    }
    case StripeCodec::kDeltaVarint: {
      uint64_t prev = 0;
      for (size_t i = 0; i < count; ++i) {
        uint64_t v = 0;
        p = NextVarint(p, end, &v);
        if (p == nullptr) {
          return ChunkParse::kTruncated;
        }
        prev += wire::UnZigZag(v);
        values[i] = prev;
      }
      return p == end ? ChunkParse::kOk : ChunkParse::kCorrupt;
    }
    case StripeCodec::kDict: {
      uint64_t dict_count = 0;
      p = wire::GetVarint(p, end, &dict_count);
      if (p == nullptr) {
        return ChunkParse::kTruncated;
      }
      if (dict_count > count) {
        return ChunkParse::kCorrupt;  // more entries than values cannot happen
      }
      std::vector<uint64_t> dict;
      dict.reserve(dict_count);
      for (uint64_t i = 0; i < dict_count; ++i) {
        uint64_t v = 0;
        p = wire::GetVarint(p, end, &v);
        if (p == nullptr) {
          return ChunkParse::kTruncated;
        }
        dict.push_back(v);
      }
      for (size_t i = 0; i < count; ++i) {
        uint64_t index = 0;
        p = NextVarint(p, end, &index);
        if (p == nullptr) {
          return ChunkParse::kTruncated;
        }
        if (index >= dict.size()) {
          return ChunkParse::kCorrupt;
        }
        values[i] = dict[index];
      }
      return p == end ? ChunkParse::kOk : ChunkParse::kCorrupt;
    }
    case StripeCodec::kRle: {
      size_t filled = 0;
      while (filled < count) {
        uint64_t value = 0;
        uint64_t run = 0;
        p = NextVarint(p, end, &value);
        if (p != nullptr) {
          p = NextVarint(p, end, &run);
        }
        if (p == nullptr) {
          return ChunkParse::kTruncated;
        }
        if (run == 0 || run > count - filled) {
          return ChunkParse::kCorrupt;
        }
        std::fill_n(values + filled, static_cast<size_t>(run), value);
        filled += static_cast<size_t>(run);
      }
      return p == end ? ChunkParse::kOk : ChunkParse::kCorrupt;
    }
  }
  return ChunkParse::kCodec;
}

// ---------------------------------------------------------------------------
// TempoLz: a self-contained LZ77 with an LZ4-style token stream.
//
// Sequence layout: token byte (high nibble literal length, low nibble match
// length - 4, 15 meaning "extended by 255-terminated bytes"), literal
// length extension, literals, u16 little-endian match offset (>= 1), match
// length extension. The final sequence carries literals only — the stream
// simply ends after them. Matches are found with a 64Ki-entry hash table
// over 4-byte prefixes and are limited to a 64KiB window (u16 offset).

namespace {

constexpr size_t kLzMinMatch = 4;
constexpr size_t kLzMaxOffset = 0xffff;
constexpr unsigned kLzHashBits = 16;

uint32_t LzLoad32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint32_t LzHash(const uint8_t* p) {
  return (LzLoad32(p) * 2654435761u) >> (32 - kLzHashBits);
}

void LzPutLength(size_t len, std::vector<uint8_t>* out) {
  while (len >= 255) {
    out->push_back(255);
    len -= 255;
  }
  out->push_back(static_cast<uint8_t>(len));
}

class TempoLzCodec : public BlockCodec {
 public:
  BlockCodecId id() const override { return BlockCodecId::kTempoLz; }

  void Compress(const uint8_t* data, size_t size, std::vector<uint8_t>* out) const override {
    std::vector<uint32_t> table(size_t{1} << kLzHashBits, 0xffffffffu);
    const uint8_t* const end = data + size;
    const uint8_t* anchor = data;
    const uint8_t* p = data;
    // The last kLzMinMatch bytes never start a match; they flush as tail
    // literals.
    const uint8_t* const match_limit = size > kLzMinMatch ? end - kLzMinMatch : data;
    while (p < match_limit) {
      const uint32_t h = LzHash(p);
      const uint32_t candidate = table[h];
      table[h] = static_cast<uint32_t>(p - data);
      const uint8_t* match = candidate == 0xffffffffu ? nullptr : data + candidate;
      if (match == nullptr || p - match > static_cast<ptrdiff_t>(kLzMaxOffset) ||
          LzLoad32(match) != LzLoad32(p)) {
        ++p;
        continue;
      }
      size_t match_len = kLzMinMatch;
      while (p + match_len < end && match[match_len] == p[match_len]) {
        ++match_len;
      }
      EmitSequence(anchor, p - anchor, static_cast<size_t>(p - match), match_len, out);
      p += match_len;
      anchor = p;
    }
    EmitSequence(anchor, end - anchor, 0, 0, out);  // tail literals
  }

  bool Decompress(const uint8_t* data, size_t size, uint8_t* raw,
                  size_t raw_size) const override {
    const uint8_t* p = data;
    const uint8_t* const end = data + size;
    uint8_t* q = raw;
    uint8_t* const q_end = raw + raw_size;
    while (p < end) {
      const uint8_t token = *p++;
      size_t literal_len = token >> 4;
      if (literal_len == 15) {
        size_t extra = 0;
        if (!ReadLength(&p, end, &extra)) {
          return false;
        }
        literal_len += extra;
      }
      if (literal_len > static_cast<size_t>(end - p) ||
          literal_len > static_cast<size_t>(q_end - q)) {
        return false;
      }
      std::memcpy(q, p, literal_len);
      p += literal_len;
      q += literal_len;
      if (p == end) {
        break;  // final sequence: literals only
      }
      if (end - p < 2) {
        return false;
      }
      const size_t offset = static_cast<size_t>(p[0]) | (static_cast<size_t>(p[1]) << 8);
      p += 2;
      size_t match_len = (token & 0xf) + kLzMinMatch;
      if ((token & 0xf) == 15) {
        size_t extra = 0;
        if (!ReadLength(&p, end, &extra)) {
          return false;
        }
        match_len += extra;
      }
      if (offset == 0 || offset > static_cast<size_t>(q - raw) ||
          match_len > static_cast<size_t>(q_end - q)) {
        return false;
      }
      const uint8_t* src = q - offset;
      if (offset >= match_len) {
        std::memcpy(q, src, match_len);  // disjoint
      } else if (offset >= 8) {
        // Overlapping but by at least 8: each 8-byte block only reads
        // bytes written before the block started.
        size_t i = 0;
        for (; i + 8 <= match_len; i += 8) {
          std::memcpy(q + i, src + i, 8);
        }
        for (; i < match_len; ++i) {
          q[i] = src[i];
        }
      } else {
        for (size_t i = 0; i < match_len; ++i) {  // tight overlap: byte-wise
          q[i] = src[i];
        }
      }
      q += match_len;
    }
    return q == q_end;
  }

 private:
  static void EmitSequence(const uint8_t* literals, size_t literal_len, size_t offset,
                           size_t match_len, std::vector<uint8_t>* out) {
    const size_t lit_nibble = literal_len < 15 ? literal_len : 15;
    const size_t match_extra = match_len >= kLzMinMatch ? match_len - kLzMinMatch : 0;
    const size_t match_nibble = match_len == 0 ? 0 : (match_extra < 15 ? match_extra : 15);
    out->push_back(static_cast<uint8_t>((lit_nibble << 4) | match_nibble));
    if (lit_nibble == 15) {
      LzPutLength(literal_len - 15, out);
    }
    out->insert(out->end(), literals, literals + literal_len);
    if (match_len == 0) {
      return;  // tail
    }
    out->push_back(static_cast<uint8_t>(offset));
    out->push_back(static_cast<uint8_t>(offset >> 8));
    if (match_nibble == 15) {
      LzPutLength(match_extra - 15, out);
    }
  }

  // Reads a 255-terminated length extension (the sum of its bytes).
  static bool ReadLength(const uint8_t** p, const uint8_t* end, size_t* len) {
    *len = 0;
    while (*p < end) {
      const uint8_t byte = *(*p)++;
      *len += byte;
      if (byte != 255) {
        return true;
      }
    }
    return false;
  }
};

const TempoLzCodec kTempoLzCodec;

}  // namespace

const BlockCodec* GetBlockCodec(BlockCodecId id) {
  switch (id) {
    case BlockCodecId::kNone:
      return nullptr;  // identity: callers use the bytes as-is
    case BlockCodecId::kTempoLz:
      return &kTempoLzCodec;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Whole-chunk encode/decode.
//
// Chunk layout: u8 block codec id, u32 raw stripe-blob bytes, u32 stored
// bytes, then the (possibly compressed) stripe blob. The blob is ten
// stripes in field order, each "u8 stripe codec, u32 length, payload".

namespace {

constexpr size_t kV3FieldCount = 10;
constexpr size_t kV3ChunkHeader = 1 + 4 + 4;
constexpr uint8_t kMaxStripeCodec = static_cast<uint8_t>(StripeCodec::kRle);

}  // namespace

uint64_t PidDigestBit(Pid pid) {
  const uint64_t pid16 = static_cast<uint16_t>(static_cast<int16_t>(pid));
  return uint64_t{1} << ((pid16 * 0x9E3779B97F4A7C15ull) >> 58);
}

void EncodeV3Chunk(std::span<const TraceRecord> records, BlockCodecId block_codec,
                   std::vector<uint8_t>* out, ChunkZone* zone) {
  // Columnar lanes, in the field order the decoder expects. Expiry is
  // quantised to 1.024 us exactly as the v2 row codec does, so the two
  // formats decode to identical records.
  std::vector<uint64_t> lanes[kV3FieldCount];
  for (auto& lane : lanes) {
    lane.reserve(records.size());
  }
  ChunkZone z;
  z.valid = true;
  z.min_timestamp = records.empty() ? 0 : records.front().timestamp;
  z.max_timestamp = z.min_timestamp;
  for (const TraceRecord& r : records) {
    lanes[0].push_back(static_cast<uint64_t>(r.timestamp));
    lanes[1].push_back(r.timer);
    lanes[2].push_back(static_cast<uint64_t>(r.timeout));
    lanes[3].push_back(static_cast<uint64_t>(r.expiry) >> 10);
    lanes[4].push_back(r.callsite);
    lanes[5].push_back(r.stack);
    lanes[6].push_back(static_cast<uint16_t>(static_cast<int16_t>(r.pid)));
    lanes[7].push_back(static_cast<uint16_t>(static_cast<int16_t>(r.tid)));
    lanes[8].push_back(static_cast<uint8_t>(r.op));
    lanes[9].push_back(r.flags);
    z.min_timestamp = std::min(z.min_timestamp, r.timestamp);
    z.max_timestamp = std::max(z.max_timestamp, r.timestamp);
    z.pid_digest |= PidDigestBit(r.pid);
    z.op_mask |= static_cast<uint8_t>(1u << static_cast<uint8_t>(r.op));
  }

  std::vector<uint8_t> blob;
  blob.reserve(records.size() * 16);
  std::vector<uint8_t> stripe;
  for (size_t f = 0; f < kV3FieldCount; ++f) {
    stripe.clear();
    const StripeCodec codec = EncodeStripeBest(lanes[f], &stripe);
    blob.push_back(static_cast<uint8_t>(codec));
    Put32(static_cast<uint32_t>(stripe.size()), &blob);
    blob.insert(blob.end(), stripe.begin(), stripe.end());
  }

  // Compress only when it actually shrinks the blob; the chunk header
  // records which codec the bytes ended up in.
  BlockCodecId used = BlockCodecId::kNone;
  std::vector<uint8_t> packed;
  if (const BlockCodec* codec = GetBlockCodec(block_codec); codec != nullptr) {
    codec->Compress(blob.data(), blob.size(), &packed);
    if (packed.size() < blob.size()) {
      used = block_codec;
    }
  }
  const std::vector<uint8_t>& stored = used == BlockCodecId::kNone ? blob : packed;
  out->push_back(static_cast<uint8_t>(used));
  Put32(static_cast<uint32_t>(blob.size()), out);
  Put32(static_cast<uint32_t>(stored.size()), out);
  out->insert(out->end(), stored.begin(), stored.end());
  if (zone != nullptr) {
    *zone = z;
  }
}

ChunkParse DecodeV3Chunk(const uint8_t* data, size_t size, uint32_t expected_records,
                         V3DecodeScratch* scratch, std::vector<TraceRecord>* out,
                         uint16_t field_mask, bool recycle_rows) {
  if (size < kV3ChunkHeader) {
    return ChunkParse::kTruncated;
  }
  const uint8_t block_id = data[0];
  const uint32_t raw_bytes = Get32(data + 1);
  const uint32_t stored_bytes = Get32(data + 5);
  if (kV3ChunkHeader + uint64_t{stored_bytes} > size) {
    return ChunkParse::kTruncated;
  }
  if (kV3ChunkHeader + uint64_t{stored_bytes} != size) {
    return ChunkParse::kCorrupt;
  }

  const uint8_t* blob = data + kV3ChunkHeader;
  size_t blob_size = stored_bytes;
  if (block_id != static_cast<uint8_t>(BlockCodecId::kNone)) {
    const BlockCodec* codec = GetBlockCodec(static_cast<BlockCodecId>(block_id));
    if (codec == nullptr) {
      return ChunkParse::kCodec;
    }
    scratch->raw.resize(raw_bytes);
    if (!codec->Decompress(blob, blob_size, scratch->raw.data(), raw_bytes)) {
      return ChunkParse::kCorrupt;
    }
    blob = scratch->raw.data();
    blob_size = raw_bytes;
  } else if (raw_bytes != stored_bytes) {
    return ChunkParse::kCorrupt;
  }

  const uint8_t* p = blob;
  const uint8_t* const end = blob + blob_size;
  for (size_t f = 0; f < kV3FieldCount; ++f) {
    if (end - p < 5) {
      return ChunkParse::kTruncated;
    }
    const uint8_t stripe_codec = p[0];
    const uint32_t stripe_len = Get32(p + 1);
    p += 5;
    if (stripe_codec > kMaxStripeCodec) {
      return ChunkParse::kCodec;
    }
    if (stripe_len > static_cast<size_t>(end - p)) {
      return ChunkParse::kTruncated;
    }
    if ((field_mask & (1u << f)) != 0) {
      const ChunkParse parsed =
          DecodeStripe(static_cast<StripeCodec>(stripe_codec), p, stripe_len,
                       expected_records, &scratch->lanes[f]);
      if (parsed != ChunkParse::kOk) {
        return parsed;
      }
    }
    p += stripe_len;
  }
  if (p != end) {
    return ChunkParse::kCorrupt;
  }

  // Row transpose with lane-width validation folded in: the checks
  // accumulate branchlessly and the partial rows are dropped again on a
  // bad chunk, so the common path stays a single pass over the lanes.
  // resize() default-initialises the new rows, which is what unprojected
  // fields are specified to hold; recycled rows hold those defaults
  // already (the caller's contract), so the pass is skipped.
  const size_t base =
      recycle_rows ? out->size() - expected_records : out->size();
  if (!recycle_rows) {
    out->resize(base + expected_records);
  }
  TraceRecord* rows = out->data() + base;
  uint64_t overflow = 0;
  uint64_t op_bad = 0;
  if (field_mask == kAllTraceFields) {
    for (size_t i = 0; i < expected_records; ++i) {
      TraceRecord& r = rows[i];
      r.timestamp = static_cast<SimTime>(scratch->lanes[0][i]);
      r.timer = scratch->lanes[1][i];
      r.timeout = static_cast<SimDuration>(scratch->lanes[2][i]);
      r.expiry = static_cast<SimTime>(scratch->lanes[3][i] << 10);
      r.callsite = static_cast<CallsiteId>(scratch->lanes[4][i]);
      r.stack = static_cast<StackId>(scratch->lanes[5][i]);
      r.pid = static_cast<Pid>(static_cast<int16_t>(static_cast<uint16_t>(scratch->lanes[6][i])));
      r.tid = static_cast<Tid>(static_cast<int16_t>(static_cast<uint16_t>(scratch->lanes[7][i])));
      r.op = static_cast<TimerOp>(static_cast<uint8_t>(scratch->lanes[8][i]));
      r.flags = static_cast<uint16_t>(scratch->lanes[9][i]);
      overflow |= (scratch->lanes[4][i] | scratch->lanes[5][i]) >> 32;
      overflow |= (scratch->lanes[6][i] | scratch->lanes[7][i] | scratch->lanes[9][i]) >> 16;
      op_bad |= scratch->lanes[8][i] > static_cast<uint8_t>(TimerOp::kUnblock) ? 1 : 0;
    }
  } else {
    // Projected transpose: one tight loop per selected lane, so the cost
    // scales with the fields asked for; skipped lanes (stale scratch) are
    // never read and untouched fields keep their defaults.
    const size_t n = expected_records;
    if ((field_mask & kFieldTimestamp) != 0) {
      const uint64_t* lane = scratch->lanes[0].data();
      for (size_t i = 0; i < n; ++i) {
        rows[i].timestamp = static_cast<SimTime>(lane[i]);
      }
    }
    if ((field_mask & kFieldTimer) != 0) {
      const uint64_t* lane = scratch->lanes[1].data();
      for (size_t i = 0; i < n; ++i) {
        rows[i].timer = lane[i];
      }
    }
    if ((field_mask & kFieldTimeout) != 0) {
      const uint64_t* lane = scratch->lanes[2].data();
      for (size_t i = 0; i < n; ++i) {
        rows[i].timeout = static_cast<SimDuration>(lane[i]);
      }
    }
    if ((field_mask & kFieldExpiry) != 0) {
      const uint64_t* lane = scratch->lanes[3].data();
      for (size_t i = 0; i < n; ++i) {
        rows[i].expiry = static_cast<SimTime>(lane[i] << 10);
      }
    }
    if ((field_mask & kFieldCallsite) != 0) {
      const uint64_t* lane = scratch->lanes[4].data();
      for (size_t i = 0; i < n; ++i) {
        rows[i].callsite = static_cast<CallsiteId>(lane[i]);
        overflow |= lane[i] >> 32;
      }
    }
    if ((field_mask & kFieldStack) != 0) {
      const uint64_t* lane = scratch->lanes[5].data();
      for (size_t i = 0; i < n; ++i) {
        rows[i].stack = static_cast<StackId>(lane[i]);
        overflow |= lane[i] >> 32;
      }
    }
    if ((field_mask & kFieldPid) != 0) {
      const uint64_t* lane = scratch->lanes[6].data();
      for (size_t i = 0; i < n; ++i) {
        rows[i].pid = static_cast<Pid>(static_cast<int16_t>(static_cast<uint16_t>(lane[i])));
        overflow |= lane[i] >> 16;
      }
    }
    if ((field_mask & kFieldTid) != 0) {
      const uint64_t* lane = scratch->lanes[7].data();
      for (size_t i = 0; i < n; ++i) {
        rows[i].tid = static_cast<Tid>(static_cast<int16_t>(static_cast<uint16_t>(lane[i])));
        overflow |= lane[i] >> 16;
      }
    }
    if ((field_mask & kFieldOp) != 0) {
      const uint64_t* lane = scratch->lanes[8].data();
      for (size_t i = 0; i < n; ++i) {
        rows[i].op = static_cast<TimerOp>(static_cast<uint8_t>(lane[i]));
        op_bad |= lane[i] > static_cast<uint8_t>(TimerOp::kUnblock) ? 1 : 0;
      }
    }
    if ((field_mask & kFieldFlags) != 0) {
      const uint64_t* lane = scratch->lanes[9].data();
      for (size_t i = 0; i < n; ++i) {
        rows[i].flags = static_cast<uint16_t>(lane[i]);
        overflow |= lane[i] >> 16;
      }
    }
  }
  if (overflow != 0 || op_bad != 0) {
    out->resize(base);
    return ChunkParse::kCorrupt;
  }
  return ChunkParse::kOk;
}

std::string FormatRecord(const TraceRecord& record, const CallsiteRegistry& callsites) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%12.6f %-7s timer=%llu pid=%d tid=%d timeout=%s %s%s%s%s[%s]",
                ToSeconds(record.timestamp), TimerOpName(record.op),
                static_cast<unsigned long long>(record.timer), record.pid, record.tid,
                FormatDuration(record.timeout).c_str(), record.is_user() ? "user " : "kernel ",
                (record.flags & kFlagDeferrable) ? "deferrable " : "",
                (record.flags & kFlagRounded) ? "rounded " : "",
                (record.flags & kFlagWaitSatisfied) ? "satisfied " : "",
                callsites.Name(record.callsite).c_str());
  return buf;
}

}  // namespace tempo
