// Binary trace codec.
//
// The study's workflow was: log binary records in the kernel, then post-run
// read the buffer out and convert it to text for analysis (Section 3.2).
// This codec provides the equivalent: a fixed-width little-endian record
// encoding plus a text formatter. The binary form is also what the
// instrumentation-overhead benchmark serialises.

#ifndef TEMPO_SRC_TRACE_CODEC_H_
#define TEMPO_SRC_TRACE_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/trace/callsite.h"
#include "src/trace/record.h"

namespace tempo {

// Size of one encoded record in bytes.
inline constexpr size_t kEncodedRecordSize = 48;

// Appends the binary encoding of `record` to `out`.
void EncodeRecord(const TraceRecord& record, std::vector<uint8_t>* out);

// Decodes one record starting at `data` (which must have at least
// kEncodedRecordSize bytes). Returns nullopt on a corrupt op field.
std::optional<TraceRecord> DecodeRecord(const uint8_t* data);

// Encodes a whole trace.
std::vector<uint8_t> EncodeTrace(const std::vector<TraceRecord>& records);

// Decodes a whole trace; stops at the first corrupt record or trailing
// partial record.
std::vector<TraceRecord> DecodeTrace(const std::vector<uint8_t>& bytes);

// Renders one record as a human-readable line, resolving call-site names.
std::string FormatRecord(const TraceRecord& record, const CallsiteRegistry& callsites);

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_CODEC_H_
