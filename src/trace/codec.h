// Binary trace codec.
//
// The study's workflow was: log binary records in the kernel, then post-run
// read the buffer out and convert it to text for analysis (Section 3.2).
// This codec provides the equivalent: a fixed-width little-endian record
// encoding plus a text formatter. The binary form is also what the
// instrumentation-overhead benchmark serialises.

#ifndef TEMPO_SRC_TRACE_CODEC_H_
#define TEMPO_SRC_TRACE_CODEC_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/trace/callsite.h"
#include "src/trace/record.h"

namespace tempo {

// Size of one encoded record in bytes.
inline constexpr size_t kEncodedRecordSize = 48;

// ---------------------------------------------------------------------------
// v3 columnar chunk codec.
//
// A v3 chunk stores one contiguous stripe per TraceRecord field instead of
// interleaved rows. Each stripe is encoded with whichever per-column codec
// comes out smallest (delta+zig-zag+varint for the clock-like fields,
// dictionary or run-length for the id-like ones, raw as the bound), and the
// concatenated stripes are optionally passed through an LZ-style block
// codec. Every chunk is self-describing: codec ids travel with the data, so
// a reader built later can reject an unknown codec with a typed error
// instead of misparsing bytes.

// Per-stripe encodings. Values are wire bytes — renumbering breaks files.
enum class StripeCodec : uint8_t {
  kRaw = 0,          // 8-byte little-endian lanes, the fallback bound
  kVarint = 1,       // plain varints
  kDeltaVarint = 2,  // zig-zag(v[i] - v[i-1]) varints, v[-1] = 0
  kDict = 3,         // first-appearance dictionary + varint indexes
  kRle = 4,          // (value, run-length) varint pairs
};

// Outcome of decoding one stripe or chunk. kTruncated: the declared layout
// runs past the available bytes; kCorrupt: the bytes are self-inconsistent
// (dict index out of range, run lengths that disagree with the record
// count, trailing garbage); kCodec: a codec id this build does not know.
enum class ChunkParse : uint8_t { kOk = 0, kTruncated = 1, kCorrupt = 2, kCodec = 3 };

// Appends `values` encoded with `codec` to `out`. kDict/kRle encodings are
// deterministic (first-appearance dictionary order), which is what keeps
// streamed and buffered v3 files byte-identical.
void EncodeStripe(std::span<const uint64_t> values, StripeCodec codec,
                  std::vector<uint8_t>* out);

// Encodes `values` with every candidate codec and appends the smallest
// (ties break toward the lower codec id). Returns the winner.
StripeCodec EncodeStripeBest(std::span<const uint64_t> values, std::vector<uint8_t>* out);

// Decodes exactly `count` values of a stripe encoded as `codec` from
// [data, data + size). The stripe must consume `size` bytes exactly.
ChunkParse DecodeStripe(StripeCodec codec, const uint8_t* data, size_t size,
                        size_t count, std::vector<uint64_t>* out);

// ---------------------------------------------------------------------------
// Block compression: whole-chunk byte-level codecs behind one interface.
// kTempoLz is a self-contained LZ77 (hash-chain matcher, LZ4-style token
// stream) so the repo needs no external compression dependency.

enum class BlockCodecId : uint8_t {
  kNone = 0,
  kTempoLz = 1,
};

class BlockCodec {
 public:
  virtual ~BlockCodec() = default;
  virtual BlockCodecId id() const = 0;
  // Appends the compressed form of [data, data+size) to `out`.
  virtual void Compress(const uint8_t* data, size_t size, std::vector<uint8_t>* out) const = 0;
  // Decompresses [data, data+size) into exactly `raw_size` bytes at `raw`.
  // False when the stream is malformed or does not fill `raw_size`.
  virtual bool Decompress(const uint8_t* data, size_t size, uint8_t* raw,
                          size_t raw_size) const = 0;
};

// The codec for an id, or nullptr for unknown ids (the reader maps that to
// ChunkParse::kCodec / TraceReadError::kCodec).
const BlockCodec* GetBlockCodec(BlockCodecId id);

// ---------------------------------------------------------------------------
// Whole-chunk encode/decode.

// Zone map of one chunk, stored in the v3 index footer so queries can skip
// the chunk without decoding it. All fields are conservative summaries.
struct ChunkZone {
  bool valid = false;       // false: no zone (v1/v2 chunk) — never skip
  SimTime min_timestamp = 0;
  SimTime max_timestamp = 0;
  uint64_t pid_digest = 0;  // 64-bit bloom over the pids present
  uint8_t op_mask = 0;      // bit (1 << op) set when the op occurs
};

// The digest bit a pid contributes to ChunkZone::pid_digest. Pids travel
// the wire as 16-bit values, so the digest hashes that projection.
uint64_t PidDigestBit(Pid pid);

// Encodes `records` as one self-contained v3 chunk (chunk header +
// stripes, optionally block-compressed) appended to `out`; fills `zone`.
void EncodeV3Chunk(std::span<const TraceRecord> records, BlockCodecId block_codec,
                   std::vector<uint8_t>* out, ChunkZone* zone);

// Reusable scratch for DecodeV3Chunk so a streaming reader does not
// reallocate per chunk.
struct V3DecodeScratch {
  std::vector<uint8_t> raw;                // decompressed stripe blob
  std::vector<uint64_t> lanes[10];         // one decoded column per field
};

// Field bits for projection pushdown, in v3 stripe order. A consumer that
// declares the fields it reads lets the columnar decoder skip the other
// stripes entirely — unprojected fields come back default-initialised.
inline constexpr uint16_t kFieldTimestamp = 1u << 0;
inline constexpr uint16_t kFieldTimer = 1u << 1;
inline constexpr uint16_t kFieldTimeout = 1u << 2;
inline constexpr uint16_t kFieldExpiry = 1u << 3;
inline constexpr uint16_t kFieldCallsite = 1u << 4;
inline constexpr uint16_t kFieldStack = 1u << 5;
inline constexpr uint16_t kFieldPid = 1u << 6;
inline constexpr uint16_t kFieldTid = 1u << 7;
inline constexpr uint16_t kFieldOp = 1u << 8;
inline constexpr uint16_t kFieldFlags = 1u << 9;
inline constexpr uint16_t kAllTraceFields = (1u << 10) - 1;

// Decodes a chunk at [data, data + size) that must hold exactly
// `expected_records` records, appending them to `out`. `size` must span
// exactly one chunk. `field_mask` selects the stripes actually decoded
// (projection pushdown): unselected fields are default-initialised in the
// output records and their stripe payloads are only skipped over, not
// validated — codec ids are still checked, so an unreadable file is still
// reported as kCodec rather than silently projected around.
//
// `recycle_rows` is a streaming-reader optimisation: when true, the last
// `expected_records` rows of `out` are overwritten in place instead of
// being appended and re-initialised. The caller promises those rows came
// from a previous call whose field mask was a subset of `field_mask`, so
// every field outside `field_mask` still holds its default. On failure
// the recycled rows are left unspecified.
ChunkParse DecodeV3Chunk(const uint8_t* data, size_t size, uint32_t expected_records,
                         V3DecodeScratch* scratch, std::vector<TraceRecord>* out,
                         uint16_t field_mask = kAllTraceFields,
                         bool recycle_rows = false);

// Appends the binary encoding of `record` to `out`.
void EncodeRecord(const TraceRecord& record, std::vector<uint8_t>* out);

// Decodes one record starting at `data` (which must have at least
// kEncodedRecordSize bytes). Returns nullopt on a corrupt op field.
std::optional<TraceRecord> DecodeRecord(const uint8_t* data);

// Encodes a whole trace.
std::vector<uint8_t> EncodeTrace(const std::vector<TraceRecord>& records);

// Decodes a whole trace; stops at the first corrupt record or trailing
// partial record.
std::vector<TraceRecord> DecodeTrace(const std::vector<uint8_t>& bytes);

// Renders one record as a human-readable line, resolving call-site names.
std::string FormatRecord(const TraceRecord& record, const CallsiteRegistry& callsites);

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_CODEC_H_
