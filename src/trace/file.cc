#include "src/trace/file.h"

#include <cstdio>
#include <cstring>

namespace tempo {

namespace {

constexpr char kMagic[8] = {'T', 'E', 'M', 'P', 'O', 'T', 'R', 'C'};

void Put32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Put64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Put16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

// Bounds-checked little-endian reader.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool Read16(uint16_t* v) {
    if (offset_ + 2 > bytes_.size()) {
      return false;
    }
    *v = static_cast<uint16_t>(bytes_[offset_] | (bytes_[offset_ + 1] << 8));
    offset_ += 2;
    return true;
  }
  bool Read32(uint32_t* v) {
    if (offset_ + 4 > bytes_.size()) {
      return false;
    }
    *v = 0;
    for (int i = 3; i >= 0; --i) {
      *v = (*v << 8) | bytes_[offset_ + static_cast<size_t>(i)];
    }
    offset_ += 4;
    return true;
  }
  bool Read64(uint64_t* v) {
    if (offset_ + 8 > bytes_.size()) {
      return false;
    }
    *v = 0;
    for (int i = 7; i >= 0; --i) {
      *v = (*v << 8) | bytes_[offset_ + static_cast<size_t>(i)];
    }
    offset_ += 8;
    return true;
  }
  bool ReadString(size_t length, std::string* out) {
    if (offset_ + length > bytes_.size()) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(bytes_.data()) + offset_, length);
    offset_ += length;
    return true;
  }
  const uint8_t* Raw(size_t length) {
    if (offset_ + length > bytes_.size()) {
      return nullptr;
    }
    const uint8_t* p = bytes_.data() + offset_;
    offset_ += length;
    return p;
  }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t offset_ = 0;
};

}  // namespace

std::vector<uint8_t> SerializeTrace(const std::vector<TraceRecord>& records,
                                    const CallsiteRegistry& callsites) {
  std::vector<uint8_t> out;
  out.reserve(64 + records.size() * kEncodedRecordSize);
  out.resize(sizeof(kMagic));
  std::memcpy(out.data(), kMagic, sizeof(kMagic));
  Put32(kTraceFileVersion, &out);

  // Call-site table (slot 0, "?", is implicit).
  Put32(static_cast<uint32_t>(callsites.size()), &out);
  for (CallsiteId id = 1; id < callsites.size(); ++id) {
    Put32(id, &out);
    Put32(callsites.Parent(id), &out);
    const std::string& name = callsites.Name(id);
    Put16(static_cast<uint16_t>(name.size()), &out);
    out.insert(out.end(), name.begin(), name.end());
  }

  Put64(records.size(), &out);
  for (const TraceRecord& record : records) {
    EncodeRecord(record, &out);
  }
  return out;
}

std::optional<LoadedTrace> DeserializeTrace(const std::vector<uint8_t>& bytes) {
  Reader reader(bytes);
  const uint8_t* magic = reader.Raw(sizeof(kMagic));
  if (magic == nullptr || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  uint32_t version = 0;
  if (!reader.Read32(&version) || version != kTraceFileVersion) {
    return std::nullopt;
  }

  LoadedTrace trace;
  uint32_t callsite_count = 0;
  if (!reader.Read32(&callsite_count)) {
    return std::nullopt;
  }
  for (uint32_t i = 1; i < callsite_count; ++i) {
    uint32_t id = 0;
    uint32_t parent = 0;
    uint16_t name_length = 0;
    std::string name;
    if (!reader.Read32(&id) || !reader.Read32(&parent) || !reader.Read16(&name_length) ||
        !reader.ReadString(name_length, &name)) {
      return std::nullopt;
    }
    // Interning in file order reproduces the original dense ids.
    const CallsiteId assigned = trace.callsites.Intern(name, parent);
    if (assigned != id) {
      return std::nullopt;  // duplicate or out-of-order table: corrupt
    }
  }

  uint64_t record_count = 0;
  if (!reader.Read64(&record_count)) {
    return std::nullopt;
  }
  // A corrupt count must not drive a huge allocation: the payload cannot
  // hold more records than its remaining bytes.
  if (record_count > bytes.size() / kEncodedRecordSize) {
    return std::nullopt;
  }
  trace.records.reserve(record_count);
  for (uint64_t i = 0; i < record_count; ++i) {
    const uint8_t* raw = reader.Raw(kEncodedRecordSize);
    if (raw == nullptr) {
      return std::nullopt;
    }
    auto record = DecodeRecord(raw);
    if (!record.has_value()) {
      return std::nullopt;
    }
    // Stacks are not persisted; chains can be rebuilt from call-site
    // parents via CallsiteRegistry::Chain.
    record->stack = kEmptyStack;
    trace.records.push_back(*record);
  }
  return trace;
}

bool WriteTraceFile(const std::string& path, const std::vector<TraceRecord>& records,
                    const CallsiteRegistry& callsites) {
  const std::vector<uint8_t> bytes = SerializeTrace(records, callsites);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool ok = std::fclose(file) == 0 && written == bytes.size();
  return ok;
}

std::optional<LoadedTrace> ReadTraceFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return std::nullopt;
  }
  std::vector<uint8_t> bytes;
  uint8_t buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  std::fclose(file);
  return DeserializeTrace(bytes);
}

}  // namespace tempo
