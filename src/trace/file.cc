#include "src/trace/file.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <span>

#include "src/trace/wire.h"

namespace tempo {

namespace {

constexpr const char* kMagic = wire::kTraceMagic;
constexpr const char* kIndexMagic = wire::kTraceIndexMagic;
constexpr size_t kMagicSize = sizeof(wire::kTraceMagic);

std::nullopt_t Fail(TraceReadError reason, TraceReadError* error) {
  if (error != nullptr) {
    *error = reason;
  }
  return std::nullopt;
}

// Number of chunks a v2 payload of `records` at `capacity` occupies.
uint64_t ChunkCountFor(uint64_t records, uint32_t capacity) {
  return (records + capacity - 1) / capacity;
}

void SerializeV1(const std::vector<TraceRecord>& records,
                 std::vector<uint8_t>* out) {
  wire::Put64(records.size(), out);
  for (const TraceRecord& record : records) {
    EncodeRecord(record, out);
  }
}

void SerializeV2(const std::vector<TraceRecord>& records, uint32_t capacity,
                 std::vector<uint8_t>* out) {
  wire::Put64(records.size(), out);
  wire::Put32(capacity, out);

  const uint64_t chunk_count = ChunkCountFor(records.size(), capacity);
  std::vector<std::pair<uint64_t, uint32_t>> index;  // (offset, record count)
  index.reserve(chunk_count);
  size_t next = 0;
  while (next < records.size()) {
    const size_t take = std::min<size_t>(capacity, records.size() - next);
    index.emplace_back(out->size(), static_cast<uint32_t>(take));
    for (size_t i = 0; i < take; ++i) {
      EncodeRecord(records[next + i], out);
    }
    next += take;
  }

  const uint64_t index_offset = out->size();
  wire::Put32(static_cast<uint32_t>(chunk_count), out);
  for (const auto& [offset, count] : index) {
    wire::Put64(offset, out);
    wire::Put32(count, out);
  }
  wire::Put64(index_offset, out);
  out->insert(out->end(), kIndexMagic, kIndexMagic + kMagicSize);
}

// One v3 index-footer entry (offset, stored bytes, record count, zone).
constexpr size_t kV3IndexEntrySize = 8 + 4 + 4 + 8 + 8 + 8 + 1;

void PutV3IndexEntry(uint64_t offset, uint32_t stored, uint32_t records,
                     const ChunkZone& zone, std::vector<uint8_t>* out) {
  wire::Put64(offset, out);
  wire::Put32(stored, out);
  wire::Put32(records, out);
  wire::Put64(static_cast<uint64_t>(zone.min_timestamp), out);
  wire::Put64(static_cast<uint64_t>(zone.max_timestamp), out);
  wire::Put64(zone.pid_digest, out);
  out->push_back(zone.op_mask);
}

// The zone EncodeV3Chunk would have produced for `records` — used to
// cross-check a parsed footer against the chunks it claims to describe.
ChunkZone ZoneOf(std::span<const TraceRecord> records) {
  ChunkZone zone;
  zone.valid = true;
  zone.min_timestamp = records.empty() ? 0 : records.front().timestamp;
  zone.max_timestamp = zone.min_timestamp;
  for (const TraceRecord& r : records) {
    zone.min_timestamp = std::min(zone.min_timestamp, r.timestamp);
    zone.max_timestamp = std::max(zone.max_timestamp, r.timestamp);
    zone.pid_digest |= PidDigestBit(r.pid);
    zone.op_mask |= static_cast<uint8_t>(1u << static_cast<uint8_t>(r.op));
  }
  return zone;
}

TraceReadError ChunkParseError(ChunkParse parse) {
  switch (parse) {
    case ChunkParse::kOk:
      break;
    case ChunkParse::kTruncated:
      return TraceReadError::kTruncated;
    case ChunkParse::kCorrupt:
      return TraceReadError::kCorrupt;
    case ChunkParse::kCodec:
      return TraceReadError::kCodec;
  }
  return TraceReadError::kCorrupt;
}

void SerializeV3(const std::vector<TraceRecord>& records, uint32_t capacity,
                 BlockCodecId block_codec, std::vector<uint8_t>* out) {
  wire::Put64(records.size(), out);
  wire::Put32(capacity, out);

  struct Entry {
    uint64_t offset;
    uint32_t stored;
    uint32_t records;
    ChunkZone zone;
  };
  std::vector<Entry> index;
  index.reserve(ChunkCountFor(records.size(), capacity));
  size_t next = 0;
  while (next < records.size()) {
    const size_t take = std::min<size_t>(capacity, records.size() - next);
    Entry entry;
    entry.offset = out->size();
    entry.records = static_cast<uint32_t>(take);
    EncodeV3Chunk(std::span<const TraceRecord>(records.data() + next, take),
                  block_codec, out, &entry.zone);
    entry.stored = static_cast<uint32_t>(out->size() - entry.offset);
    index.push_back(entry);
    next += take;
  }

  const uint64_t index_offset = out->size();
  wire::Put32(static_cast<uint32_t>(index.size()), out);
  for (const Entry& entry : index) {
    PutV3IndexEntry(entry.offset, entry.stored, entry.records, entry.zone, out);
  }
  wire::Put64(index_offset, out);
  out->insert(out->end(), kIndexMagic, kIndexMagic + kMagicSize);
}

std::optional<LoadedTrace> DeserializeV3(wire::Reader* reader, size_t total_bytes,
                                         TraceReadError* error) {
  LoadedTrace trace;
  switch (wire::ReadCallsiteTable(reader, &trace.callsites)) {
    case wire::TableParse::kOk:
      break;
    case wire::TableParse::kTruncated:
      return Fail(TraceReadError::kTruncated, error);
    case wire::TableParse::kCorrupt:
      return Fail(TraceReadError::kCorrupt, error);
  }

  uint64_t record_count = 0;
  uint32_t capacity = 0;
  if (!reader->Read64(&record_count) || !reader->Read32(&capacity)) {
    return Fail(TraceReadError::kTruncated, error);
  }
  if (capacity == 0) {
    return Fail(TraceReadError::kCorrupt, error);
  }
  // Even at the best possible compression a record needs a varint index or
  // run share; one chunk of n records cannot be smaller than n bits. The
  // cheap sanity bound below only guards the reserve from a hostile count.
  if (record_count > total_bytes * 64) {
    return Fail(TraceReadError::kTruncated, error);
  }

  const uint64_t chunk_count = ChunkCountFor(record_count, capacity);
  struct Entry {
    uint64_t offset;
    uint32_t stored;
    uint32_t records;
    ChunkZone zone;
  };
  std::vector<Entry> decoded_index;
  decoded_index.reserve(chunk_count);
  trace.records.reserve(record_count);
  V3DecodeScratch scratch;
  for (uint64_t c = 0; c < chunk_count; ++c) {
    const uint32_t expected =
        c + 1 < chunk_count || record_count % capacity == 0
            ? capacity
            : static_cast<uint32_t>(record_count % capacity);
    Entry entry;
    entry.offset = reader->offset();
    entry.records = expected;
    // Peek the chunk header for the stored size, then hand the exact span
    // to the chunk decoder.
    const uint8_t* head = reader->Raw(9);
    if (head == nullptr) {
      return Fail(TraceReadError::kTruncated, error);
    }
    const uint32_t stored = wire::Get32(head + 5);
    if (reader->Raw(stored) == nullptr) {
      return Fail(TraceReadError::kTruncated, error);
    }
    entry.stored = 9 + stored;
    const size_t before = trace.records.size();
    const ChunkParse parse =
        DecodeV3Chunk(head, entry.stored, expected, &scratch, &trace.records);
    if (parse != ChunkParse::kOk) {
      return Fail(ChunkParseError(parse), error);
    }
    entry.zone = ZoneOf(std::span<const TraceRecord>(trace.records.data() + before,
                                                     expected));
    for (size_t i = before; i < trace.records.size(); ++i) {
      trace.records[i].stack = kEmptyStack;
    }
    decoded_index.push_back(entry);
  }

  // Index footer: every entry must agree with the chunks just decoded.
  const uint64_t index_offset = reader->offset();
  uint32_t indexed_chunks = 0;
  if (!reader->Read32(&indexed_chunks)) {
    return Fail(TraceReadError::kTruncated, error);
  }
  if (indexed_chunks != chunk_count) {
    return Fail(TraceReadError::kCorrupt, error);
  }
  for (uint64_t c = 0; c < chunk_count; ++c) {
    uint64_t offset = 0;
    uint32_t stored = 0;
    uint32_t count = 0;
    uint64_t min_ts = 0;
    uint64_t max_ts = 0;
    uint64_t digest = 0;
    if (!reader->Read64(&offset) || !reader->Read32(&stored) || !reader->Read32(&count) ||
        !reader->Read64(&min_ts) || !reader->Read64(&max_ts) || !reader->Read64(&digest)) {
      return Fail(TraceReadError::kTruncated, error);
    }
    const uint8_t* op_mask = reader->Raw(1);
    if (op_mask == nullptr) {
      return Fail(TraceReadError::kTruncated, error);
    }
    const Entry& entry = decoded_index[c];
    if (offset != entry.offset || stored != entry.stored || count != entry.records ||
        static_cast<SimTime>(min_ts) != entry.zone.min_timestamp ||
        static_cast<SimTime>(max_ts) != entry.zone.max_timestamp ||
        digest != entry.zone.pid_digest || *op_mask != entry.zone.op_mask) {
      return Fail(TraceReadError::kCorrupt, error);
    }
  }
  uint64_t stated_index_offset = 0;
  if (!reader->Read64(&stated_index_offset)) {
    return Fail(TraceReadError::kTruncated, error);
  }
  if (stated_index_offset != index_offset) {
    return Fail(TraceReadError::kCorrupt, error);
  }
  const uint8_t* trailer = reader->Raw(kMagicSize);
  if (trailer == nullptr) {
    return Fail(TraceReadError::kTruncated, error);
  }
  if (std::memcmp(trailer, kIndexMagic, kMagicSize) != 0) {
    return Fail(TraceReadError::kCorrupt, error);
  }
  return trace;
}

std::optional<LoadedTrace> DeserializeV1(wire::Reader* reader, size_t total_bytes,
                                         TraceReadError* error) {
  LoadedTrace trace;
  switch (wire::ReadCallsiteTable(reader, &trace.callsites)) {
    case wire::TableParse::kOk:
      break;
    case wire::TableParse::kTruncated:
      return Fail(TraceReadError::kTruncated, error);
    case wire::TableParse::kCorrupt:
      return Fail(TraceReadError::kCorrupt, error);
  }

  uint64_t record_count = 0;
  if (!reader->Read64(&record_count)) {
    return Fail(TraceReadError::kTruncated, error);
  }
  // A corrupt count must not drive a huge allocation: the payload cannot
  // hold more records than its remaining bytes.
  if (record_count > total_bytes / kEncodedRecordSize) {
    return Fail(TraceReadError::kTruncated, error);
  }
  trace.records.reserve(record_count);
  for (uint64_t i = 0; i < record_count; ++i) {
    const uint8_t* raw = reader->Raw(kEncodedRecordSize);
    if (raw == nullptr) {
      return Fail(TraceReadError::kTruncated, error);
    }
    auto record = DecodeRecord(raw);
    if (!record.has_value()) {
      return Fail(TraceReadError::kCorrupt, error);
    }
    // Stacks are not persisted; chains can be rebuilt from call-site
    // parents via CallsiteRegistry::Chain.
    record->stack = kEmptyStack;
    trace.records.push_back(*record);
  }
  return trace;
}

std::optional<LoadedTrace> DeserializeV2(wire::Reader* reader, size_t total_bytes,
                                         TraceReadError* error) {
  LoadedTrace trace;
  switch (wire::ReadCallsiteTable(reader, &trace.callsites)) {
    case wire::TableParse::kOk:
      break;
    case wire::TableParse::kTruncated:
      return Fail(TraceReadError::kTruncated, error);
    case wire::TableParse::kCorrupt:
      return Fail(TraceReadError::kCorrupt, error);
  }

  uint64_t record_count = 0;
  uint32_t capacity = 0;
  if (!reader->Read64(&record_count) || !reader->Read32(&capacity)) {
    return Fail(TraceReadError::kTruncated, error);
  }
  if (capacity == 0) {
    return Fail(TraceReadError::kCorrupt, error);
  }
  if (record_count > total_bytes / kEncodedRecordSize) {
    return Fail(TraceReadError::kTruncated, error);
  }

  // Chunk payloads are contiguous, so the records decode sequentially; the
  // index is then validated against where the chunks actually landed.
  const uint64_t chunk_count = ChunkCountFor(record_count, capacity);
  std::vector<uint64_t> chunk_offsets;
  chunk_offsets.reserve(chunk_count);
  trace.records.reserve(record_count);
  for (uint64_t i = 0; i < record_count; ++i) {
    if (i % capacity == 0) {
      chunk_offsets.push_back(reader->offset());
    }
    const uint8_t* raw = reader->Raw(kEncodedRecordSize);
    if (raw == nullptr) {
      return Fail(TraceReadError::kTruncated, error);
    }
    auto record = DecodeRecord(raw);
    if (!record.has_value()) {
      return Fail(TraceReadError::kCorrupt, error);
    }
    record->stack = kEmptyStack;
    trace.records.push_back(*record);
  }

  // Index footer: every entry must agree with the header-derived layout.
  const uint64_t index_offset = reader->offset();
  uint32_t indexed_chunks = 0;
  if (!reader->Read32(&indexed_chunks)) {
    return Fail(TraceReadError::kTruncated, error);
  }
  if (indexed_chunks != chunk_count) {
    return Fail(TraceReadError::kCorrupt, error);
  }
  for (uint64_t c = 0; c < chunk_count; ++c) {
    uint64_t offset = 0;
    uint32_t count = 0;
    if (!reader->Read64(&offset) || !reader->Read32(&count)) {
      return Fail(TraceReadError::kTruncated, error);
    }
    const uint32_t expected_count =
        c + 1 < chunk_count || record_count % capacity == 0
            ? capacity
            : static_cast<uint32_t>(record_count % capacity);
    if (offset != chunk_offsets[c] || count != expected_count) {
      return Fail(TraceReadError::kCorrupt, error);
    }
  }
  uint64_t stated_index_offset = 0;
  if (!reader->Read64(&stated_index_offset)) {
    return Fail(TraceReadError::kTruncated, error);
  }
  if (stated_index_offset != index_offset) {
    return Fail(TraceReadError::kCorrupt, error);
  }
  const uint8_t* trailer = reader->Raw(kMagicSize);
  if (trailer == nullptr) {
    return Fail(TraceReadError::kTruncated, error);
  }
  if (std::memcmp(trailer, kIndexMagic, kMagicSize) != 0) {
    return Fail(TraceReadError::kCorrupt, error);
  }
  return trace;
}

}  // namespace

const char* TraceReadErrorName(TraceReadError error) {
  switch (error) {
    case TraceReadError::kIo:
      return "cannot open or read file";
    case TraceReadError::kMagic:
      return "not a tempo trace (bad magic)";
    case TraceReadError::kVersion:
      return "unsupported trace format version";
    case TraceReadError::kTruncated:
      return "truncated file";
    case TraceReadError::kCorrupt:
      return "corrupt content";
    case TraceReadError::kCodec:
      return "unknown chunk codec (file from a newer writer?)";
  }
  return "?";
}

std::vector<uint8_t> SerializeTrace(const std::vector<TraceRecord>& records,
                                    const CallsiteRegistry& callsites,
                                    const TraceWriteOptions& options) {
  std::vector<uint8_t> out;
  out.reserve(64 + records.size() * kEncodedRecordSize);
  out.resize(kMagicSize);
  std::memcpy(out.data(), kMagic, kMagicSize);
  wire::Put32(options.version, &out);
  wire::PutCallsiteTable(callsites, &out);
  if (options.version == kTraceFileVersion) {
    SerializeV1(records, &out);
  } else if (options.version == kTraceFileVersionColumnar) {
    const uint32_t capacity = options.chunk_records > 0 ? options.chunk_records : 1;
    SerializeV3(records, capacity, options.block_codec, &out);
  } else {
    const uint32_t capacity = options.chunk_records > 0 ? options.chunk_records : 1;
    SerializeV2(records, capacity, &out);
  }
  return out;
}

std::optional<LoadedTrace> DeserializeTrace(const std::vector<uint8_t>& bytes,
                                            TraceReadError* error) {
  wire::Reader reader(bytes);
  const uint8_t* magic = reader.Raw(kMagicSize);
  if (magic == nullptr || std::memcmp(magic, kMagic, kMagicSize) != 0) {
    return Fail(TraceReadError::kMagic, error);
  }
  uint32_t version = 0;
  if (!reader.Read32(&version)) {
    return Fail(TraceReadError::kTruncated, error);
  }
  if (version == kTraceFileVersion) {
    return DeserializeV1(&reader, bytes.size(), error);
  }
  if (version == kTraceFileVersionChunked) {
    return DeserializeV2(&reader, bytes.size(), error);
  }
  if (version == kTraceFileVersionColumnar) {
    return DeserializeV3(&reader, bytes.size(), error);
  }
  return Fail(TraceReadError::kVersion, error);
}

bool WriteTraceFile(const std::string& path, const std::vector<TraceRecord>& records,
                    const CallsiteRegistry& callsites,
                    const TraceWriteOptions& options) {
  const std::vector<uint8_t> bytes = SerializeTrace(records, callsites, options);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool ok = std::fclose(file) == 0 && written == bytes.size();
  return ok;
}

std::optional<LoadedTrace> ReadTraceFile(const std::string& path,
                                         TraceReadError* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Fail(TraceReadError::kIo, error);
  }
  std::vector<uint8_t> bytes;
  uint8_t buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  std::fclose(file);
  return DeserializeTrace(bytes, error);
}

}  // namespace tempo
