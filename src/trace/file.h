// Trace files: persisting a trace (records + call-site table) to disk.
//
// The study's workflow was to log binary records into the kernel buffer,
// read them out after the run, and convert to text for analysis
// (Section 3.2). tempo's equivalent: TraceRun -> WriteTraceFile ->
// tools/trace2txt | tools/tracestat, or ReadTraceFile back into the
// analysis pipeline.
//
// Two on-disk layouts share one header (little endian):
//
//   v1 (monolithic):
//     "TEMPOTRC" magic, u32 version = 1
//     u32 callsite count, then per call-site: u32 id, u32 parent,
//         u16 name length, name bytes
//     u64 record count, then the codec.h fixed-width records.
//
//   v2 (chunked):
//     "TEMPOTRC" magic, u32 version = 2
//     call-site table as in v1
//     u64 record count, u32 chunk capacity (records per full chunk)
//     chunks of codec.h records, every chunk `capacity` records except a
//         shorter final one
//     index footer: u32 chunk count, then per chunk u64 file offset +
//         u32 record count; u64 footer offset; "TEMPOIDX" trailer magic.
//
//   v3 (columnar, compressed):
//     header as in v2 but version = 3
//     self-describing columnar chunks (codec.h EncodeV3Chunk): one stripe
//         per record field, per-stripe codec ids, optional block
//         compression — chunks are variable-sized on disk
//     index footer: u32 chunk count, then per chunk u64 file offset,
//         u32 stored bytes, u32 record count, and a zone map (u64 min/max
//         timestamp, u64 pid digest, u8 op mask); u64 footer offset;
//         "TEMPOIDX" trailer magic.
//
// The index footer lets TraceChunkReader (chunked.h) hand out chunks to
// parallel workers without materializing the whole trace; the v3 zone maps
// additionally let predicate-carrying consumers skip chunks without
// decoding them. ReadTraceFile keeps reading v1 and v2 files unchanged.

#ifndef TEMPO_SRC_TRACE_FILE_H_
#define TEMPO_SRC_TRACE_FILE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/trace/callsite.h"
#include "src/trace/codec.h"

namespace tempo {

inline constexpr uint32_t kTraceFileVersion = 1;
inline constexpr uint32_t kTraceFileVersionChunked = 2;
inline constexpr uint32_t kTraceFileVersionColumnar = 3;

// Records per full chunk in a v2 file. 64Ki records x 48 bytes = 3 MiB of
// payload per chunk: large enough that per-chunk overheads vanish, small
// enough that a 4-worker pipeline balances even short traces.
inline constexpr uint32_t kDefaultChunkRecords = 64 * 1024;

// Why a trace failed to load. io: the file could not be opened or read;
// magic: not a tempo trace; version: a tempo trace from an unknown format
// revision; truncated: the payload ends before the declared content does;
// corrupt: the content is self-inconsistent (bad record op, out-of-order
// call-site table, index that contradicts the header); codec: a v3 chunk
// uses a stripe or block codec this build does not know (a newer writer's
// file — distinct from corruption so tools can say so).
enum class TraceReadError : uint8_t {
  kIo = 0,
  kMagic = 1,
  kVersion = 2,
  kTruncated = 3,
  kCorrupt = 4,
  kCodec = 5,
};

// Short mnemonic ("truncated file", ...) for error messages.
const char* TraceReadErrorName(TraceReadError error);

// A trace loaded from disk.
struct LoadedTrace {
  std::vector<TraceRecord> records;
  CallsiteRegistry callsites;
};

// Output-format knobs for WriteTraceFile / SerializeTrace.
struct TraceWriteOptions {
  uint32_t version = kTraceFileVersionChunked;
  uint32_t chunk_records = kDefaultChunkRecords;  // v2/v3
  // v3 only: block codec applied per chunk (falls back to uncompressed
  // automatically on chunks the codec cannot shrink). Off by default:
  // the columnar stripes alone are ~0.3x of v2 and decode faster than
  // the row format, while TempoLz buys another ~25% of disk at roughly
  // half the scan speed — worth it for cold archives, not for traces
  // that are still being queried.
  BlockCodecId block_codec = BlockCodecId::kNone;
};

// Writes records + call-site table to `path` (chunked v2 by default).
// Returns false on I/O error.
bool WriteTraceFile(const std::string& path, const std::vector<TraceRecord>& records,
                    const CallsiteRegistry& callsites,
                    const TraceWriteOptions& options = {});

// Reads a trace file of either version; nullopt on failure, with the
// reason in `*error` when given.
std::optional<LoadedTrace> ReadTraceFile(const std::string& path,
                                         TraceReadError* error = nullptr);

// In-memory (de)serialisation, used by the file functions and directly
// testable without touching disk.
std::vector<uint8_t> SerializeTrace(const std::vector<TraceRecord>& records,
                                    const CallsiteRegistry& callsites,
                                    const TraceWriteOptions& options = {});
std::optional<LoadedTrace> DeserializeTrace(const std::vector<uint8_t>& bytes,
                                            TraceReadError* error = nullptr);

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_FILE_H_
