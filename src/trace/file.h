// Trace files: persisting a trace (records + call-site table) to disk.
//
// The study's workflow was to log binary records into the kernel buffer,
// read them out after the run, and convert to text for analysis
// (Section 3.2). tempo's equivalent: TraceRun -> WriteTraceFile ->
// tools/trace2txt | tools/tracestat, or ReadTraceFile back into the
// analysis pipeline.
//
// Format (little endian):
//   "TEMPOTRC" magic, u32 version
//   u32 callsite count, then per call-site: u32 id, u32 parent,
//       u16 name length, name bytes
//   u64 record count, then the codec.h fixed-width records.

#ifndef TEMPO_SRC_TRACE_FILE_H_
#define TEMPO_SRC_TRACE_FILE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/trace/callsite.h"
#include "src/trace/codec.h"

namespace tempo {

inline constexpr uint32_t kTraceFileVersion = 1;

// A trace loaded from disk.
struct LoadedTrace {
  std::vector<TraceRecord> records;
  CallsiteRegistry callsites;
};

// Writes records + call-site table to `path`. Returns false on I/O error.
bool WriteTraceFile(const std::string& path, const std::vector<TraceRecord>& records,
                    const CallsiteRegistry& callsites);

// Reads a trace file; nullopt on I/O error, bad magic, version mismatch or
// truncated/corrupt content.
std::optional<LoadedTrace> ReadTraceFile(const std::string& path);

// In-memory (de)serialisation, used by the file functions and directly
// testable without touching disk.
std::vector<uint8_t> SerializeTrace(const std::vector<TraceRecord>& records,
                                    const CallsiteRegistry& callsites);
std::optional<LoadedTrace> DeserializeTrace(const std::vector<uint8_t>& bytes);

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_FILE_H_
