// Predicates over trace records, evaluable at two granularities.
//
// A Predicate describes which records a consumer cares about: a half-open
// time range, a pid set, and an operation mask. It answers exactly
// (Matches, per record) and conservatively (MayMatch, per chunk zone map):
// when MayMatch returns false for a v3 chunk's zone, no record in that
// chunk can match, so the analysis pipeline skips the chunk without
// decoding it — the predicate-pushdown half of the v3 format. Zone maps
// are conservative by construction (min/max timestamp, a 64-bit pid bloom,
// an op bitmask), so pushdown never changes results, only work.

#ifndef TEMPO_SRC_TRACE_PREDICATE_H_
#define TEMPO_SRC_TRACE_PREDICATE_H_

#include <cstdint>
#include <vector>

#include "src/trace/codec.h"
#include "src/trace/record.h"

namespace tempo {

// Every op bit set: records of any op pass.
inline constexpr uint8_t kAllOpsMask =
    (1u << (static_cast<uint8_t>(TimerOp::kUnblock) + 1)) - 1;

struct Predicate {
  SimTime time_begin = INT64_MIN;  // inclusive
  SimTime time_end = kNeverTime;   // exclusive
  std::vector<Pid> pids;           // empty: any pid
  uint8_t op_mask = kAllOpsMask;

  bool MatchesAll() const {
    return time_begin == INT64_MIN && time_end == kNeverTime && pids.empty() &&
           op_mask == kAllOpsMask;
  }

  bool Matches(const TraceRecord& r) const {
    if (r.timestamp < time_begin || r.timestamp >= time_end) {
      return false;
    }
    if ((op_mask & (1u << static_cast<uint8_t>(r.op))) == 0) {
      return false;
    }
    if (!pids.empty()) {
      for (const Pid pid : pids) {
        if (pid == r.pid) {
          return true;
        }
      }
      return false;
    }
    return true;
  }

  // Could any record in a chunk with this zone match? Conservative: an
  // invalid zone (v1/v2 chunk, no index metadata) always may match.
  bool MayMatch(const ChunkZone& zone) const {
    if (!zone.valid) {
      return true;
    }
    if (zone.max_timestamp < time_begin || zone.min_timestamp >= time_end) {
      return false;
    }
    if ((op_mask & zone.op_mask) == 0) {
      return false;
    }
    if (!pids.empty()) {
      for (const Pid pid : pids) {
        if ((zone.pid_digest & PidDigestBit(pid)) != 0) {
          return true;
        }
      }
      return false;
    }
    return true;
  }
};

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_PREDICATE_H_
