#include "src/trace/record.h"

namespace tempo {

const char* TimerOpName(TimerOp op) {
  switch (op) {
    case TimerOp::kInit:
      return "init";
    case TimerOp::kSet:
      return "set";
    case TimerOp::kCancel:
      return "cancel";
    case TimerOp::kExpire:
      return "expire";
    case TimerOp::kBlock:
      return "block";
    case TimerOp::kUnblock:
      return "unblock";
  }
  return "?";
}

}  // namespace tempo
