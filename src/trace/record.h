// Trace record model.
//
// One record per timer-subsystem operation, mirroring the instrumentation
// points of the paper (Section 3): Linux logs at __mod_timer / del_timer /
// __run_timers plus the timeout-carrying system calls; Vista logs at
// KeSetTimer / KeCancelTimer, the clock-interrupt expiry DPC, and the thread
// wait/unblock fast path (with the user-supplied timeout and a boolean for
// "wait satisfied vs timed out").

#ifndef TEMPO_SRC_TRACE_RECORD_H_
#define TEMPO_SRC_TRACE_RECORD_H_

#include <cstdint>
#include <string>

#include "src/sim/process.h"
#include "src/sim/time.h"

namespace tempo {

// Operation recorded at a timer-subsystem trace point.
enum class TimerOp : uint8_t {
  kInit = 0,     // timer structure initialised (Linux init_timer)
  kSet = 1,      // timer armed / re-armed (__mod_timer, KeSetTimer, syscall)
  kCancel = 2,   // timer canceled before expiry (del_timer, KeCancelTimer)
  kExpire = 3,   // timer expired and its notification was delivered
  kBlock = 4,    // thread blocked with a timeout (Vista wait fast path)
  kUnblock = 5,  // thread unblocked; kFlagWaitSatisfied says why
};

// Returns a short mnemonic ("set", "cancel", ...) for an op.
const char* TimerOpName(TimerOp op);

// Record flag bits.
inline constexpr uint16_t kFlagUser = 1u << 0;           // set from user space
inline constexpr uint16_t kFlagDeferrable = 1u << 1;     // Linux deferrable timer
inline constexpr uint16_t kFlagRounded = 1u << 2;        // went through round_jiffies
inline constexpr uint16_t kFlagHighRes = 1u << 3;        // hrtimer, not wheel timer
inline constexpr uint16_t kFlagWaitSatisfied = 1u << 4;  // unblock: wait satisfied (not timeout)
inline constexpr uint16_t kFlagAbsolute = 1u << 5;       // expiry given as absolute time
inline constexpr uint16_t kFlagDynamicAlloc = 1u << 6;   // timer object freshly allocated (Vista)
inline constexpr uint16_t kFlagJiffyWheel = 1u << 7;     // Linux jiffy-wheel timer (expiry in jiffies)

// Identifier of the timer object. Linux timers are mostly statically
// allocated structs, so the id is stable across uses; Vista KTIMERs are
// frequently allocated per call (kFlagDynamicAlloc) so successive uses of
// the same logical timeout get different ids — the analysis must then
// cluster by call-site, exactly as described in Section 3.3.
using TimerId = uint64_t;
inline constexpr TimerId kInvalidTimerId = 0;

// Interned identifier of the code location that performed the operation.
using CallsiteId = uint32_t;
inline constexpr CallsiteId kUnknownCallsite = 0;

// Interned identifier of a captured call stack (sequence of CallsiteIds).
using StackId = uint32_t;
inline constexpr StackId kEmptyStack = 0;

// One logged timer-subsystem event. 48 bytes, trivially copyable; the
// binary codec (codec.h) serialises exactly these fields.
struct TraceRecord {
  SimTime timestamp = 0;       // when the operation happened
  TimerId timer = kInvalidTimerId;
  SimDuration timeout = 0;     // relative timeout as supplied (kSet/kBlock)
  SimTime expiry = 0;          // absolute expiry time after any rounding
  CallsiteId callsite = kUnknownCallsite;
  StackId stack = kEmptyStack;
  Pid pid = kKernelPid;
  Tid tid = 0;
  TimerOp op = TimerOp::kInit;
  uint16_t flags = 0;

  bool is_user() const { return (flags & kFlagUser) != 0; }
};

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_RECORD_H_
