#include "src/trace/relay.h"

#include <algorithm>
#include <utility>

namespace tempo {

namespace {

// Watermark sentinel: below every real timestamp.
constexpr SimTime kBeforeAllTime = INT64_MIN;

constexpr char kRecordsHelp[] = "Trace records harvested from a relay channel";
constexpr char kDroppedHelp[] =
    "Trace records dropped by a full relay channel (relayfs no-overwrite)";

}  // namespace

RelayChannelConfig RelayChannelConfig::ForCapacity(size_t records) {
  RelayChannelConfig config;
  if (records == 0) {
    records = 1;
  }
  config.sub_buffer_records = std::min<size_t>(records, config.sub_buffer_records);
  config.sub_buffer_count =
      (records + config.sub_buffer_records - 1) / config.sub_buffer_records + 1;
  return config;
}

RelayChannel::RelayChannel(std::string name, RelayChannelConfig config)
    : name_(std::move(name)),
      sub_records_(std::max<size_t>(1, config.sub_buffer_records)),
      slots_(std::max<size_t>(2, config.sub_buffer_count)) {}

bool RelayChannel::TryLog(const TraceRecord& record) {
  Slot& slot = slots_[produced_local_ % slots_.size()];
  if (open_count_ == 0) {
    // Opening a new sub-buffer: it must have been released by the consumer.
    // Relayfs no-overwrite semantics — when the ring is full, the new
    // record is dropped and the old ones stay.
    if (produced_local_ - consumed_.load(std::memory_order_acquire) >= slots_.size()) {
      dropped_.store(++dropped_local_, std::memory_order_relaxed);
      return false;
    }
    if (slot.records == nullptr) {
      slot.records = std::make_unique<TraceRecord[]>(sub_records_);
    }
  }
  slot.records[open_count_++] = record;  // plain store: producer owns the slot
  accepted_.store(++accepted_local_, std::memory_order_relaxed);
  if (open_count_ == sub_records_) {
    Publish();
  }
  return true;
}

void RelayChannel::Publish() {
  Slot& slot = slots_[produced_local_ % slots_.size()];
  slot.count = static_cast<uint32_t>(open_count_);
  open_count_ = 0;
  // The release pairs with Harvest's acquire: the consumer sees the slot's
  // records and count before it sees the advanced cursor.
  produced_.store(++produced_local_, std::memory_order_release);
}

void RelayChannel::FlushOpen() {
  // The open sub-buffer was claimed from the consumer when its first record
  // was written, so a non-empty one is always publishable.
  if (open_count_ > 0) {
    Publish();
  }
}

void RelayChannel::Close() {
  FlushOpen();
  closed_.store(true, std::memory_order_release);
}

size_t RelayChannel::Harvest(std::vector<TraceRecord>* out) {
  const uint64_t produced = produced_.load(std::memory_order_acquire);
  size_t harvested = 0;
  while (consumed_local_ < produced) {
    const Slot& slot = slots_[consumed_local_ % slots_.size()];
    out->insert(out->end(), slot.records.get(), slot.records.get() + slot.count);
    harvested += slot.count;
    // Release hands the slot back to the producer only after the copy-out.
    consumed_.store(++consumed_local_, std::memory_order_release);
  }
  return harvested;
}

RelayChannel* RelayChannelSet::Register(const std::string& name,
                                        RelayChannelConfig config) {
  std::lock_guard<std::mutex> lock(register_mu_);
  channels_.emplace_back(name, config);
  RelayChannel* channel = &channels_.back();
  channel->metric_records_ = obs::Registry::Global().GetCounter(
      "trace_relay_records", {{"channel", name}}, kRecordsHelp);
  channel->metric_dropped_ = obs::Registry::Global().GetCounter(
      "trace_relay_dropped", {{"channel", name}}, kDroppedHelp);
  // The count is published after the channel is fully constructed, so a
  // concurrently polling drainer sees a consistent prefix.
  count_.store(channels_.size(), std::memory_order_release);
  return channel;
}

void RelayChannelSet::CloseAll() {
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    channel(i)->Close();
  }
}

RelayDrainer::RelayDrainer(RelayChannelSet* channels, EmitFn emit)
    : channels_(channels),
      emit_(std::move(emit)),
      metric_polls_(obs::Registry::Global().GetCounter(
          "trace_relay_drainer_polls", {}, "RelayDrainer harvest passes")),
      metric_emitted_(obs::Registry::Global().GetCounter(
          "trace_relay_drainer_emitted", {},
          "Records emitted by the drainer's ordered merge")) {}

void RelayDrainer::HarvestAll() {
  const size_t n = channels_->size();
  if (lanes_.size() < n) {
    lanes_.resize(n);
  }
  for (size_t i = 0; i < n; ++i) {
    RelayChannel* channel = channels_->channel(i);
    Lane& lane = lanes_[i];
    if (lane.head > 0 && lane.head == lane.staged.size()) {
      lane.staged.clear();
      lane.head = 0;
    }
    // Order matters: read closed before harvesting (see Lane::closed).
    lane.closed = channel->closed();
    const size_t harvested = channel->Harvest(&lane.staged);
    if (harvested > 0) {
      lane.saw_records = true;
      lane.watermark = std::max(lane.watermark, lane.staged.back().timestamp);
    }
    // Mirror the channel's tallies into obs from the drainer thread only
    // (obs instruments are not internally synchronised).
    channel->obs_records_synced_ += harvested;
    if (channel->metric_records_ != nullptr) {
      channel->metric_records_->AdvanceTo(channel->obs_records_synced_);
    }
    if (channel->metric_dropped_ != nullptr) {
      channel->metric_dropped_->AdvanceTo(channel->dropped());
    }
  }
}

size_t RelayDrainer::EmitMerged(SimTime bound, bool bounded) {
  size_t emitted = 0;
  while (true) {
    Lane* best = nullptr;
    for (Lane& lane : lanes_) {
      if (lane.head >= lane.staged.size()) {
        continue;
      }
      // Ties go to the lowest channel index: the scan order makes the
      // merge stable without an explicit sequence key.
      if (best == nullptr ||
          lane.staged[lane.head].timestamp < best->staged[best->head].timestamp) {
        best = &lane;
      }
    }
    if (best == nullptr) {
      break;
    }
    const TraceRecord& record = best->staged[best->head];
    if (bounded && record.timestamp >= bound) {
      break;
    }
    emit_(record);
    ++best->head;
    ++emitted;
  }
  emitted_ += emitted;
  metric_emitted_->Inc(emitted);
  return emitted;
}

size_t RelayDrainer::Poll() {
  metric_polls_->Inc();
  HarvestAll();
  // Watermark rule: a record is safe to emit once it is strictly below
  // every open channel's largest harvested timestamp — no producer can
  // publish an earlier record any more (per-channel monotonicity). A
  // channel seen closed before its harvest has everything staged already,
  // so it cannot hold the merge back (its staged records still compete in
  // EmitMerged); a channel that has produced nothing yet holds everything
  // back.
  SimTime bound = kNeverTime;
  for (const Lane& lane : lanes_) {
    if (lane.closed) {
      continue;
    }
    bound = std::min(bound, lane.saw_records ? lane.watermark : kBeforeAllTime);
  }
  return EmitMerged(bound, /*bounded=*/true);
}

size_t RelayDrainer::Finish(bool flush_open_channels) {
  const size_t n = channels_->size();
  for (size_t i = 0; i < n; ++i) {
    RelayChannel* channel = channels_->channel(i);
    // Flushing is a producer-side operation: safe for closed channels (the
    // release/acquire on closed_ orders the producer's last write before
    // ours) and for open ones only under the caller's quiescence promise.
    if (channel->closed() || flush_open_channels) {
      channel->FlushOpen();
    }
  }
  HarvestAll();
  return EmitMerged(0, /*bounded=*/false);
}

size_t RelayDrainer::staged() const {
  size_t total = 0;
  for (const Lane& lane : lanes_) {
    total += lane.staged.size() - lane.head;
  }
  return total;
}

}  // namespace tempo
