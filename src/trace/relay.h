// Relay channels: lock-free per-producer trace recording.
//
// The paper's methodology only works because logging is nearly free: relayfs
// gives every CPU its own chain of sub-buffers, so the instrumented kernel
// writes records with plain stores and the (rare) sub-buffer switch is the
// only synchronisation — 236 cycles/record, <0.1% CPU (Section 3.2). This
// module is the same design in user space:
//
//   * A RelayChannel is a single-producer/single-consumer ring of fixed-size
//     sub-buffers. The producer writes records with plain stores into the
//     open sub-buffer and publishes a full sub-buffer with one release
//     store; no locks, no CAS, no virtual dispatch on the hot path.
//     "Single producer" includes a sequence of threads whose hand-offs are
//     ordered by a mutex (the sharded TimerService logs from whichever
//     thread holds the shard lock).
//   * Overflow keeps relayfs semantics: when the consumer has not freed a
//     sub-buffer, new records are dropped — never overwriting old ones —
//     and counted per channel (exported as trace_relay_dropped in obs).
//   * A RelayDrainer harvests full sub-buffers from every channel of a
//     RelayChannelSet and emits a stable, globally timestamp-ordered merge
//     (ties broken by channel registration order, then FIFO within a
//     channel). Poll() emits only the prefix proven safe by the per-channel
//     watermarks; Finish() flushes and emits everything once producers are
//     quiescent. The emit callback typically feeds a TraceStreamWriter
//     (stream_writer.h), so records flow to disk while the workload runs.
//
// Ordering contract: timestamps within one channel must be nondecreasing
// (true of any producer stamping from a monotonic clock). The drainer
// treats each channel's largest harvested timestamp as its watermark, so a
// violation can only delay emission, never reorder the merge key.

#ifndef TEMPO_SRC_TRACE_RELAY_H_
#define TEMPO_SRC_TRACE_RELAY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/trace/record.h"

namespace tempo {

// The Linux study's relayfs buffer was 512 MiB; the equivalent record
// budget, derived in one place instead of hard-coding a count.
inline constexpr size_t kRelayBufferBytes = size_t{512} << 20;
inline constexpr size_t kRelayDefaultCapacity = kRelayBufferBytes / sizeof(TraceRecord);

// Sub-buffer geometry of one channel. The defaults mirror relayfs practice:
// sub-buffers big enough that publication cost vanishes (4096 records ≈
// 224 KiB), few enough that an idle channel costs little.
struct RelayChannelConfig {
  size_t sub_buffer_records = 4096;
  size_t sub_buffer_count = 8;

  size_t capacity_records() const { return sub_buffer_records * sub_buffer_count; }

  // Geometry holding at least `records` (sub-buffers of at most
  // `sub_buffer_records` each, plus one slot of slack for a partial flush).
  static RelayChannelConfig ForCapacity(size_t records);
};

// One producer's ring of sub-buffers. Producer-side calls (TryLog,
// FlushOpen, Close) and consumer-side calls (Harvest) may race with each
// other but not with themselves; see the header comment for what counts as
// a single producer. Sub-buffer storage is allocated lazily, so an idle
// channel holds no record memory.
class RelayChannel {
 public:
  explicit RelayChannel(std::string name, RelayChannelConfig config = {});
  RelayChannel(const RelayChannel&) = delete;
  RelayChannel& operator=(const RelayChannel&) = delete;

  // --- producer side ---

  // Appends one record with plain stores; publishes the sub-buffer with a
  // release store when it fills. Returns false — dropping the record, never
  // overwriting — when every sub-buffer is full and unharvested.
  bool TryLog(const TraceRecord& record);

  // Publishes the partially filled open sub-buffer (no-op when empty), so
  // the consumer can harvest everything logged so far.
  void FlushOpen();

  // Flushes and marks the channel done; the drainer treats a closed
  // channel as unable to hold back the merge watermark.
  void Close();

  // --- consumer side ---

  // Moves the records of every published sub-buffer into `out`, freeing
  // the sub-buffers for reuse. Returns the number harvested.
  size_t Harvest(std::vector<TraceRecord>* out);

  // --- either side ---

  const std::string& name() const { return name_; }
  size_t capacity_records() const { return sub_records_ * slots_.size(); }
  size_t sub_buffer_records() const { return sub_records_; }
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  // Records accepted (published or still open) and dropped, respectively.
  uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  friend class RelayChannelSet;
  friend class RelayDrainer;

  struct Slot {
    std::unique_ptr<TraceRecord[]> records;  // lazily allocated
    uint32_t count = 0;                      // valid once published
  };

  void Publish();

  std::string name_;
  size_t sub_records_;
  std::vector<Slot> slots_;

  // Producer-owned state, padded away from the shared cursors.
  alignas(64) uint64_t produced_local_ = 0;  // sub-buffers published
  size_t open_count_ = 0;                    // records in the open sub-buffer
  uint64_t accepted_local_ = 0;
  uint64_t dropped_local_ = 0;

  // Publication cursor (producer writes, consumer reads).
  alignas(64) std::atomic<uint64_t> produced_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<bool> closed_{false};

  // Consumption cursor (consumer writes, producer reads).
  alignas(64) std::atomic<uint64_t> consumed_{0};
  uint64_t consumed_local_ = 0;  // consumer-owned mirror

  // Per-channel obs instruments, set by RelayChannelSet::Register and
  // updated only by the drainer thread.
  obs::Counter* metric_records_ = nullptr;
  obs::Counter* metric_dropped_ = nullptr;
  uint64_t obs_records_synced_ = 0;  // drainer-owned
};

// The registry of channels one drainer harvests. Channels are registered by
// producers during setup (registration is mutex-serialised and published
// with an atomic count, so a drainer already running sees a consistent
// prefix), and live for the set's lifetime.
class RelayChannelSet {
 public:
  RelayChannelSet() = default;
  RelayChannelSet(const RelayChannelSet&) = delete;
  RelayChannelSet& operator=(const RelayChannelSet&) = delete;

  // Creates and returns a new channel. The pointer stays valid for the
  // set's lifetime. Also resolves the channel's obs instruments
  // (trace_relay_records / trace_relay_dropped, labelled by channel).
  RelayChannel* Register(const std::string& name, RelayChannelConfig config = {});

  // Closes every channel (producers must be quiescent).
  void CloseAll();

  size_t size() const { return count_.load(std::memory_order_acquire); }
  RelayChannel* channel(size_t index) { return &channels_[index]; }

 private:
  std::mutex register_mu_;
  std::deque<RelayChannel> channels_;  // deque: stable addresses
  std::atomic<size_t> count_{0};
};

// Harvests every channel of a set and emits a stable timestamp-ordered
// merge. Single-threaded consumer: all calls must come from one thread (or
// be externally serialised).
class RelayDrainer {
 public:
  using EmitFn = std::function<void(const TraceRecord&)>;

  RelayDrainer(RelayChannelSet* channels, EmitFn emit);

  // Harvests published sub-buffers and emits every record proven globally
  // orderable: records strictly below the minimum watermark of all open
  // channels. Cheap when nothing new was published. Returns records
  // emitted by this call.
  size_t Poll();

  // Final drain: flushes partial sub-buffers of closed channels (and, with
  // `flush_open_channels`, of open ones — callers must then guarantee the
  // producers are quiescent), harvests, and emits everything staged in
  // stable timestamp order. Returns records emitted by this call.
  size_t Finish(bool flush_open_channels = true);

  uint64_t emitted() const { return emitted_; }
  // Records harvested but still held back by the watermark.
  size_t staged() const;

 private:
  struct Lane {
    std::vector<TraceRecord> staged;
    size_t head = 0;             // consumed prefix of `staged`
    bool saw_records = false;    // watermark is meaningless until first harvest
    // Snapshot of the channel's closed flag taken BEFORE the harvest, so
    // that when it reads true, the release/acquire pair on closed_
    // guarantees the channel's final flush was in that harvest — a lane
    // may only stop bounding the merge once all its records are staged.
    bool closed = false;
    SimTime watermark = 0;       // largest harvested timestamp
  };

  void HarvestAll();
  size_t EmitMerged(SimTime bound, bool bounded);

  RelayChannelSet* channels_;
  EmitFn emit_;
  std::vector<Lane> lanes_;
  uint64_t emitted_ = 0;
  obs::Counter* metric_polls_;
  obs::Counter* metric_emitted_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_RELAY_H_
