#include "src/trace/stream_writer.h"

#include <cstring>

#include "src/trace/wire.h"

namespace tempo {

namespace {
constexpr size_t kMagicSize = sizeof(wire::kTraceMagic);
constexpr size_t kCopyBlock = size_t{1} << 16;
}  // namespace

TraceStreamWriter::TraceStreamWriter(std::string path,
                                     const CallsiteRegistry* callsites,
                                     const TraceWriteOptions& options)
    : path_(std::move(path)),
      spill_path_(path_ + ".spill"),
      callsites_(callsites),
      capacity_(options.chunk_records > 0 ? options.chunk_records : 1) {
  if (options.version != kTraceFileVersionChunked) {
    ok_ = false;
    return;
  }
  spill_ = std::fopen(spill_path_.c_str(), "wb");
  if (spill_ == nullptr) {
    ok_ = false;
    return;
  }
  chunk_.reserve(static_cast<size_t>(capacity_) * kEncodedRecordSize);
}

TraceStreamWriter::~TraceStreamWriter() { Close(); }

bool TraceStreamWriter::Append(const TraceRecord& record) {
  if (!ok_ || closed_) {
    return false;
  }
  EncodeRecord(record, &chunk_);
  ++chunk_records_;
  ++records_;
  if (chunk_records_ == capacity_) {
    FlushChunk();
  }
  return ok_;
}

void TraceStreamWriter::FlushChunk() {
  if (chunk_records_ == 0) {
    return;
  }
  index_.emplace_back(spill_bytes_, chunk_records_);
  if (std::fwrite(chunk_.data(), 1, chunk_.size(), spill_) != chunk_.size()) {
    FailAndCleanup();
    return;
  }
  spill_bytes_ += chunk_.size();
  chunk_.clear();
  chunk_records_ = 0;
}

bool TraceStreamWriter::Close() {
  if (closed_) {
    return ok_;
  }
  closed_ = true;
  if (!ok_) {
    FailAndCleanup();
    return false;
  }
  FlushChunk();
  if (!ok_) {
    return false;
  }

  // Everything that precedes the chunks in the v2 layout is now known.
  std::vector<uint8_t> header(kMagicSize);
  std::memcpy(header.data(), wire::kTraceMagic, kMagicSize);
  wire::Put32(kTraceFileVersionChunked, &header);
  wire::PutCallsiteTable(*callsites_, &header);
  wire::Put64(records_, &header);
  wire::Put32(capacity_, &header);
  const uint64_t header_size = header.size();

  // The footer's offsets are spill-relative until rebased past the header —
  // this is what makes the result byte-identical to SerializeTrace.
  std::vector<uint8_t> footer;
  wire::Put32(static_cast<uint32_t>(index_.size()), &footer);
  for (const auto& [offset, count] : index_) {
    wire::Put64(header_size + offset, &footer);
    wire::Put32(count, &footer);
  }
  wire::Put64(header_size + spill_bytes_, &footer);
  footer.insert(footer.end(), wire::kTraceIndexMagic,
                wire::kTraceIndexMagic + kMagicSize);

  bool ok = std::fclose(spill_) == 0;
  spill_ = nullptr;
  std::FILE* in = ok ? std::fopen(spill_path_.c_str(), "rb") : nullptr;
  std::FILE* out = in != nullptr ? std::fopen(path_.c_str(), "wb") : nullptr;
  ok = out != nullptr &&
       std::fwrite(header.data(), 1, header.size(), out) == header.size();
  if (ok) {
    uint8_t block[kCopyBlock];
    size_t n = 0;
    while (ok && (n = std::fread(block, 1, sizeof(block), in)) > 0) {
      ok = std::fwrite(block, 1, n, out) == n;
    }
    ok = ok && std::ferror(in) == 0;
  }
  ok = ok && std::fwrite(footer.data(), 1, footer.size(), out) == footer.size();
  if (in != nullptr) {
    std::fclose(in);
  }
  if (out != nullptr) {
    ok = (std::fclose(out) == 0) && ok;
  }
  std::remove(spill_path_.c_str());
  if (!ok) {
    std::remove(path_.c_str());  // never leave a half-written trace behind
    ok_ = false;
  }
  return ok_;
}

void TraceStreamWriter::FailAndCleanup() {
  ok_ = false;
  if (spill_ != nullptr) {
    std::fclose(spill_);
    spill_ = nullptr;
  }
  std::remove(spill_path_.c_str());
}

}  // namespace tempo
