#include "src/trace/stream_writer.h"

#include <cstring>

#include "src/trace/wire.h"

namespace tempo {

namespace {
constexpr size_t kMagicSize = sizeof(wire::kTraceMagic);
constexpr size_t kCopyBlock = size_t{1} << 16;
}  // namespace

TraceStreamWriter::TraceStreamWriter(std::string path,
                                     const CallsiteRegistry* callsites,
                                     const TraceWriteOptions& options)
    : path_(std::move(path)),
      spill_path_(path_ + ".spill"),
      callsites_(callsites),
      version_(options.version),
      capacity_(options.chunk_records > 0 ? options.chunk_records : 1),
      block_codec_(options.block_codec) {
  if (version_ != kTraceFileVersionChunked && version_ != kTraceFileVersionColumnar) {
    ok_ = false;
    return;
  }
  spill_ = std::fopen(spill_path_.c_str(), "wb");
  if (spill_ == nullptr) {
    ok_ = false;
    return;
  }
  if (version_ == kTraceFileVersionColumnar) {
    pending_.reserve(capacity_);
  } else {
    chunk_.reserve(static_cast<size_t>(capacity_) * kEncodedRecordSize);
  }
}

TraceStreamWriter::~TraceStreamWriter() { Close(); }

bool TraceStreamWriter::Append(const TraceRecord& record) {
  if (!ok_ || closed_) {
    return false;
  }
  if (version_ == kTraceFileVersionColumnar) {
    pending_.push_back(record);
  } else {
    EncodeRecord(record, &chunk_);
  }
  ++chunk_records_;
  ++records_;
  if (chunk_records_ == capacity_) {
    FlushChunk();
  }
  return ok_;
}

void TraceStreamWriter::FlushChunk() {
  if (chunk_records_ == 0) {
    return;
  }
  IndexEntry entry;
  entry.offset = spill_bytes_;
  entry.records = chunk_records_;
  if (version_ == kTraceFileVersionColumnar) {
    chunk_.clear();
    EncodeV3Chunk(std::span<const TraceRecord>(pending_.data(), pending_.size()),
                  block_codec_, &chunk_, &entry.zone);
    pending_.clear();
  }
  entry.stored = chunk_.size();
  index_.push_back(entry);
  if (std::fwrite(chunk_.data(), 1, chunk_.size(), spill_) != chunk_.size()) {
    FailAndCleanup();
    return;
  }
  spill_bytes_ += chunk_.size();
  chunk_.clear();
  chunk_records_ = 0;
}

bool TraceStreamWriter::Close() {
  if (closed_) {
    return ok_;
  }
  closed_ = true;
  if (!ok_) {
    FailAndCleanup();
    return false;
  }
  FlushChunk();
  if (!ok_) {
    return false;
  }

  // Everything that precedes the chunks in the chunked layouts is now known.
  std::vector<uint8_t> header(kMagicSize);
  std::memcpy(header.data(), wire::kTraceMagic, kMagicSize);
  wire::Put32(version_, &header);
  wire::PutCallsiteTable(*callsites_, &header);
  wire::Put64(records_, &header);
  wire::Put32(capacity_, &header);
  const uint64_t header_size = header.size();

  // The footer's offsets are spill-relative until rebased past the header —
  // this is what makes the result byte-identical to SerializeTrace.
  std::vector<uint8_t> footer;
  wire::Put32(static_cast<uint32_t>(index_.size()), &footer);
  for (const IndexEntry& entry : index_) {
    wire::Put64(header_size + entry.offset, &footer);
    if (version_ == kTraceFileVersionColumnar) {
      wire::Put32(static_cast<uint32_t>(entry.stored), &footer);
    }
    wire::Put32(entry.records, &footer);
    if (version_ == kTraceFileVersionColumnar) {
      wire::Put64(static_cast<uint64_t>(entry.zone.min_timestamp), &footer);
      wire::Put64(static_cast<uint64_t>(entry.zone.max_timestamp), &footer);
      wire::Put64(entry.zone.pid_digest, &footer);
      footer.push_back(entry.zone.op_mask);
    }
  }
  wire::Put64(header_size + spill_bytes_, &footer);
  footer.insert(footer.end(), wire::kTraceIndexMagic,
                wire::kTraceIndexMagic + kMagicSize);

  bool ok = std::fclose(spill_) == 0;
  spill_ = nullptr;
  std::FILE* in = ok ? std::fopen(spill_path_.c_str(), "rb") : nullptr;
  std::FILE* out = in != nullptr ? std::fopen(path_.c_str(), "wb") : nullptr;
  ok = out != nullptr &&
       std::fwrite(header.data(), 1, header.size(), out) == header.size();
  if (ok) {
    uint8_t block[kCopyBlock];
    size_t n = 0;
    while (ok && (n = std::fread(block, 1, sizeof(block), in)) > 0) {
      ok = std::fwrite(block, 1, n, out) == n;
    }
    ok = ok && std::ferror(in) == 0;
  }
  ok = ok && std::fwrite(footer.data(), 1, footer.size(), out) == footer.size();
  if (in != nullptr) {
    std::fclose(in);
  }
  if (out != nullptr) {
    ok = (std::fclose(out) == 0) && ok;
  }
  std::remove(spill_path_.c_str());
  if (!ok) {
    std::remove(path_.c_str());  // never leave a half-written trace behind
    ok_ = false;
  }
  return ok_;
}

void TraceStreamWriter::FailAndCleanup() {
  ok_ = false;
  if (spill_ != nullptr) {
    std::fclose(spill_);
    spill_ = nullptr;
  }
  std::remove(spill_path_.c_str());
}

}  // namespace tempo
