// Streaming v2/v3 trace writer.
//
// The study's instrumented kernels never held a whole trace in memory:
// relayfs sub-buffers went to disk as they filled, and analysis ran on the
// files afterwards (Section 3.2). TraceStreamWriter is the file-side half of
// that pipeline for tempo: records are appended one at a time (typically by
// a RelayDrainer's emit callback), encoded chunks go to disk as they fill,
// and Close() produces a file byte-identical to what
// SerializeTrace(records, callsites, {version = 2 or 3}) would have built
// from the same record sequence — so tracestat, TraceChunkReader and
// PipelineRunner consume streamed and buffered traces interchangeably.
//
// Both layouts put the call-site table and the record count *before* the
// chunks, and both are only known once recording ends. The writer therefore
// streams chunks to a spill file (`path` + ".spill") and assembles the
// final file at Close(): header, spill contents copied through a small
// buffer, then the index footer with offsets rebased past the header. Peak
// memory is one open chunk regardless of trace length — for v3, the open
// chunk's records stay unencoded until the chunk fills, because the
// columnar codec needs the whole column to pick stripe encodings.
//
// Single-threaded: all calls must come from one thread (the drainer).

#ifndef TEMPO_SRC_TRACE_STREAM_WRITER_H_
#define TEMPO_SRC_TRACE_STREAM_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/callsite.h"
#include "src/trace/file.h"

namespace tempo {

class TraceStreamWriter {
 public:
  // Starts a streamed v2 or v3 trace at `path`. The registry is read at
  // Close(), so call sites may still be interned while recording; it must
  // outlive the writer. `options.version` must be a chunked version (v1
  // has no index and gains nothing from streaming).
  TraceStreamWriter(std::string path, const CallsiteRegistry* callsites,
                    const TraceWriteOptions& options = {});
  ~TraceStreamWriter();
  TraceStreamWriter(const TraceStreamWriter&) = delete;
  TraceStreamWriter& operator=(const TraceStreamWriter&) = delete;

  // Appends one record; flushes the chunk to the spill file when it fills.
  // Returns false once the writer has failed (I/O error or bad options).
  bool Append(const TraceRecord& record);

  // Flushes the final partial chunk, assembles the final file, and removes
  // the spill file. Returns false if any step failed; idempotent.
  bool Close();

  bool ok() const { return ok_; }
  uint64_t records_written() const { return records_; }
  uint64_t chunks_flushed() const { return index_.size(); }

 private:
  void FlushChunk();
  void FailAndCleanup();

  // One flushed chunk's index-footer entry (offsets spill-relative until
  // Close rebases them past the header).
  struct IndexEntry {
    uint64_t offset = 0;
    uint64_t stored = 0;
    uint32_t records = 0;
    ChunkZone zone;
  };

  std::string path_;
  std::string spill_path_;
  const CallsiteRegistry* callsites_;
  uint32_t version_;
  uint32_t capacity_;
  BlockCodecId block_codec_;

  std::FILE* spill_ = nullptr;
  std::vector<uint8_t> chunk_;           // encoded bytes of the open chunk (v2)
  std::vector<TraceRecord> pending_;     // unencoded records of the open chunk (v3)
  uint32_t chunk_records_ = 0;           // records in the open chunk
  uint64_t spill_bytes_ = 0;             // bytes already flushed to the spill
  std::vector<IndexEntry> index_;
  uint64_t records_ = 0;
  bool ok_ = true;
  bool closed_ = false;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_STREAM_WRITER_H_
