#include "src/trace/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

namespace tempo {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Creates a bound, listening IPv4 socket; -1 with *error set on failure.
int Listen(const std::string& address, uint16_t port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = Errno("socket");
    }
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "bad bind address " + address;
    }
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    if (error != nullptr) {
      *error = Errno("bind/listen");
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

// --- InProcessPipeHub ---

class InProcessPipeHub::PipeSink : public ByteSink {
 public:
  explicit PipeSink(std::shared_ptr<Conn> conn) : conn_(std::move(conn)) {}

  bool Write(const uint8_t* data, size_t size) override {
    std::lock_guard<std::mutex> lock(conn_->mu);
    if (conn_->closed) {
      return false;
    }
    conn_->buffer.insert(conn_->buffer.end(), data, data + size);
    return true;
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(conn_->mu);
    conn_->closed = true;
  }

 private:
  std::shared_ptr<Conn> conn_;
};

InProcessPipeHub::InProcessPipeHub(ByteStreamHandler handler, size_t deliver_chunk)
    : handler_(std::move(handler)), deliver_chunk_(deliver_chunk) {}

std::unique_ptr<ByteSink> InProcessPipeHub::Connect(const std::string& source) {
  auto conn = std::make_shared<Conn>();
  conn->source = source;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
  }
  return std::make_unique<PipeSink>(std::move(conn));
}

size_t InProcessPipeHub::Drain() {
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns = conns_;
  }
  size_t delivered = 0;
  std::vector<uint8_t> bytes;
  for (const std::shared_ptr<Conn>& conn : conns) {
    bool deliver_close = false;
    bytes.clear();
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      bytes.swap(conn->buffer);
      if (conn->closed && !conn->close_delivered) {
        conn->close_delivered = true;
        deliver_close = true;
      }
    }
    size_t offset = 0;
    while (offset < bytes.size()) {
      const size_t n = deliver_chunk_ > 0
                           ? std::min(deliver_chunk_, bytes.size() - offset)
                           : bytes.size() - offset;
      if (handler_.on_bytes) {
        handler_.on_bytes(conn->source, bytes.data() + offset, n);
      }
      offset += n;
    }
    delivered += bytes.size();
    if (deliver_close && handler_.on_close) {
      handler_.on_close(conn->source, /*clean=*/true);
    }
  }
  return delivered;
}

// --- TcpStreamServer ---

struct TcpStreamServer::Impl {
  ByteStreamHandler handler;
  Options options;
  int listen_fd = -1;
  std::thread thread;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> accepted{0};

  struct Conn {
    int fd = -1;
    std::string source;
  };

  void CloseConn(Conn* conn, bool clean) {
    ::close(conn->fd);
    conn->fd = -1;
    if (handler.on_close) {
      handler.on_close(conn->source, clean);
    }
  }

  void Serve() {
    std::vector<Conn> conns;
    std::vector<pollfd> fds;
    uint8_t buffer[64 * 1024];
    uint64_t next_id = 0;
    while (!stop.load(std::memory_order_acquire)) {
      fds.clear();
      fds.push_back({listen_fd, POLLIN, 0});
      for (const Conn& conn : conns) {
        fds.push_back({conn.fd, POLLIN, 0});
      }
      const int ready = ::poll(fds.data(), fds.size(), options.poll_interval_ms);
      if (ready <= 0) {
        continue;
      }
      // Only the connections polled this iteration have entries in `fds`;
      // an accept below appends to `conns` past this bound.
      const size_t polled = conns.size();
      if ((fds[0].revents & POLLIN) != 0) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) {
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          conns.push_back({fd, "tcp/" + std::to_string(next_id++)});
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Walk backwards so erasing a dead connection is cheap and does not
      // disturb the fd <-> conn pairing of entries not yet visited.
      for (size_t i = polled; i-- > 0;) {
        const short revents = fds[i + 1].revents;
        if (revents == 0) {
          continue;
        }
        Conn& conn = conns[i];
        if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
          if (n > 0) {
            if (handler.on_bytes) {
              handler.on_bytes(conn.source, buffer, static_cast<size_t>(n));
            }
            continue;
          }
          // n == 0: orderly shutdown; n < 0: reset or error.
          const bool clean = n == 0;
          CloseConn(&conn, clean);
          conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
        }
      }
    }
    // Drain what the sockets still hold, then report every close.
    for (Conn& conn : conns) {
      ssize_t n;
      while ((n = ::recv(conn.fd, buffer, sizeof(buffer), MSG_DONTWAIT)) > 0) {
        if (handler.on_bytes) {
          handler.on_bytes(conn.source, buffer, static_cast<size_t>(n));
        }
      }
      // n == 0 is a peer-side orderly shutdown; EAGAIN means the peer was
      // simply idle when we stopped — a server-initiated close, not loss.
      const bool clean =
          n == 0 || (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK));
      CloseConn(&conn, clean);
    }
  }
};

TcpStreamServer::TcpStreamServer(ByteStreamHandler handler)
    : TcpStreamServer(std::move(handler), Options()) {}

TcpStreamServer::TcpStreamServer(ByteStreamHandler handler, Options options)
    : impl_(std::make_unique<Impl>()) {
  impl_->handler = std::move(handler);
  impl_->options = std::move(options);
}

TcpStreamServer::~TcpStreamServer() { Stop(); }

bool TcpStreamServer::Start(std::string* error) {
  impl_->listen_fd = Listen(impl_->options.bind_address, impl_->options.port, error);
  if (impl_->listen_fd < 0) {
    return false;
  }
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  impl_->thread = std::thread([this] { impl_->Serve(); });
  return true;
}

void TcpStreamServer::Stop() {
  if (impl_->listen_fd < 0) {
    return;
  }
  impl_->stop.store(true, std::memory_order_release);
  if (impl_->thread.joinable()) {
    impl_->thread.join();
  }
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
}

uint64_t TcpStreamServer::connections_accepted() const {
  return impl_->accepted.load(std::memory_order_relaxed);
}

namespace {

class TcpSink : public ByteSink {
 public:
  explicit TcpSink(int fd) : fd_(fd) {}
  ~TcpSink() override { Close(); }

  bool Write(const uint8_t* data, size_t size) override {
    if (fd_ < 0) {
      return false;
    }
    size_t sent = 0;
    while (sent < size) {
      const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) {
          continue;
        }
        Close();
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  void Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

}  // namespace

std::unique_ptr<ByteSink> ConnectTcpStream(const std::string& host, uint16_t port,
                                           std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = Errno("socket");
    }
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "bad address " + host;
    }
    ::close(fd);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = Errno("connect");
    }
    ::close(fd);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpSink>(fd);
}

}  // namespace tempo
