// Byte-stream transports for shipping trace-derived data between hosts.
//
// The fleet observatory (src/fleet) streams each host's live summaries to
// an aggregator. The framing and decoding live in src/fleet/wire.h; this
// module supplies the bytes-in-flight layer underneath, deliberately dumb:
// a ByteSink is an ordered, reliable, possibly-fragmenting byte pipe, and
// nothing here knows what a frame is. Two implementations:
//
//   * InProcessPipeHub — mutex-guarded byte buffers inside one process.
//     Producers (any thread) write into their connection's buffer; one
//     consumer thread calls Drain(), which hands the buffered bytes to a
//     callback in configurable chunk sizes (deliver_chunk), so consumers
//     can be exercised against arbitrary fragmentation without a network.
//   * TcpStreamServer / ConnectTcpStream — real sockets on loopback or a
//     LAN. The server runs one service thread multiplexing every
//     connection with poll(2) and hands received bytes to a callback from
//     that thread; callers own any synchronisation beyond that (the fleet
//     server wraps the callback in a mutex).
//
// Delivery contract shared by both: bytes of one connection arrive in
// order, with no duplication or loss while the connection lives; a close
// is reported exactly once, after the connection's final bytes, with a
// `clean` flag (false when the peer vanished mid-stream, e.g. a TCP reset).
// Nothing is reported silently: every connection ever accepted produces a
// close callback by the time the server stops.

#ifndef TEMPO_SRC_TRACE_TRANSPORT_H_
#define TEMPO_SRC_TRACE_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tempo {

// Ordered, reliable byte pipe from one producer to the transport's
// consumer. Write/Close may be called from any single thread at a time;
// Write after Close returns false.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  // Queues `size` bytes; false when the connection is closed or dead
  // (the bytes are then dropped — callers count, never ignore).
  virtual bool Write(const uint8_t* data, size_t size) = 0;
  virtual void Close() = 0;
};

// Callbacks a transport delivers received bytes through. OnBytes may be
// called with any fragmentation of the sent stream; OnClose fires exactly
// once per connection after its last OnBytes.
struct ByteStreamHandler {
  std::function<void(const std::string& source, const uint8_t* data, size_t size)>
      on_bytes;
  std::function<void(const std::string& source, bool clean)> on_close;
};

// In-process transport: N named producer connections, one draining
// consumer. Senders are thread-safe against Drain and against each other.
class InProcessPipeHub {
 public:
  // deliver_chunk > 0 fragments every Drain delivery into chunks of at
  // most that many bytes, exercising incremental consumers; 0 delivers
  // whatever is buffered in one call.
  explicit InProcessPipeHub(ByteStreamHandler handler, size_t deliver_chunk = 0);

  // Opens a producer connection named `source` (names are the consumer's
  // keys and should be unique). The sink stays valid after the hub drains;
  // it must not outlive the hub.
  std::unique_ptr<ByteSink> Connect(const std::string& source);

  // Moves all buffered bytes (and pending closes) into the handler, in
  // connection registration order. Single consumer thread. Returns bytes
  // delivered.
  size_t Drain();

 private:
  struct Conn {
    std::mutex mu;
    std::string source;
    std::vector<uint8_t> buffer;
    bool closed = false;
    bool close_delivered = false;
  };

  class PipeSink;

  ByteStreamHandler handler_;
  size_t deliver_chunk_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
};

// TCP transport, server side: accepts connections on 127.0.0.1 (or any
// address) and delivers their bytes to the handler from one service
// thread. Connection sources are named "tcp/<n>" in accept order — the
// payload protocol identifies the peer (fleet summaries carry the host
// name in every frame).
class TcpStreamServer {
 public:
  struct Options {
    uint16_t port = 0;           // 0: ephemeral, read back via port()
    std::string bind_address = "127.0.0.1";
    int poll_interval_ms = 20;   // service-loop wakeup for stop checks
  };

  explicit TcpStreamServer(ByteStreamHandler handler);
  TcpStreamServer(ByteStreamHandler handler, Options options);
  ~TcpStreamServer();
  TcpStreamServer(const TcpStreamServer&) = delete;
  TcpStreamServer& operator=(const TcpStreamServer&) = delete;

  // Binds, listens and starts the service thread. False with *error set
  // on socket failure.
  bool Start(std::string* error = nullptr);

  // Stops accepting, closes every connection (delivering their final
  // bytes and closes first) and joins the service thread. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  uint64_t connections_accepted() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  uint16_t port_ = 0;
};

// TCP transport, client side: connects to `host:port` and returns a sink
// whose Write is a blocking send. Nullptr with *error set on failure.
std::unique_ptr<ByteSink> ConnectTcpStream(const std::string& host, uint16_t port,
                                           std::string* error = nullptr);

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_TRANSPORT_H_
