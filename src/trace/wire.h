// Little-endian wire helpers shared by the trace-file formats.
//
// Both the monolithic v1 layout and the chunked v2 layout (file.h,
// chunked.h) are built from the same primitives: fixed-width LE integers,
// length-prefixed strings, and the call-site table encoding. Keeping them
// here means the two parsers cannot drift apart.

#ifndef TEMPO_SRC_TRACE_WIRE_H_
#define TEMPO_SRC_TRACE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/trace/callsite.h"

namespace tempo {
namespace wire {

// File magics shared by file.cc (whole-buffer parse) and chunked.cc
// (streaming parse).
inline constexpr char kTraceMagic[8] = {'T', 'E', 'M', 'P', 'O', 'T', 'R', 'C'};
inline constexpr char kTraceIndexMagic[8] = {'T', 'E', 'M', 'P', 'O', 'I', 'D', 'X'};

inline void Put16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

inline void Put32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline void Put64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline uint16_t Get16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

inline uint32_t Get32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

inline uint64_t Get64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

// LEB128 varints and zig-zag folding, the primitives of the v3 columnar
// stripes (codec.h). A u64 takes 1..10 bytes; small values take one.
inline void PutVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

// Decodes one varint from [p, end). Returns the byte after the varint, or
// nullptr when the input ends mid-varint or the encoding exceeds 10 bytes.
inline const uint8_t* GetVarint(const uint8_t* p, const uint8_t* end, uint64_t* v) {
  uint64_t value = 0;
  unsigned shift = 0;
  while (p < end && shift < 70) {
    const uint8_t byte = *p++;
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;  // shift <= 63 here
    if ((byte & 0x80) == 0) {
      *v = value;
      return p;
    }
    shift += 7;
  }
  return nullptr;
}

// Zig-zag: signed deltas fold to small unsigned values so varints stay
// short for negative as well as positive movement.
inline uint64_t ZigZag(uint64_t v) {
  const int64_t s = static_cast<int64_t>(v);
  return (static_cast<uint64_t>(s) << 1) ^ static_cast<uint64_t>(s >> 63);
}

inline uint64_t UnZigZag(uint64_t v) {
  return (v >> 1) ^ (~(v & 1) + 1);
}

// Bounds-checked reader over a byte range.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<uint8_t>& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  bool Read16(uint16_t* v) {
    if (offset_ + 2 > size_) {
      return false;
    }
    *v = Get16(data_ + offset_);
    offset_ += 2;
    return true;
  }
  bool Read32(uint32_t* v) {
    if (offset_ + 4 > size_) {
      return false;
    }
    *v = Get32(data_ + offset_);
    offset_ += 4;
    return true;
  }
  bool Read64(uint64_t* v) {
    if (offset_ + 8 > size_) {
      return false;
    }
    *v = Get64(data_ + offset_);
    offset_ += 8;
    return true;
  }
  bool ReadString(size_t length, std::string* out) {
    if (offset_ + length > size_) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(data_) + offset_, length);
    offset_ += length;
    return true;
  }
  const uint8_t* Raw(size_t length) {
    if (offset_ + length > size_) {
      return nullptr;
    }
    const uint8_t* p = data_ + offset_;
    offset_ += length;
    return p;
  }

  size_t offset() const { return offset_; }
  size_t remaining() const { return size_ - offset_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
};

// Appends the call-site table (slot 0, "?", is implicit): u32 count, then
// per call-site u32 id, u32 parent, u16 name length, name bytes.
inline void PutCallsiteTable(const CallsiteRegistry& callsites,
                             std::vector<uint8_t>* out) {
  Put32(static_cast<uint32_t>(callsites.size()), out);
  for (CallsiteId id = 1; id < callsites.size(); ++id) {
    Put32(id, out);
    Put32(callsites.Parent(id), out);
    const std::string& name = callsites.Name(id);
    Put16(static_cast<uint16_t>(name.size()), out);
    out->insert(out->end(), name.begin(), name.end());
  }
}

// Result of parsing the call-site table.
enum class TableParse { kOk, kTruncated, kCorrupt };

// Reads a call-site table written by PutCallsiteTable into `registry`
// (which must be freshly constructed so interned ids come out dense).
inline TableParse ReadCallsiteTable(Reader* reader, CallsiteRegistry* registry) {
  uint32_t count = 0;
  if (!reader->Read32(&count)) {
    return TableParse::kTruncated;
  }
  for (uint32_t i = 1; i < count; ++i) {
    uint32_t id = 0;
    uint32_t parent = 0;
    uint16_t name_length = 0;
    std::string name;
    if (!reader->Read32(&id) || !reader->Read32(&parent) ||
        !reader->Read16(&name_length) || !reader->ReadString(name_length, &name)) {
      return TableParse::kTruncated;
    }
    // Interning in file order reproduces the original dense ids.
    const CallsiteId assigned = registry->Intern(name, parent);
    if (assigned != id) {
      return TableParse::kCorrupt;  // duplicate or out-of-order table
    }
  }
  return TableParse::kOk;
}

}  // namespace wire
}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_WIRE_H_
