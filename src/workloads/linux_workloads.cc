#include "src/workloads/linux_workloads.h"

#include <memory>
#include <utility>

#include "src/net/http.h"
#include "src/net/tcp.h"
#include "src/oslinux/subsystems.h"
#include "src/oslinux/syscalls.h"
#include "src/workloads/select_apps.h"

namespace tempo {

namespace {

// Shared base: simulator, kernel, trace buffer, standard daemons.
struct LinuxBase {
  TraceRun run;
  RelayBuffer* buffer = nullptr;
  LinuxKernel* kernel = nullptr;
  LinuxSyscalls* syscalls = nullptr;
  KernelSubsystems* subsystems = nullptr;
};

LinuxBase MakeLinuxBase(const std::string& label, const WorkloadOptions& options,
                        KernelSubsystemsOptions subsystem_options) {
  LinuxBase base;
  base.run.label = label;
  {
    Simulator::Options sim_options;
    sim_options.seed = options.seed;
    sim_options.cpus = options.cpus;
    base.run.sim = std::make_unique<Simulator>(sim_options);
  }

  auto buffer = std::make_unique<RelayBuffer>();
  buffer->AttachCpu(&base.run.sim->cpu());
  if (options.live != nullptr && options.live->channels != nullptr) {
    RelayChannel* tap = options.live->channels->Register("live/" + label);
    buffer->SetLiveTap(tap);
    if (options.live->poll && options.live->period > 0) {
      auto poll = options.live->poll;
      base.run.keepalive.push_back(
          base.run.sim->SchedulePeriodic(options.live->period, [tap, poll] {
            tap->FlushOpen();  // the drainer only sees published sub-buffers
            poll();
          }));
    }
  }
  base.buffer = base.run.Keep(std::move(buffer));

  LinuxKernel::Options kernel_options;
  kernel_options.dynticks = options.dynticks;
  base.run.linux_kernel =
      std::make_unique<LinuxKernel>(base.run.sim.get(), base.buffer, kernel_options);
  base.kernel = base.run.linux_kernel.get();

  subsystem_options.use_round_jiffies = options.round_jiffies;
  subsystem_options.deferrable_periodics = options.deferrable;
  base.subsystems = base.run.Keep(
      std::make_unique<KernelSubsystems>(base.kernel, subsystem_options));
  base.syscalls = base.run.Keep(std::make_unique<LinuxSyscalls>(base.kernel));

  base.kernel->Boot();
  base.subsystems->Start();
  if (options.live != nullptr) {
    options.live->processes = &base.run.sim->processes();
    options.live->callsites = &base.kernel->callsites();
  }
  return base;
}

Pid AddProcess(LinuxBase& base, const std::string& name) {
  const Pid pid = base.run.sim->processes().AddProcess(name);
  base.run.pids[name] = pid;
  return pid;
}

Tid AddThread(LinuxBase& base, Pid pid) { return base.run.sim->processes().AddThread(pid); }

// Stock Debian daemons: init polling children (5 s), cron and atd minute
// loops, a slow syslogd mark timer, a 15 s portmapper-style poll.
void AddStandardDaemons(LinuxBase& base) {
  const Pid init = AddProcess(base, "init");
  base.run.Keep(std::make_unique<PeriodicSleeper>(base.kernel, base.syscalls, init,
                                                  AddThread(base, init), "init/poll_children",
                                                  5 * kSecond))->Start();
  const Pid cron = AddProcess(base, "cron");
  base.run.Keep(std::make_unique<PeriodicSleeper>(base.kernel, base.syscalls, cron,
                                                  AddThread(base, cron), "cron/minute_tick",
                                                  60 * kSecond))->Start();
  const Pid atd = AddProcess(base, "atd");
  base.run.Keep(std::make_unique<PeriodicSleeper>(base.kernel, base.syscalls, atd,
                                                  AddThread(base, atd), "atd/queue_scan",
                                                  60 * kSecond))->Start();
  const Pid syslogd = AddProcess(base, "syslogd");
  base.run.Keep(std::make_unique<PeriodicSleeper>(base.kernel, base.syscalls, syslogd,
                                                  AddThread(base, syslogd), "syslogd/mark",
                                                  1200 * kSecond))->Start();
  const Pid portmap = AddProcess(base, "portmap");
  SelectLoopApp::Options pm_options;
  pm_options.full_timeout = 15 * kSecond;
  pm_options.activity_rate = 0.02;  // almost always times out
  base.run.Keep(std::make_unique<SelectLoopApp>(base.kernel, base.syscalls, portmap,
                                                AddThread(base, portmap), "portmap/select",
                                                pm_options))->Start();
}

// X server + window manager with their select countdowns (Figure 4).
void AddXAndWindowManager(LinuxBase& base, double intensity) {
  const Pid xorg = AddProcess(base, "Xorg");
  SelectLoopApp::Options x_options;
  x_options.full_timeout = 600 * kSecond;  // screensaver check
  x_options.activity_rate = 14.0 * intensity;
  base.run.Keep(std::make_unique<SelectLoopApp>(base.kernel, base.syscalls, xorg,
                                                AddThread(base, xorg), "Xorg/select",
                                                x_options))->Start();

  const Pid icewm = AddProcess(base, "icewm");
  SelectLoopApp::Options wm_options;
  wm_options.full_timeout = 120 * kSecond;  // tooltip/clock maintenance
  wm_options.activity_rate = 6.0 * intensity;
  base.run.Keep(std::make_unique<SelectLoopApp>(base.kernel, base.syscalls, icewm,
                                                AddThread(base, icewm), "icewm/select",
                                                wm_options))->Start();
}

// A quiet established TCP connection or two (the department LAN): arms the
// 7200 s keepalive, with sporadic heartbeat traffic exercising the
// retransmission and delayed-ACK timers.
void AddIdleTcp(LinuxBase& base, SimNetwork* net, int connections, SimDuration heartbeat) {
  const NodeId local = net->AddNode("testbox");
  const NodeId remote = net->AddNode("lan-peer");
  LinkParams lan;
  lan.latency = 65 * kMicrosecond;
  net->SetLinkBoth(local, remote, lan);

  auto* server_stack = base.run.Keep(std::make_unique<TcpStack>(
      base.run.sim.get(), net, remote, nullptr, kKernelPid));
  auto* client_stack = base.run.Keep(std::make_unique<TcpStack>(
      base.run.sim.get(), net, local, base.kernel, kKernelPid));
  TcpListener* listener = server_stack->Listen();
  listener->on_accept = [](TcpConnection* conn) {
    conn->on_data = [conn](size_t) {
      if (conn->established()) {
        conn->Send(128, nullptr);  // echo
      }
    };
  };

  Simulator* sim = base.run.sim.get();
  for (int i = 0; i < connections; ++i) {
    client_stack->Connect(listener, [sim, heartbeat](TcpConnection* conn) {
      // Periodic heartbeat over the established connection.
      struct Beat {
        static void Next(Simulator* s, TcpConnection* c, SimDuration period) {
          const SimDuration gap = static_cast<SimDuration>(
              s->rng().Exponential(ToSeconds(period)) * kSecond);
          s->ScheduleAfter(gap, [s, c, period] {
            if (c->established()) {
              c->Send(256, nullptr);
              Next(s, c, period);
            }
          });
        }
      };
      Beat::Next(sim, conn, heartbeat);
    }, nullptr);
  }
}

}  // namespace

TraceRun RunLinuxIdle(const WorkloadOptions& options) {
  KernelSubsystemsOptions subsystems;
  subsystems.lan_event_rate = 0.15;
  subsystems.block_io_rate = 0.05;  // sporadic daemon logging
  LinuxBase base = MakeLinuxBase("Idle", options, subsystems);

  AddStandardDaemons(base);
  AddXAndWindowManager(base, options.intensity);

  auto* net = base.run.Keep(std::make_unique<SimNetwork>(base.run.sim.get()));
  AddIdleTcp(base, net, /*connections=*/2, /*heartbeat=*/12 * kSecond);

  base.run.sim->RunUntil(options.duration);
  base.run.records = base.buffer->TakeRecords();
  return std::move(base.run);
}

TraceRun RunLinuxFirefox(const WorkloadOptions& options) {
  KernelSubsystemsOptions subsystems;
  subsystems.lan_event_rate = 0.3;  // page traffic keeps ARP busier
  subsystems.block_io_rate = 0.2;   // cache writes
  LinuxBase base = MakeLinuxBase("Firefox", options, subsystems);

  AddStandardDaemons(base);
  AddXAndWindowManager(base, options.intensity);

  const Pid firefox = AddProcess(base, "firefox");

  // The Flash plugin's soft-real-time frame pump: 1-3 jiffy polls that
  // nearly always expire (Section 4.1.1's "unclassified very short
  // timers"), at a few hundred operations per second.
  PollLoopApp::Options flash;
  flash.values = {
      {4 * kMillisecond, 0.45},  {8 * kMillisecond, 0.22}, {12 * kMillisecond, 0.16},
      {24 * kMillisecond, 0.05}, {44 * kMillisecond, 0.04}, {48 * kMillisecond, 0.03},
      {96 * kMillisecond, 0.03}, {100 * kMillisecond, 0.02},
  };
  flash.cancel_probability = 0.35;
  flash.gap_mean = 0;
  for (int i = 0; i < 5; ++i) {
    base.run.Keep(std::make_unique<PollLoopApp>(
        base.kernel, base.syscalls, firefox, AddThread(base, firefox),
        "firefox/poll_fd", flash))->Start();
  }

  // The main event loop: a 3-jiffy select countdown (Section 4.2:
  // "Firefox employs the same mechanism, seen as a countdown from 3
  //  jiffies").
  SelectLoopApp::Options loop;
  loop.full_timeout = 12 * kMillisecond;
  loop.activity_rate = 110.0 * options.intensity;
  base.run.Keep(std::make_unique<SelectLoopApp>(base.kernel, base.syscalls, firefox,
                                                AddThread(base, firefox), "firefox/select",
                                                loop))->Start();

  auto* net = base.run.Keep(std::make_unique<SimNetwork>(base.run.sim.get()));
  AddIdleTcp(base, net, /*connections=*/3, /*heartbeat=*/4 * kSecond);

  base.run.sim->RunUntil(options.duration);
  base.run.records = base.buffer->TakeRecords();
  return std::move(base.run);
}

TraceRun RunLinuxSkype(const WorkloadOptions& options) {
  KernelSubsystemsOptions subsystems;
  subsystems.lan_event_rate = 0.4;
  subsystems.block_io_rate = 0.05;
  LinuxBase base = MakeLinuxBase("Skype", options, subsystems);

  AddStandardDaemons(base);
  AddXAndWindowManager(base, options.intensity);

  const Pid skype = AddProcess(base, "skype");

  // The audio pump: dominated by constant 0, 0.4999 and 0.5 second
  // timeouts (Figure 6), plus the 52/100 ms values of Table 3.
  PollLoopApp::Options audio;
  audio.values = {
      {0, 0.34},
      {FromMilliseconds(499.9), 0.18},
      {500 * kMillisecond, 0.17},
      {52 * kMillisecond, 0.12},
      {100 * kMillisecond, 0.10},
      {20 * kMillisecond, 0.05},
      {44 * kMillisecond, 0.04},
  };
  audio.cancel_probability = 0.55;  // the call's traffic wakes it constantly
  audio.gap_mean = FromMilliseconds(3);
  for (int i = 0; i < 3; ++i) {
    base.run.Keep(std::make_unique<PollLoopApp>(base.kernel, base.syscalls, skype,
                                                AddThread(base, skype), "skype/poll",
                                                audio))->Start();
  }

  // "The only slightly more adaptive application": a stream of short,
  // irregular timeouts through poll and select.
  struct IrregularPoll {
    LinuxKernel* kernel;
    SelectChannel* channel;
    void Iterate() {
      const SimDuration timeout = static_cast<SimDuration>(
          kernel->sim().rng().Uniform(0.008, 0.9) * kSecond);
      channel->Select(timeout, [this](SimDuration, bool) { Iterate(); });
      if (kernel->sim().rng().Bernoulli(0.7)) {
        const SimDuration when = static_cast<SimDuration>(
            kernel->sim().rng().Uniform(0.001, ToSeconds(timeout)) * kSecond);
        kernel->sim().ScheduleAfter(when, [this] {
          if (channel->blocked()) {
            channel->Wake();
          }
        });
      }
    }
  };
  auto irregular = std::make_unique<IrregularPoll>();
  irregular->kernel = base.kernel;
  irregular->channel =
      base.syscalls->Channel(skype, AddThread(base, skype), "skype/select_irregular");
  base.run.Keep(std::move(irregular))->Iterate();

  // The call itself: steady bidirectional traffic over TCP.
  auto* net = base.run.Keep(std::make_unique<SimNetwork>(base.run.sim.get()));
  AddIdleTcp(base, net, /*connections=*/2, /*heartbeat=*/1 * kSecond);

  base.run.sim->RunUntil(options.duration);
  base.run.records = base.buffer->TakeRecords();
  return std::move(base.run);
}

TraceRun RunLinuxWebserver(const WorkloadOptions& options) {
  KernelSubsystemsOptions subsystems;
  subsystems.lan_event_rate = 0.5;
  subsystems.packet_scheduler = true;
  subsystems.block_io_rate = 0.0;  // driven by the request path instead
  LinuxBase base = MakeLinuxBase("Webserver", options, subsystems);

  AddStandardDaemons(base);  // X is not running for this workload

  auto* net = base.run.Keep(std::make_unique<SimNetwork>(base.run.sim.get()));
  const NodeId server_node = net->AddNode("testbox");
  const NodeId client_node = net->AddNode("httperf-box");
  LinkParams lan;
  lan.latency = 65 * kMicrosecond;
  net->SetLinkBoth(server_node, client_node, lan);

  const Pid apache = AddProcess(base, "apache2");
  auto* server_stack = base.run.Keep(std::make_unique<TcpStack>(
      base.run.sim.get(), net, server_node, base.kernel, kKernelPid));
  auto* client_stack = base.run.Keep(std::make_unique<TcpStack>(
      base.run.sim.get(), net, client_node, nullptr, kKernelPid));

  HttpServer::Options server_options;
  auto* server = base.run.Keep(std::make_unique<HttpServer>(
      base.kernel, base.syscalls, server_stack, apache, server_options, base.subsystems));
  TcpListener* listener = server->Start();

  HttpLoadGenerator::Options load;
  load.total_requests = static_cast<int>(
      30000.0 * options.intensity * ToSeconds(options.duration) / ToSeconds(30 * kMinute));
  auto* generator = base.run.Keep(
      std::make_unique<HttpLoadGenerator>(client_stack, listener, load));
  generator->Start(nullptr);

  base.run.sim->RunUntil(options.duration);
  base.run.records = base.buffer->TakeRecords();
  return std::move(base.run);
}

std::vector<TraceRun> RunAllLinuxWorkloads(const WorkloadOptions& options) {
  std::vector<TraceRun> runs;
  runs.push_back(RunLinuxIdle(options));
  runs.push_back(RunLinuxSkype(options));
  runs.push_back(RunLinuxFirefox(options));
  runs.push_back(RunLinuxWebserver(options));
  return runs;
}

}  // namespace tempo
