// The four Linux workloads of Section 3.5.
//
//   Idle      — Debian base + X + icewm, stock daemons, network connected
//               but quiet.
//   Firefox   — displaying a Flash/JavaScript-heavy page, no user input.
//   Skype     — an active call.
//   Webserver — stock Apache driven by httperf from another machine
//               (30000 requests, 10 parallel, 5 s state timeouts); X not
//               running.
//
// Each run lasts options.duration (30 minutes in the paper) and returns
// the full instrumented trace.

#ifndef TEMPO_SRC_WORKLOADS_LINUX_WORKLOADS_H_
#define TEMPO_SRC_WORKLOADS_LINUX_WORKLOADS_H_

#include "src/workloads/run.h"

namespace tempo {

TraceRun RunLinuxIdle(const WorkloadOptions& options);
TraceRun RunLinuxFirefox(const WorkloadOptions& options);
TraceRun RunLinuxSkype(const WorkloadOptions& options);
TraceRun RunLinuxWebserver(const WorkloadOptions& options);

// All four, in the paper's column order.
std::vector<TraceRun> RunAllLinuxWorkloads(const WorkloadOptions& options);

}  // namespace tempo

#endif  // TEMPO_SRC_WORKLOADS_LINUX_WORKLOADS_H_
