// Workload execution harness.
//
// A TraceRun owns a complete simulated machine (simulator, OS model, trace
// buffer, protocol stacks, application processes) for the duration of one
// traced workload, and exposes what the analysis pipeline needs: the
// records, the call-site registry, and the process table.

#ifndef TEMPO_SRC_WORKLOADS_RUN_H_
#define TEMPO_SRC_WORKLOADS_RUN_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/oslinux/kernel.h"
#include "src/osvista/kernel.h"
#include "src/sim/simulator.h"
#include "src/trace/buffer.h"

namespace tempo {

// The product of running one workload.
struct TraceRun {
  std::string label;
  std::unique_ptr<Simulator> sim;

  // Exactly one kernel is set, matching the traced OS.
  std::unique_ptr<LinuxKernel> linux_kernel;
  std::unique_ptr<VistaKernel> vista_kernel;

  // The trace itself (moved out of the buffer after the run).
  std::vector<TraceRecord> records;

  // Anything else that must stay alive as long as the records reference it
  // (syscall layers, stacks, application objects).
  std::vector<std::shared_ptr<void>> keepalive;

  // Process name -> pid, for analysis filters and Figure 1 grouping.
  std::map<std::string, Pid> pids;

  CallsiteRegistry& callsites() {
    return linux_kernel ? linux_kernel->callsites() : vista_kernel->callsites();
  }

  // Convenience for keepalive registration.
  template <typename T>
  T* Keep(std::unique_ptr<T> obj) {
    std::shared_ptr<T> shared(std::move(obj));
    keepalive.push_back(shared);
    return shared.get();
  }
};

// Live observation hookup. Workload functions run their simulation to
// completion internally, so a caller who wants to watch the trace *while*
// it runs (tempotop, the live-analysis tests) supplies this: the workload
// registers a "live/<label>" channel in `channels`, tees every recorded
// trace record into it, and schedules `poll` every `period` of simulated
// time (after flushing the tap, so a RelayDrainer over `channels` sees
// everything logged so far). The caller's poll typically runs
// RelayDrainer::Poll into a LiveAnalyzer and refreshes a display.
struct LiveTapOptions {
  RelayChannelSet* channels = nullptr;
  std::function<void()> poll;
  SimDuration period = 100 * kMillisecond;
  // Filled by the workload during setup, before the first poll fires: the
  // running simulation's process table and the kernel's callsite registry.
  // A poll callback uses them to label pids / resolve origins while the
  // run is still executing (the TraceRun itself only exists afterwards).
  // Both stay valid for the lifetime of the returned TraceRun.
  const ProcessTable* processes = nullptr;
  const CallsiteRegistry* callsites = nullptr;
};

// Options shared by all workloads.
struct WorkloadOptions {
  // Trace length. The paper's traces are exactly 30 minutes; tests use
  // shorter runs.
  SimDuration duration = 30 * kMinute;
  uint64_t seed = 1;
  // Simulated CPUs (clock domains). The traced OS personality always boots
  // on domain 0, so traces are seed-stable across cpu counts; extra domains
  // carry background load and are available for RunParallel drivers.
  size_t cpus = 1;
  // Kernel feature knobs for the Linux ablations (E19).
  bool dynticks = false;
  bool round_jiffies = false;
  bool deferrable = false;
  // Vista tick coalescing ablation.
  bool coalesce_ticks = false;
  // Scales application activity (1.0 = calibrated to the paper's rates).
  double intensity = 1.0;
  // Live observation hookup; nullptr (the default) records normally with
  // no tap. Must outlive the workload call (the workload writes the
  // processes/callsites back-pointers during setup).
  LiveTapOptions* live = nullptr;
};

}  // namespace tempo

#endif  // TEMPO_SRC_WORKLOADS_RUN_H_
