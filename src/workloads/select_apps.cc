#include "src/workloads/select_apps.h"

#include <algorithm>

namespace tempo {

// --- SelectLoopApp ---

SelectLoopApp::SelectLoopApp(LinuxKernel* kernel, LinuxSyscalls* syscalls, Pid pid, Tid tid,
                             const std::string& callsite, Options options)
    : kernel_(kernel), channel_(syscalls->Channel(pid, tid, callsite)), options_(options) {}

void SelectLoopApp::Start() {
  IssueSelect(options_.full_timeout);
  ScheduleActivity();
}

void SelectLoopApp::IssueSelect(SimDuration timeout) {
  channel_->Select(timeout, [this](SimDuration remaining, bool timed_out) {
    if (timed_out || remaining <= 0) {
      ++timeouts_;
      // Timer ran down: perform the periodic duty and restart from the
      // programmer's full value.
      IssueSelect(options_.full_timeout);
    } else {
      ++wakeups_;
      // fd activity: handle it and re-select with the remaining time the
      // kernel wrote back — the countdown of Figure 4.
      IssueSelect(remaining);
    }
  });
}

void SelectLoopApp::ScheduleActivity() {
  if (options_.activity_rate <= 0) {
    return;
  }
  const SimDuration gap = static_cast<SimDuration>(
      kernel_->sim().rng().Exponential(1.0 / options_.activity_rate) * kSecond);
  kernel_->sim().ScheduleAfter(gap, [this] {
    if (channel_->blocked()) {
      channel_->Wake();
    }
    ScheduleActivity();
  });
}

// --- PollLoopApp ---

PollLoopApp::PollLoopApp(LinuxKernel* kernel, LinuxSyscalls* syscalls, Pid pid, Tid tid,
                         const std::string& callsite, Options options)
    : kernel_(kernel), channel_(syscalls->Channel(pid, tid, callsite)),
      options_(std::move(options)) {
  for (const auto& [value, weight] : options_.values) {
    total_weight_ += weight;
  }
}

SimDuration PollLoopApp::PickValue() {
  double roll = kernel_->sim().rng().NextDouble() * total_weight_;
  for (const auto& [value, weight] : options_.values) {
    roll -= weight;
    if (roll <= 0) {
      return value;
    }
  }
  return options_.values.back().first;
}

void PollLoopApp::Start() {
  if (options_.values.empty()) {
    return;
  }
  Iterate();
}

void PollLoopApp::Iterate() {
  ++iterations_;
  const SimDuration value = PickValue();
  Simulator& sim = kernel_->sim();
  if (value <= 0) {
    // poll(0): an immediate-return poll — traced as a zero set that
    // expires on the next tick. Modelled as a minimal select.
    channel_->Select(0, [this](SimDuration, bool) { ScheduleNext(); });
    return;
  }
  channel_->Select(value, [this](SimDuration, bool) { ScheduleNext(); });
  if (options_.cancel_probability > 0 &&
      sim.rng().Bernoulli(options_.cancel_probability)) {
    const SimDuration when = static_cast<SimDuration>(
        sim.rng().Uniform(0.0, ToSeconds(value)) * kSecond);
    sim.ScheduleAfter(when, [this] {
      if (channel_->blocked()) {
        channel_->Wake();
      }
    });
  }
}

void PollLoopApp::ScheduleNext() {
  if (options_.gap_mean <= 0) {
    Iterate();
    return;
  }
  const SimDuration gap = static_cast<SimDuration>(
      kernel_->sim().rng().Exponential(ToSeconds(options_.gap_mean)) * kSecond);
  kernel_->sim().ScheduleAfter(gap, [this] { Iterate(); });
}

// --- PeriodicSleeper ---

PeriodicSleeper::PeriodicSleeper(LinuxKernel* kernel, LinuxSyscalls* syscalls, Pid pid,
                                 Tid tid, const std::string& callsite, SimDuration period)
    : kernel_(kernel), syscalls_(syscalls), pid_(pid), tid_(tid), callsite_(callsite),
      period_(period) {}

void PeriodicSleeper::Start() { Sleep(); }

void PeriodicSleeper::Sleep() {
  syscalls_->Nanosleep(pid_, tid_, callsite_, period_, [this] {
    ++cycles_;
    Sleep();
  });
}

}  // namespace tempo
