// Reusable Linux application models built on the select/poll syscalls.
//
// Three behaviours cover most user-space timer traffic the paper observed:
//   * SelectLoopApp — the X/icewm idiom (Figure 4): block in select with a
//     fixed timeout; on fd activity, re-issue select with the remaining
//     time the kernel wrote back (a countdown); on expiry, reset to the
//     full value.
//   * PollLoopApp — soft-real-time polling (Flash in Firefox, Skype
//     audio): very short timeouts drawn from a fixed weighted set, mostly
//     expiring; some canceled early by fd activity.
//   * PeriodicSleeper — a daemon sleeping a fixed interval in a loop (init
//     polling its children every 5 s, cron's minute tick).

#ifndef TEMPO_SRC_WORKLOADS_SELECT_APPS_H_
#define TEMPO_SRC_WORKLOADS_SELECT_APPS_H_

#include <string>
#include <utility>
#include <vector>

#include "src/oslinux/syscalls.h"

namespace tempo {

// The select-countdown event loop.
class SelectLoopApp {
 public:
  struct Options {
    // The programmer's full timeout (e.g. the 600 s screensaver check).
    SimDuration full_timeout = 600 * kSecond;
    // Poisson rate of fd activity waking the loop (events/second).
    double activity_rate = 1.0;
  };

  SelectLoopApp(LinuxKernel* kernel, LinuxSyscalls* syscalls, Pid pid, Tid tid,
                const std::string& callsite, Options options);

  // Begins the loop and its activity source.
  void Start();

  uint64_t wakeups() const { return wakeups_; }
  uint64_t timeouts() const { return timeouts_; }

 private:
  void IssueSelect(SimDuration timeout);
  void ScheduleActivity();

  LinuxKernel* kernel_;
  SelectChannel* channel_;
  Options options_;
  uint64_t wakeups_ = 0;
  uint64_t timeouts_ = 0;
};

// Soft-real-time short polling.
class PollLoopApp {
 public:
  struct Options {
    // Weighted timeout values the app cycles through.
    std::vector<std::pair<SimDuration, double>> values;
    // Probability that fd activity completes the poll before expiry.
    double cancel_probability = 0.1;
    // Mean pause between poll iterations (0: immediately re-poll).
    SimDuration gap_mean = 0;
  };

  PollLoopApp(LinuxKernel* kernel, LinuxSyscalls* syscalls, Pid pid, Tid tid,
              const std::string& callsite, Options options);

  void Start();

  uint64_t iterations() const { return iterations_; }

 private:
  void Iterate();
  void ScheduleNext();
  SimDuration PickValue();

  LinuxKernel* kernel_;
  SelectChannel* channel_;
  Options options_;
  double total_weight_ = 0;
  uint64_t iterations_ = 0;
};

// Fixed-interval sleeper.
class PeriodicSleeper {
 public:
  PeriodicSleeper(LinuxKernel* kernel, LinuxSyscalls* syscalls, Pid pid, Tid tid,
                  const std::string& callsite, SimDuration period);

  void Start();

  uint64_t cycles() const { return cycles_; }

 private:
  void Sleep();

  LinuxKernel* kernel_;
  LinuxSyscalls* syscalls_;
  Pid pid_;
  Tid tid_;
  std::string callsite_;
  SimDuration period_;
  uint64_t cycles_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SRC_WORKLOADS_SELECT_APPS_H_
