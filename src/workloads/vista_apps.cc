#include "src/workloads/vista_apps.h"

#include <algorithm>

namespace tempo {

// --- WaitLoopApp ---

WaitLoopApp::WaitLoopApp(VistaKernel* kernel, Pid pid, Tid tid, std::string callsite,
                         Options options)
    : kernel_(kernel), pid_(pid), tid_(tid), callsite_(std::move(callsite)),
      options_(options) {}

void WaitLoopApp::Start() { Iterate(); }

void WaitLoopApp::Iterate() {
  ++iterations_;
  Simulator& sim = kernel_->sim();
  VistaKernel::Wait* wait =
      kernel_->BlockThread(pid_, tid_, callsite_, options_.timeout, [this](bool) {
        if (options_.gap_mean <= 0) {
          Iterate();
          return;
        }
        const SimDuration gap = static_cast<SimDuration>(
            kernel_->sim().rng().Exponential(ToSeconds(options_.gap_mean)) * kSecond);
        kernel_->sim().ScheduleAfter(gap, [this] { Iterate(); });
      });
  if (options_.satisfied_probability > 0 &&
      sim.rng().Bernoulli(options_.satisfied_probability)) {
    const SimDuration when = static_cast<SimDuration>(
        sim.rng().Uniform(0.0, ToSeconds(options_.timeout)) * kSecond);
    sim.ScheduleAfter(when, [this, wait] { kernel_->Signal(wait); });
  }
}

// --- KernelTickerApp ---

KernelTickerApp::KernelTickerApp(VistaKernel* kernel, const std::string& callsite,
                                 SimDuration period)
    : kernel_(kernel), period_(period) {
  timer_ = kernel_->AllocateTimer(callsite, kKernelPid, 0,
                                  [this] { kernel_->KeSetTimer(timer_, period_); },
                                  /*dynamic=*/false);
}

void KernelTickerApp::Start() { kernel_->KeSetTimer(timer_, period_); }

// --- AfdSelectLoopApp ---

AfdSelectLoopApp::AfdSelectLoopApp(VistaKernel* kernel, VistaUserApi* api, Pid pid, Tid tid,
                                   std::string callsite, Options options)
    : kernel_(kernel), api_(api), pid_(pid), tid_(tid), callsite_(std::move(callsite)),
      options_(std::move(options)) {
  for (const auto& [value, weight] : options_.values) {
    total_weight_ += weight;
  }
}

SimDuration AfdSelectLoopApp::PickValue() {
  double roll = kernel_->sim().rng().NextDouble() * total_weight_;
  for (const auto& [value, weight] : options_.values) {
    roll -= weight;
    if (roll <= 0) {
      return value;
    }
  }
  return options_.values.back().first;
}

void AfdSelectLoopApp::Start() {
  if (!options_.values.empty()) {
    Iterate();
  }
}

void AfdSelectLoopApp::Iterate() {
  ++iterations_;
  Simulator& sim = kernel_->sim();
  const SimDuration value = PickValue();
  AfdSelect* call = api_->Select(pid_, tid_, callsite_, value, [this](bool) {
    if (options_.gap_mean <= 0) {
      Iterate();
      return;
    }
    const SimDuration gap = static_cast<SimDuration>(
        kernel_->sim().rng().Exponential(ToSeconds(options_.gap_mean)) * kSecond);
    kernel_->sim().ScheduleAfter(gap, [this] { Iterate(); });
  });
  if (options_.ready_probability > 0 && sim.rng().Bernoulli(options_.ready_probability)) {
    const SimDuration when = static_cast<SimDuration>(
        sim.rng().Uniform(0.0, ToSeconds(std::max<SimDuration>(value, kMillisecond))) *
        kSecond);
    sim.ScheduleAfter(when, [call] { call->Complete(); });
  }
}

// --- DeferredCloserApp ---

DeferredCloserApp::DeferredCloserApp(VistaKernel* kernel, Pid pid, Tid tid,
                                     const std::string& callsite, Options options)
    : kernel_(kernel), options_(options) {
  timer_ = kernel_->AllocateTimer(callsite, pid, tid, [this] { ++closes_; },
                                  /*dynamic=*/false);
}

void DeferredCloserApp::Start() { ScheduleBurst(); }

void DeferredCloserApp::ScheduleBurst() {
  if (options_.burst_rate <= 0) {
    return;
  }
  Simulator& sim = kernel_->sim();
  const SimDuration gap = static_cast<SimDuration>(
      sim.rng().Exponential(1.0 / options_.burst_rate) * kSecond);
  sim.ScheduleAfter(gap, [this] {
    // A burst of handle activity: each touch defers the close timer by the
    // full idle timeout (KeSetTimer on a pending timer re-arms in place).
    for (int i = 0; i < options_.touches_per_burst; ++i) {
      kernel_->sim().ScheduleAfter(static_cast<SimDuration>(i) * options_.touch_spacing,
                                   [this] { kernel_->KeSetTimer(timer_, options_.idle_timeout); });
    }
    ScheduleBurst();
  });
}

// --- UpcallGuardApp ---

UpcallGuardApp::UpcallGuardApp(VistaKernel* kernel, Pid pid, Tid tid,
                               const std::string& callsite, Options options)
    : kernel_(kernel), pid_(pid), tid_(tid), callsite_(callsite), options_(options) {}

void UpcallGuardApp::Start() {
  ScheduleNextUpcall();
  ScheduleStorms();
}

void UpcallGuardApp::ScheduleStorms() {
  Simulator& sim = kernel_->sim();
  const SimDuration gap = static_cast<SimDuration>(
      sim.rng().Exponential(ToSeconds(options_.storm_gap_mean)) * kSecond);
  sim.ScheduleAfter(gap, [this] {
    in_storm_ = true;
    kernel_->sim().ScheduleAfter(options_.storm_length, [this] {
      in_storm_ = false;
      ScheduleStorms();
    });
  });
}

void UpcallGuardApp::ScheduleNextUpcall() {
  Simulator& sim = kernel_->sim();
  const double rate = in_storm_ ? options_.storm_rate : options_.baseline_rate;
  const SimDuration gap =
      static_cast<SimDuration>(sim.rng().Exponential(1.0 / rate) * kSecond);
  sim.ScheduleAfter(gap, [this] {
    Upcall();
    ScheduleNextUpcall();
  });
}

void UpcallGuardApp::Upcall() {
  ++upcalls_;
  Simulator& sim = kernel_->sim();
  // The guard: a fresh 5 s timeout assertion around the upcall.
  KTimer* guard = kernel_->AllocateTimer(callsite_, pid_, tid_, [this] { ++guard_expiries_; },
                                         /*dynamic=*/true);
  kernel_->KeSetTimer(guard, options_.guard_timeout);
  const SimDuration duration = static_cast<SimDuration>(
      sim.rng().Exponential(ToSeconds(options_.upcall_duration_mean)) * kSecond);
  sim.ScheduleAfter(duration, [this, guard] {
    kernel_->KeCancelTimer(guard);
    kernel_->FreeTimer(guard);
  });
}

}  // namespace tempo
