// Reusable Vista application behaviours.
//
// The building blocks behind the Vista workloads of Sections 2.2.1/3.5:
//   * WaitLoopApp       — a thread looping in WaitForSingleObject with a
//                         fixed timeout (most Vista timer traffic; waits
//                         mostly TIME OUT, which is why Vista traces show
//                         far more expiries than cancellations, Table 2);
//   * KernelTickerApp   — kernel-side periodic KTIMER + DPC housekeeping;
//   * AfdSelectLoopApp  — Winsock select loops (fresh KTIMER per call);
//   * DeferredCloserApp — the lazy registry-handle close idiom: a timer
//                         deferred on every touch that fires once the
//                         activity has been idle for a while (the
//                         "deferred operation" pattern of Section 4.1.1);
//   * UpcallGuardApp    — the Outlook idiom: every UI upcall is wrapped in
//                         a 5-second timeout assertion, so bursts of
//                         upcalls set thousands of timers per second
//                         (Figure 1).

#ifndef TEMPO_SRC_WORKLOADS_VISTA_APPS_H_
#define TEMPO_SRC_WORKLOADS_VISTA_APPS_H_

#include <string>
#include <utility>
#include <vector>

#include "src/osvista/kernel.h"
#include "src/osvista/userapi.h"

namespace tempo {

// A thread blocking in WaitForSingleObject(timeout) in a loop.
class WaitLoopApp {
 public:
  struct Options {
    SimDuration timeout = kSecond;
    // Probability the wait is satisfied (signalled) before timing out.
    double satisfied_probability = 0.05;
    // Pause between iterations (0: immediately re-wait).
    SimDuration gap_mean = 0;
  };

  WaitLoopApp(VistaKernel* kernel, Pid pid, Tid tid, std::string callsite, Options options);
  void Start();

  uint64_t iterations() const { return iterations_; }

 private:
  void Iterate();

  VistaKernel* kernel_;
  Pid pid_;
  Tid tid_;
  std::string callsite_;
  Options options_;
  uint64_t iterations_ = 0;
};

// Kernel-side periodic KTIMER (DPC housekeeping: power management, memory
// manager, the per-second maintenance the paper's kernel line in Figure 1
// is made of).
class KernelTickerApp {
 public:
  KernelTickerApp(VistaKernel* kernel, const std::string& callsite, SimDuration period);
  void Start();

 private:
  VistaKernel* kernel_;
  KTimer* timer_ = nullptr;
  SimDuration period_;
};

// Winsock select loops with a weighted set of timeout values; each call
// allocates a fresh KTIMER through afd.sys.
class AfdSelectLoopApp {
 public:
  struct Options {
    std::vector<std::pair<SimDuration, double>> values;
    double ready_probability = 0.05;  // socket ready before the timeout
    SimDuration gap_mean = 0;
  };

  AfdSelectLoopApp(VistaKernel* kernel, VistaUserApi* api, Pid pid, Tid tid,
                   std::string callsite, Options options);
  void Start();

  uint64_t iterations() const { return iterations_; }

 private:
  void Iterate();
  SimDuration PickValue();

  VistaKernel* kernel_;
  VistaUserApi* api_;
  Pid pid_;
  Tid tid_;
  std::string callsite_;
  Options options_;
  double total_weight_ = 0;
  uint64_t iterations_ = 0;
};

// The deferred-operation pattern: bursts of activity re-arm (defer) the
// timer; it expires once the subject stays idle for `idle_timeout`.
class DeferredCloserApp {
 public:
  struct Options {
    SimDuration idle_timeout = 2 * kSecond;
    double burst_rate = 1.0 / 20.0;     // bursts per second
    int touches_per_burst = 6;
    SimDuration touch_spacing = 300 * kMillisecond;
  };

  DeferredCloserApp(VistaKernel* kernel, Pid pid, Tid tid, const std::string& callsite,
                    Options options);
  void Start();

  uint64_t closes() const { return closes_; }

 private:
  void ScheduleBurst();

  VistaKernel* kernel_;
  KTimer* timer_ = nullptr;
  Options options_;
  uint64_t closes_ = 0;
};

// The Outlook upcall-guard idiom: each "upcall" sets a 5 s timeout
// assertion (fresh dynamic KTIMER) and cancels it when the upcall returns
// a few milliseconds later. Activity alternates between a quiet baseline
// rate and short storms.
class UpcallGuardApp {
 public:
  struct Options {
    SimDuration guard_timeout = 5 * kSecond;
    double baseline_rate = 70.0;         // upcalls/s when quiet
    double storm_rate = 7000.0;          // upcalls/s during a storm
    SimDuration storm_length = kSecond;  // storm duration
    SimDuration storm_gap_mean = 25 * kSecond;
    SimDuration upcall_duration_mean = 2 * kMillisecond;
  };

  UpcallGuardApp(VistaKernel* kernel, Pid pid, Tid tid, const std::string& callsite,
                 Options options);
  void Start();

  uint64_t upcalls() const { return upcalls_; }
  uint64_t guard_expiries() const { return guard_expiries_; }

 private:
  void ScheduleNextUpcall();
  void ScheduleStorms();
  void Upcall();

  VistaKernel* kernel_;
  Pid pid_;
  Tid tid_;
  std::string callsite_;
  Options options_;
  bool in_storm_ = false;
  uint64_t upcalls_ = 0;
  uint64_t guard_expiries_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SRC_WORKLOADS_VISTA_APPS_H_
