#include "src/workloads/vista_workloads.h"

#include <memory>
#include <utility>

#include "src/osvista/userapi.h"
#include "src/workloads/vista_apps.h"

namespace tempo {

namespace {

struct VistaBase {
  TraceRun run;
  EtwSession* session = nullptr;
  VistaKernel* kernel = nullptr;
  VistaUserApi* api = nullptr;
};

VistaBase MakeVistaBase(const std::string& label, const WorkloadOptions& options) {
  VistaBase base;
  base.run.label = label;
  {
    Simulator::Options sim_options;
    sim_options.seed = options.seed;
    sim_options.cpus = options.cpus;
    base.run.sim = std::make_unique<Simulator>(sim_options);
  }

  auto session = std::make_unique<EtwSession>();
  session->AttachCpu(&base.run.sim->cpu());
  if (options.live != nullptr && options.live->channels != nullptr) {
    RelayChannel* tap = options.live->channels->Register("live/" + label);
    session->SetLiveTap(tap);
    if (options.live->poll && options.live->period > 0) {
      auto poll = options.live->poll;
      base.run.keepalive.push_back(
          base.run.sim->SchedulePeriodic(options.live->period, [tap, poll] {
            tap->FlushOpen();  // the drainer only sees published sub-buffers
            poll();
          }));
    }
  }
  base.session = base.run.Keep(std::move(session));

  VistaKernel::Options kernel_options;
  kernel_options.coalesce_ticks = options.coalesce_ticks;
  base.run.vista_kernel =
      std::make_unique<VistaKernel>(base.run.sim.get(), base.session, kernel_options);
  base.kernel = base.run.vista_kernel.get();
  base.api = base.run.Keep(std::make_unique<VistaUserApi>(base.kernel));
  base.kernel->Boot();
  if (options.live != nullptr) {
    options.live->processes = &base.run.sim->processes();
    options.live->callsites = &base.kernel->callsites();
  }
  return base;
}

Pid AddProcess(VistaBase& base, const std::string& name) {
  const Pid pid = base.run.sim->processes().AddProcess(name);
  base.run.pids[name] = pid;
  return pid;
}

Tid AddThread(VistaBase& base, Pid pid) { return base.run.sim->processes().AddThread(pid); }

void AddWaitLoop(VistaBase& base, Pid pid, const std::string& callsite,
                 SimDuration timeout, double satisfied, SimDuration gap = 0) {
  WaitLoopApp::Options options;
  options.timeout = timeout;
  options.satisfied_probability = satisfied;
  options.gap_mean = gap;
  base.run.Keep(std::make_unique<WaitLoopApp>(base.kernel, pid, AddThread(base, pid),
                                              callsite, options))->Start();
}

// The kernel's own periodic DPC housekeeping: the timer traffic that
// dominates Vista's idle trace (Table 2: kernel accesses ~4x user).
void AddKernelHousekeeping(VistaBase& base, double intensity) {
  auto add = [&](const char* callsite, SimDuration period) {
    base.run.Keep(std::make_unique<KernelTickerApp>(base.kernel, callsite, period))->Start();
  };
  add("nt/balance_set_manager", FromMilliseconds(15.625 / intensity));
  add("nt/power_manager", 100 * kMillisecond);
  add("nt/memory_manager", 1 * kSecond);
  add("nt/cache_lazy_writer", FromMilliseconds(515.6));
  add("nt/dpc_watchdog", 500 * kMillisecond);
  add("ndis/interface_poll", 2 * kSecond);
}

// The 26-process standard background population: service wait loops with
// the round and tick-derived values of Figure 7.
void AddBackgroundServices(VistaBase& base) {
  const Pid csrss = AddProcess(base, "csrss.exe");
  AddWaitLoop(base, csrss, "csrss/wait", 1 * kSecond, 0.08);
  AddWaitLoop(base, csrss, "csrss/gdi_wait", 250 * kMillisecond, 0.03);

  const Pid services = AddProcess(base, "services.exe");
  AddWaitLoop(base, services, "services/scm_wait", 2 * kSecond, 0.05);

  const Pid lsass = AddProcess(base, "lsass.exe");
  AddWaitLoop(base, lsass, "lsass/wait", 5 * kSecond, 0.05);

  for (int i = 0; i < 5; ++i) {
    const Pid svchost = AddProcess(base, "svchost.exe#" + std::to_string(i));
    static constexpr SimDuration kPeriods[] = {
        1 * kSecond, 500 * kMillisecond, FromMilliseconds(515.6), 3 * kSecond,
        FromMilliseconds(115.6)};
    AddWaitLoop(base, svchost, "svchost/wait", kPeriods[i], 0.06);
  }

  const Pid explorer = AddProcess(base, "explorer.exe");
  MessageQueue* queue = base.api->CreateMessageQueue(explorer, AddThread(base, explorer),
                                                     "explorer");
  queue->SetTimer(1 * kSecond, nullptr);  // taskbar clock

  const Pid tray = AddProcess(base, "audiotray.exe");
  MessageQueue* tray_queue =
      base.api->CreateMessageQueue(tray, AddThread(base, tray), "audiotray");
  tray_queue->SetTimer(250 * kMillisecond, nullptr);
  tray_queue->SetTimer(500 * kMillisecond, nullptr);

  // Registry lazy-close deferrals (the "deferred" pattern).
  const Pid config = AddProcess(base, "system-config");
  DeferredCloserApp::Options deferred;
  base.run.Keep(std::make_unique<DeferredCloserApp>(
      base.kernel, config, AddThread(base, config), "nt/registry_lazy_close",
      deferred))->Start();

  // A threadpool with slow maintenance timers.
  const Pid taskhost = AddProcess(base, "taskhost.exe");
  ThreadpoolPool* pool =
      base.api->CreatePool(taskhost, AddThread(base, taskhost), "taskhost");
  pool->CreateTimer(nullptr)->Set(30 * kSecond, 30 * kSecond);
  pool->CreateTimer(nullptr)->Set(60 * kSecond, 60 * kSecond);

  // A handful of quieter services to reach the paper's 26-process count.
  for (int i = 0; i < 12; ++i) {
    const Pid pid = AddProcess(base, "bgservice#" + std::to_string(i));
    AddWaitLoop(base, pid, "bgservice/wait", (5 + 5 * (i % 4)) * kSecond, 0.04);
  }
}

}  // namespace

TraceRun RunVistaIdle(const WorkloadOptions& options) {
  VistaBase base = MakeVistaBase("Idle", options);
  AddKernelHousekeeping(base, options.intensity);
  AddBackgroundServices(base);
  base.run.sim->RunUntil(options.duration);
  base.run.records = base.session->TakeRecords();
  return std::move(base.run);
}

TraceRun RunVistaSkype(const WorkloadOptions& options) {
  VistaBase base = MakeVistaBase("Skype", options);
  AddKernelHousekeeping(base, options.intensity);
  AddBackgroundServices(base);

  const Pid skype = AddProcess(base, "skype.exe");
  // Audio pump threads: short waits that nearly always time out, at the
  // rates that make the Vista Skype trace ~10x busier than Idle.
  AddWaitLoop(base, skype, "skype/audio_wait", 10 * kMillisecond, 0.10);
  AddWaitLoop(base, skype, "skype/render_wait", FromMilliseconds(2.5), 0.05);
  AddWaitLoop(base, skype, "skype/capture_wait", FromMilliseconds(5), 0.08);

  // Network select loops through afd (fresh KTIMER per call).
  AfdSelectLoopApp::Options select;
  select.values = {{50 * kMillisecond, 0.4},
                   {100 * kMillisecond, 0.3},
                   {20 * kMillisecond, 0.2},
                   {500 * kMillisecond, 0.1}};
  select.ready_probability = 0.5;
  base.run.Keep(std::make_unique<AfdSelectLoopApp>(base.kernel, base.api, skype,
                                                   AddThread(base, skype), "skype/select",
                                                   select))->Start();

  // Kernel-side audio engine DPC timer.
  base.run.Keep(std::make_unique<KernelTickerApp>(base.kernel, "portcls/audio_dpc",
                                                  3 * kMillisecond))->Start();

  base.run.sim->RunUntil(options.duration);
  base.run.records = base.session->TakeRecords();
  return std::move(base.run);
}

TraceRun RunVistaFirefox(const WorkloadOptions& options) {
  VistaBase base = MakeVistaBase("Firefox", options);
  AddKernelHousekeeping(base, options.intensity);
  AddBackgroundServices(base);

  const Pid firefox = AddProcess(base, "firefox.exe");

  // The Flash plugin over a best-effort substrate: thousands of sets per
  // second, most below 10 ms, some sub-millisecond (delivered at
  // essentially random times given the 15.6 ms tick).
  AfdSelectLoopApp::Options flash;
  flash.values = {{kMillisecond, 0.30},        {3 * kMillisecond, 0.20},
                  {500 * kMicrosecond, 0.12},  {10 * kMillisecond, 0.23},
                  {FromMilliseconds(15.6), 0.10}, {100 * kMillisecond, 0.05}};
  flash.ready_probability = 0.02;
  for (int i = 0; i < 9; ++i) {
    base.run.Keep(std::make_unique<AfdSelectLoopApp>(
        base.kernel, base.api, firefox, AddThread(base, firefox), "firefox/flash_select",
        flash))->Start();
  }

  // GUI timers for animations.
  MessageQueue* queue =
      base.api->CreateMessageQueue(firefox, AddThread(base, firefox), "firefox");
  queue->SetTimer(10 * kMillisecond, nullptr);
  queue->SetTimer(FromMilliseconds(15.6), nullptr);
  AddWaitLoop(base, firefox, "firefox/compositor_wait", 8 * kMillisecond, 0.15);

  base.run.sim->RunUntil(options.duration);
  base.run.records = base.session->TakeRecords();
  return std::move(base.run);
}

TraceRun RunVistaWebserver(const WorkloadOptions& options) {
  VistaBase base = MakeVistaBase("Webserver", options);
  AddKernelHousekeeping(base, options.intensity);
  AddBackgroundServices(base);

  // Apache on Vista: its request handling blocks in winsock select / waits;
  // Vista's TCP timers (retransmit, keepalive) are in private per-CPU
  // timing wheels and never reach the instrumented KTIMER interface — so,
  // as the paper observes, the trace resembles Idle and the 7200 s Linux
  // keepalive is conspicuously absent.
  const Pid apache = AddProcess(base, "httpd.exe");
  const double rps = 16.7 * options.intensity;  // 30000 requests / 30 min
  AfdSelectLoopApp::Options accept_loop;
  accept_loop.values = {{1 * kSecond, 1.0}};
  accept_loop.ready_probability = 0.9;  // connections keep arriving
  base.run.Keep(std::make_unique<AfdSelectLoopApp>(base.kernel, base.api, apache,
                                                   AddThread(base, apache), "httpd/accept",
                                                   accept_loop))->Start();
  // Worker waits: one request's worth of socket readiness per arrival.
  AfdSelectLoopApp::Options worker;
  worker.values = {{5 * kSecond, 0.6}, {15 * kSecond, 0.4}};
  worker.ready_probability = 0.97;
  worker.gap_mean = static_cast<SimDuration>(10.0 / rps * kSecond);
  for (int i = 0; i < 10; ++i) {
    base.run.Keep(std::make_unique<AfdSelectLoopApp>(
        base.kernel, base.api, apache, AddThread(base, apache), "httpd/worker_select",
        worker))->Start();
  }

  base.run.sim->RunUntil(options.duration);
  base.run.records = base.session->TakeRecords();
  return std::move(base.run);
}

TraceRun RunVistaDesktop(const WorkloadOptions& options) {
  VistaBase base = MakeVistaBase("Desktop", options);
  AddKernelHousekeeping(base, options.intensity);
  AddBackgroundServices(base);

  // Push the kernel line to the ~1000 sets/s the paper shows in Figure 1.
  // KTIMERs cannot fire faster than the clock interrupt, so the rate comes
  // from many tick-period timers (I/O completion, DPC queues, drivers).
  for (int i = 0; i < 14; ++i) {
    base.run.Keep(std::make_unique<KernelTickerApp>(
        base.kernel, "nt/io_timer_queue#" + std::to_string(i), kVistaClockTick))->Start();
  }

  // Outlook with the upcall-guard idiom: ~70 sets/s idle, bursting to
  // thousands per second.
  const Pid outlook = AddProcess(base, "outlook.exe");
  UpcallGuardApp::Options guard;
  base.run.Keep(std::make_unique<UpcallGuardApp>(base.kernel, outlook,
                                                 AddThread(base, outlook), "outlook/ui_guard",
                                                 guard))->Start();

  // A web browser setting tens of timeouts per second.
  const Pid browser = AddProcess(base, "iexplore.exe");
  AfdSelectLoopApp::Options browse;
  browse.values = {{100 * kMillisecond, 0.4},
                   {250 * kMillisecond, 0.3},
                   {1 * kSecond, 0.2},
                   {30 * kMillisecond, 0.1}};
  browse.ready_probability = 0.35;
  browse.gap_mean = 15 * kMillisecond;
  base.run.Keep(std::make_unique<AfdSelectLoopApp>(base.kernel, base.api, browser,
                                                   AddThread(base, browser),
                                                   "iexplore/select", browse))->Start();
  MessageQueue* queue =
      base.api->CreateMessageQueue(browser, AddThread(base, browser), "iexplore");
  queue->SetTimer(100 * kMillisecond, nullptr);

  base.run.sim->RunUntil(options.duration);
  base.run.records = base.session->TakeRecords();
  return std::move(base.run);
}

std::vector<TraceRun> RunAllVistaWorkloads(const WorkloadOptions& options) {
  std::vector<TraceRun> runs;
  runs.push_back(RunVistaIdle(options));
  runs.push_back(RunVistaSkype(options));
  runs.push_back(RunVistaFirefox(options));
  runs.push_back(RunVistaWebserver(options));
  return runs;
}

}  // namespace tempo
