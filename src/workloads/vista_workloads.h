// The Vista workloads of Sections 2.2.1 and 3.5.
//
//   Idle      — standard Vista desktop, user logged in, 26 background
//               processes, no foreground application.
//   Skype     — an active call.
//   Firefox   — the Flash-heavy page (2881 timer sets per second, many
//               below 10 ms).
//   Webserver — Apache under httperf load; Vista's TCP timers live in
//               private timing wheels and are invisible to the KTIMER
//               trace, so this looks much like Idle (the paper notes the
//               missing 7200 s keepalive).
//   Desktop   — the Figure 1 scenario: Outlook (with its 5 s upcall-guard
//               idiom bursting to thousands of sets per second), a web
//               browser, system processes and the kernel.

#ifndef TEMPO_SRC_WORKLOADS_VISTA_WORKLOADS_H_
#define TEMPO_SRC_WORKLOADS_VISTA_WORKLOADS_H_

#include "src/workloads/run.h"

namespace tempo {

TraceRun RunVistaIdle(const WorkloadOptions& options);
TraceRun RunVistaSkype(const WorkloadOptions& options);
TraceRun RunVistaFirefox(const WorkloadOptions& options);
TraceRun RunVistaWebserver(const WorkloadOptions& options);

// The Figure 1 desktop; default duration should be >= 90 s.
TraceRun RunVistaDesktop(const WorkloadOptions& options);

// The four Table 2 workloads, in column order.
std::vector<TraceRun> RunAllVistaWorkloads(const WorkloadOptions& options);

}  // namespace tempo

#endif  // TEMPO_SRC_WORKLOADS_VISTA_WORKLOADS_H_
