// Tests for the Section-5 proposal library: streaming distributions,
// adaptive timeouts, use-case interfaces, slack batching, and the timer
// dependency graph.

#include <gtest/gtest.h>

#include "src/adaptive/adaptive_timeout.h"
#include "src/adaptive/dependency.h"
#include "src/adaptive/distribution.h"
#include "src/adaptive/interfaces.h"
#include "src/adaptive/slack.h"
#include "src/adaptive/timer_service.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/trace/buffer.h"

namespace tempo {
namespace {

// --- StreamingDistribution ---

TEST(DistributionTest, EmptyQuantileIsZero) {
  StreamingDistribution d;
  EXPECT_EQ(d.Quantile(0.5), 0);
  EXPECT_EQ(d.count(), 0u);
}

TEST(DistributionTest, SingleValueQuantile) {
  StreamingDistribution d;
  d.Add(100 * kMillisecond);
  const SimDuration q = d.Quantile(0.99);
  // Bucket resolution: within ~25% of the true value.
  EXPECT_GE(q, 100 * kMillisecond);
  EXPECT_LE(q, 130 * kMillisecond);
}

TEST(DistributionTest, QuantilesAreMonotone) {
  StreamingDistribution d;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    d.Add(static_cast<SimDuration>(rng.Exponential(0.05) * kSecond));
  }
  SimDuration prev = 0;
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const SimDuration v = d.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(DistributionTest, QuantileSeparatesTwoModes) {
  StreamingDistribution d;
  for (int i = 0; i < 900; ++i) {
    d.Add(kMillisecond);
  }
  for (int i = 0; i < 100; ++i) {
    d.Add(kSecond);
  }
  EXPECT_LT(d.Quantile(0.5), 10 * kMillisecond);
  EXPECT_GT(d.Quantile(0.95), 500 * kMillisecond);
}

TEST(DistributionTest, DecayShiftsWeightToNewRegime) {
  StreamingDistribution d;
  for (int i = 0; i < 1000; ++i) {
    d.Add(kMillisecond);
  }
  d.Decay(0.01);
  for (int i = 0; i < 100; ++i) {
    d.Add(kSecond);
  }
  EXPECT_GT(d.Quantile(0.5), 500 * kMillisecond);
}

TEST(DistributionTest, ExtremeValuesClampToBucketRange) {
  StreamingDistribution d;
  d.Add(-5);
  d.Add(0);
  d.Add(INT64_MAX / 2);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_GT(d.Quantile(1.0), 0);
}

// --- AdaptiveTimeout ---

TEST(AdaptiveTimeoutTest, UsesInitialDuringWarmup) {
  AdaptiveTimeout timeout;
  EXPECT_EQ(timeout.Current(), 30 * kSecond);  // the classic constant
  timeout.RecordSuccess(kMillisecond);
  EXPECT_FALSE(timeout.warmed_up());
  EXPECT_EQ(timeout.Current(), 30 * kSecond);
}

TEST(AdaptiveTimeoutTest, LearnsTightBoundFromFastCompletions) {
  AdaptiveTimeout timeout;
  for (int i = 0; i < 100; ++i) {
    timeout.RecordSuccess(kMillisecond);
  }
  EXPECT_TRUE(timeout.warmed_up());
  // 99th percentile * safety factor of a 1 ms workload: a few ms, not 30 s.
  EXPECT_LT(timeout.Current(), 20 * kMillisecond);
  EXPECT_GE(timeout.Current(), kMillisecond);
}

TEST(AdaptiveTimeoutTest, TimeoutTriggersBackoff) {
  AdaptiveTimeout timeout;
  for (int i = 0; i < 100; ++i) {
    timeout.RecordSuccess(kMillisecond);
  }
  const SimDuration base = timeout.Current();
  timeout.RecordTimeout();
  EXPECT_EQ(timeout.Current(), 2 * base);
  timeout.RecordTimeout();
  EXPECT_EQ(timeout.Current(), 4 * base);
  timeout.RecordSuccess(kMillisecond);  // success resets backoff
  EXPECT_LE(timeout.Current(), base + base / 4);
}

TEST(AdaptiveTimeoutTest, LevelShiftRelearnsQuickly) {
  // The travelling-user scenario (Section 5.1): LAN latencies shift to WAN.
  AdaptiveTimeout::Options options;
  options.warmup_samples = 10;
  AdaptiveTimeout timeout(options);
  for (int i = 0; i < 200; ++i) {
    timeout.RecordSuccess(kMillisecond);
  }
  const SimDuration lan_bound = timeout.Current();
  for (int i = 0; i < 30; ++i) {
    timeout.RecordSuccess(130 * kMillisecond);  // WAN now
  }
  EXPECT_GE(timeout.level_shifts(), 1u);
  EXPECT_GT(timeout.Current(), lan_bound);
  EXPECT_GE(timeout.Current(), 130 * kMillisecond);
}

TEST(AdaptiveTimeoutTest, RespectsMinMaxClamps) {
  AdaptiveTimeout::Options options;
  options.min_timeout = 50 * kMillisecond;
  options.max_timeout = kSecond;
  AdaptiveTimeout timeout(options);
  for (int i = 0; i < 100; ++i) {
    timeout.RecordSuccess(kMicrosecond);
  }
  EXPECT_EQ(timeout.Current(), 50 * kMillisecond);
  for (int i = 0; i < 30; ++i) {
    timeout.RecordTimeout();
  }
  EXPECT_EQ(timeout.Current(), kSecond);
}

// --- TimerService ---

TEST(SimTimerServiceTest, ArmFiresAndCancelWorks) {
  Simulator sim;
  SimTimerService service(&sim);
  bool fired = false;
  service.Arm(kSecond, [&] { fired = true; });
  const ServiceTimerId cancel_me = service.Arm(2 * kSecond, [&] { FAIL(); });
  EXPECT_TRUE(service.Cancel(cancel_me));
  EXPECT_FALSE(service.Cancel(cancel_me));
  sim.RunUntil(3 * kSecond);
  EXPECT_TRUE(fired);
  EXPECT_EQ(service.arms(), 2u);
}

TEST(LinuxTimerServiceTest, ArmsTracedKernelTimers) {
  Simulator sim;
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer);
  kernel.Boot();
  LinuxTimerService service(&kernel, "adaptive/test", 3);
  bool fired = false;
  service.Arm(100 * kMillisecond, [&] { fired = true; });
  sim.RunUntil(kSecond);
  EXPECT_TRUE(fired);
  bool saw_set = false;
  for (const auto& r : buffer.records()) {
    if (r.op == TimerOp::kSet) {
      saw_set = true;
      EXPECT_EQ(kernel.callsites().Name(r.callsite), "adaptive/test");
      EXPECT_EQ(r.pid, 3);
    }
  }
  EXPECT_TRUE(saw_set);
}

TEST(LinuxTimerServiceTest, SlotsAreReusedAcrossArms) {
  Simulator sim;
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer);
  kernel.Boot();
  LinuxTimerService service(&kernel, "adaptive/test", 3);
  for (int i = 0; i < 10; ++i) {
    service.Arm(10 * kMillisecond, nullptr);
    sim.RunUntil(sim.Now() + 100 * kMillisecond);
  }
  std::set<TimerId> ids;
  for (const auto& r : buffer.records()) {
    ids.insert(r.timer);
  }
  EXPECT_EQ(ids.size(), 1u);  // one reused timer struct
}

// --- PeriodicTicker ---

TEST(PeriodicTickerTest, DriftFreeOverManyTicks) {
  Simulator sim;
  SimTimerService service(&sim);
  PeriodicTicker ticker(&service, 100 * kMillisecond, [] {});
  ticker.Start();
  sim.RunUntil(100 * kSecond);
  EXPECT_EQ(ticker.ticks(), 1000u);
  EXPECT_EQ(ticker.max_drift(), 0);
  ticker.Stop();
}

TEST(PeriodicTickerTest, StopHaltsTicks) {
  Simulator sim;
  SimTimerService service(&sim);
  int count = 0;
  PeriodicTicker ticker(&service, 100 * kMillisecond, [&] { ++count; });
  ticker.Start();
  sim.RunUntil(kSecond);
  ticker.Stop();
  const int at_stop = count;
  sim.RunUntil(10 * kSecond);
  EXPECT_EQ(count, at_stop);
}

// --- Watchdog ---

TEST(WatchdogTest, ExpiresWithoutKick) {
  Simulator sim;
  SimTimerService service(&sim);
  bool expired = false;
  Watchdog dog(&service, kSecond, [&] { expired = true; });
  dog.Kick();
  sim.RunUntil(2 * kSecond);
  EXPECT_TRUE(expired);
  EXPECT_EQ(dog.expiries(), 1u);
}

TEST(WatchdogTest, KicksDeferExpiry) {
  Simulator sim;
  SimTimerService service(&sim);
  bool expired = false;
  Watchdog dog(&service, kSecond, [&] { expired = true; });
  dog.Kick();
  for (int i = 1; i <= 20; ++i) {
    sim.ScheduleAt(i * 500 * kMillisecond, [&] { dog.Kick(); });
  }
  sim.RunUntil(10 * kSecond);
  EXPECT_FALSE(expired);
  sim.RunUntil(12 * kSecond);
  EXPECT_TRUE(expired);  // kicks stopped at 10 s
}

// --- ScopedTimeout ---

TEST(ScopedTimeoutTest, CancelsOnDestruction) {
  Simulator sim;
  SimTimerService service(&sim);
  bool fired = false;
  {
    ScopedTimeout guard(&service, kSecond, [&] { fired = true; });
    sim.RunUntil(500 * kMillisecond);
  }  // destructor cancels
  sim.RunUntil(5 * kSecond);
  EXPECT_FALSE(fired);
}

TEST(ScopedTimeoutTest, FiresIfScopeOutlivesTimeout) {
  Simulator sim;
  SimTimerService service(&sim);
  bool fired = false;
  {
    ScopedTimeout guard(&service, kSecond, [&] { fired = true; });
    sim.RunUntil(2 * kSecond);
    EXPECT_TRUE(guard.expired());
  }
  EXPECT_TRUE(fired);
}

// --- DeferredAction ---

TEST(DeferredActionTest, FiresAfterIdlePeriod) {
  Simulator sim;
  SimTimerService service(&sim);
  DeferredAction lazy(&service, kSecond, [] {});
  lazy.Touch();
  sim.RunUntil(10 * kSecond);
  EXPECT_EQ(lazy.fired(), 1u);
}

TEST(DeferredActionTest, ActivityPostponesAction) {
  Simulator sim;
  SimTimerService service(&sim);
  SimTime fired_at = -1;
  DeferredAction lazy(&service, kSecond, [&] { fired_at = sim.Now(); });
  // Touches every 400 ms until t=4 s; idle after that.
  for (int i = 0; i <= 10; ++i) {
    sim.ScheduleAt(i * 400 * kMillisecond, [&] { lazy.Touch(); });
  }
  sim.RunUntil(20 * kSecond);
  EXPECT_EQ(fired_at, 5 * kSecond);  // last touch at 4 s + 1 s idle
}

TEST(DeferredActionTest, TouchesAreCheaperThanTimerArms) {
  // The whole point versus the raw KeSetTimer-per-touch idiom: N touches
  // cost O(elapsed/idle) timer operations, not O(N).
  Simulator sim;
  SimTimerService service(&sim);
  DeferredAction lazy(&service, kSecond, [] {});
  for (int i = 0; i < 1000; ++i) {
    sim.ScheduleAt(i * kMillisecond, [&] { lazy.Touch(); });
  }
  sim.RunUntil(10 * kSecond);
  EXPECT_EQ(lazy.fired(), 1u);
  EXPECT_LE(lazy.arms(), 4u);
}

// --- TimeoutStack ---

TEST(TimeoutStackTest, InnerLongerTimeoutIsElided) {
  Simulator sim;
  SimTimerService service(&sim);
  TimeoutStack stack(&service);
  const uint64_t outer = stack.Push(kSecond, [] {});
  const uint64_t inner = stack.Push(5 * kSecond, [] { FAIL() << "elided"; });
  EXPECT_EQ(stack.armed_count(), 1u);
  EXPECT_EQ(stack.elided_count(), 1u);
  stack.Pop(inner);
  stack.Pop(outer);
  sim.RunUntil(10 * kSecond);
}

TEST(TimeoutStackTest, InnerShorterTimeoutIsArmed) {
  Simulator sim;
  SimTimerService service(&sim);
  TimeoutStack stack(&service);
  bool inner_fired = false;
  stack.Push(10 * kSecond, [] {});
  stack.Push(kSecond, [&] { inner_fired = true; });
  EXPECT_EQ(stack.armed_count(), 2u);
  sim.RunUntil(2 * kSecond);
  EXPECT_TRUE(inner_fired);
}

TEST(TimeoutStackTest, PopCancelsArmedTimeout) {
  Simulator sim;
  SimTimerService service(&sim);
  TimeoutStack stack(&service);
  const uint64_t token = stack.Push(kSecond, [] { FAIL(); });
  stack.Pop(token);
  sim.RunUntil(5 * kSecond);
}

// --- BatchingTimerService / SlackTicker ---

TEST(BatchingTest, OverlappingWindowsShareOneWakeup) {
  Simulator sim;
  SimTimerService base(&sim);
  BatchingTimerService batching(&base);
  int fired = 0;
  // Ten requests whose windows all contain t=10 s.
  for (int i = 0; i < 10; ++i) {
    batching.Arm(TimeSpec::Window((5 + i / 2.0) * kSecond, (10 + i) * kSecond),
                 [&] { ++fired; });
  }
  sim.RunUntil(kMinute);
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(batching.requests(), 10u);
  EXPECT_EQ(batching.wakeups_scheduled(), 1u);  // one underlying wakeup
}

TEST(BatchingTest, DisjointWindowsGetSeparateWakeups) {
  Simulator sim;
  SimTimerService base(&sim);
  BatchingTimerService batching(&base);
  int fired = 0;
  batching.Arm(TimeSpec::Window(kSecond, 2 * kSecond), [&] { ++fired; });
  batching.Arm(TimeSpec::Window(10 * kSecond, 11 * kSecond), [&] { ++fired; });
  sim.RunUntil(kMinute);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(batching.wakeups_scheduled(), 2u);
}

TEST(BatchingTest, FiresWithinRequestedWindow) {
  Simulator sim;
  SimTimerService base(&sim);
  BatchingTimerService batching(&base);
  SimTime fired_at = -1;
  batching.Arm(TimeSpec::Window(3 * kSecond, 7 * kSecond), [&] { fired_at = sim.Now(); });
  sim.RunUntil(kMinute);
  EXPECT_GE(fired_at, 3 * kSecond);
  EXPECT_LE(fired_at, 7 * kSecond);
}

TEST(BatchingTest, CancelRemovesMemberAndLastCancelKillsWakeup) {
  Simulator sim;
  SimTimerService base(&sim);
  BatchingTimerService batching(&base);
  int fired = 0;
  const ServiceTimerId a = batching.Arm(TimeSpec::Window(kSecond, 2 * kSecond), [&] { ++fired; });
  const ServiceTimerId b = batching.Arm(TimeSpec::Window(kSecond, 2 * kSecond), [&] { ++fired; });
  EXPECT_TRUE(batching.Cancel(a));
  EXPECT_FALSE(batching.Cancel(a));
  sim.RunUntil(10 * kSecond);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(batching.Cancel(b) == false);  // already fired
}

TEST(BatchingTest, ExactSpecStillFires) {
  Simulator sim;
  SimTimerService base(&sim);
  BatchingTimerService batching(&base);
  SimTime fired_at = -1;
  batching.Arm(TimeSpec::Exact(kSecond), [&] { fired_at = sim.Now(); });
  sim.RunUntil(10 * kSecond);
  EXPECT_EQ(fired_at, kSecond);
}

TEST(TimeSpecTest, AfterDeviationsBuildsStatisticalWindow) {
  // "After we have exceeded 100 standard deviations above the mean
  //  round-trip time to this host" (Section 5.3).
  const TimeSpec spec = AfterDeviations(130 * kMillisecond, kMillisecond, 100.0,
                                        /*slack=*/50 * kMillisecond);
  EXPECT_EQ(spec.earliest, 230 * kMillisecond);
  EXPECT_EQ(spec.latest, 280 * kMillisecond);

  // And it arms like any other window.
  Simulator sim;
  SimTimerService base(&sim);
  BatchingTimerService batching(&base);
  SimTime fired_at = -1;
  batching.Arm(spec, [&] { fired_at = sim.Now(); });
  sim.RunUntil(kSecond);
  EXPECT_GE(fired_at, spec.earliest);
  EXPECT_LE(fired_at, spec.latest);
}

TEST(SlackTickerTest, MaintainsAverageFrequencyDespiteSlack) {
  Simulator sim;
  SimTimerService base(&sim);
  BatchingTimerService batching(&base);
  SlackTicker ticker(&batching, 5 * kSecond, 2 * kSecond, [] {});
  ticker.Start();
  sim.RunUntil(10 * kMinute);
  // "Every 5 minutes, on average over an hour": mean period within slack.
  EXPECT_GE(ticker.ticks(), 100u);
  EXPECT_NEAR(ToSeconds(ticker.average_period()), 5.0, 1.0);
  ticker.Stop();
}

TEST(SlackTickerTest, SlackTickersBatchTogether) {
  Simulator sim;
  SimTimerService base(&sim);
  BatchingTimerService batching(&base);
  std::vector<std::unique_ptr<SlackTicker>> tickers;
  for (int i = 0; i < 8; ++i) {
    tickers.push_back(std::make_unique<SlackTicker>(&batching, 10 * kSecond, 8 * kSecond,
                                                    [] {}));
    tickers.back()->Start();
  }
  sim.RunUntil(10 * kMinute);
  // Eight tickers at the same period with generous slack should coalesce
  // far below 8x the wakeups of one.
  const uint64_t wakeups = batching.wakeups_scheduled();
  uint64_t ticks = 0;
  for (const auto& t : tickers) {
    ticks += t->ticks();
  }
  EXPECT_GT(ticks, 8 * 50u);
  EXPECT_LT(wakeups, ticks / 3);
  for (auto& t : tickers) {
    t->Stop();
  }
}

// --- TimerDependencyGraph ---

TEST(DependencyTest, MaxWinsMarksInnerRemovable) {
  TimerDependencyGraph graph;
  const uint32_t outer = graph.AddTimer("outer", 30 * kSecond);
  const uint32_t inner = graph.AddTimer("inner", 5 * kSecond);
  EXPECT_TRUE(graph.Relate(outer, inner, TimerRelation::kOverlapMaxWins));
  const auto analysis = graph.Analyse();
  ASSERT_EQ(analysis.removable.size(), 1u);
  EXPECT_EQ(analysis.removable[0], inner);
}

TEST(DependencyTest, MinWinsMarksOuterRemovable) {
  TimerDependencyGraph graph;
  const uint32_t outer = graph.AddTimer("outer", 30 * kSecond);
  const uint32_t inner = graph.AddTimer("inner", 5 * kSecond);
  EXPECT_TRUE(graph.Relate(outer, inner, TimerRelation::kOverlapMinWins));
  const auto analysis = graph.Analyse();
  ASSERT_EQ(analysis.removable.size(), 1u);
  EXPECT_EQ(analysis.removable[0], outer);
}

TEST(DependencyTest, CancelTogetherFormsGroups) {
  TimerDependencyGraph graph;
  const uint32_t keepalive = graph.AddTimer("keepalive", 7200 * kSecond);
  const uint32_t rtx = graph.AddTimer("retransmit", kSecond);
  const uint32_t unrelated = graph.AddTimer("other", kSecond);
  EXPECT_TRUE(graph.Relate(keepalive, rtx, TimerRelation::kOverlapCancelTogether));
  const auto analysis = graph.Analyse();
  ASSERT_EQ(analysis.cancel_groups.size(), 1u);
  EXPECT_EQ(analysis.cancel_groups[0].size(), 2u);
  (void)unrelated;
}

TEST(DependencyTest, InvalidRelationsRejected) {
  TimerDependencyGraph graph;
  const uint32_t small = graph.AddTimer("small", kSecond);
  const uint32_t big = graph.AddTimer("big", 10 * kSecond);
  // Overlap requires t1's timeout >= t2's.
  EXPECT_FALSE(graph.Relate(small, big, TimerRelation::kOverlapMaxWins));
  EXPECT_FALSE(graph.Relate(small, small, TimerRelation::kOverlapMaxWins));
  EXPECT_FALSE(graph.Relate(small, 99, TimerRelation::kDependsOn));
  // Self-dependency (periodic) is allowed.
  EXPECT_TRUE(graph.Relate(small, small, TimerRelation::kDependsOn));
}

TEST(DependencyTest, OverlapRewriteReducesConcurrency) {
  // A 3-deep nested timeout chain: naive arming holds 3 concurrent timers,
  // rewriting to a dependency chain holds 1 (Section 5.2).
  TimerDependencyGraph graph;
  const uint32_t gui = graph.AddTimer("gui", 60 * kSecond);
  const uint32_t rpc = graph.AddTimer("rpc", 10 * kSecond);
  const uint32_t tcp = graph.AddTimer("tcp", kSecond);
  EXPECT_TRUE(graph.Relate(gui, rpc, TimerRelation::kOverlapMaxWins));
  EXPECT_TRUE(graph.Relate(rpc, tcp, TimerRelation::kOverlapMaxWins));
  const auto analysis = graph.Analyse();
  EXPECT_EQ(analysis.concurrent_before, 3u);
  EXPECT_EQ(analysis.concurrent_after, 1u);
}

}  // namespace
}  // namespace tempo

namespace tempo {
namespace {

TEST(DelayTimerTest, AfterFiresOnceAndCancelWorks) {
  Simulator sim;
  SimTimerService service(&sim);
  DelayTimer delay(&service);
  int fired = 0;
  delay.After(kSecond, [&] { ++fired; });
  const ServiceTimerId id = delay.After(2 * kSecond, [&] { ++fired; });
  EXPECT_TRUE(delay.Cancel(id));
  sim.RunUntil(kMinute);
  EXPECT_EQ(fired, 1);
}

TEST(PeriodicTickerTest, SlackShiftsButKeepsCount) {
  Simulator sim;
  SimTimerService service(&sim);
  PeriodicTicker ticker(&service, kSecond, [] {}, /*slack=*/200 * kMillisecond);
  ticker.Start();
  sim.RunUntil(kMinute + 500 * kMillisecond);
  // Slack delays individual ticks but the drift-free schedule holds the
  // long-run count.
  EXPECT_GE(ticker.ticks(), 59u);
  EXPECT_LE(ticker.ticks(), 61u);
  EXPECT_LE(ticker.max_drift(), 200 * kMillisecond);
}

}  // namespace
}  // namespace tempo
