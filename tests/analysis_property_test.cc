// Property tests: conservation laws of the analysis pipeline over
// randomized (but legal) traces, parameterised by seed.

#include <gtest/gtest.h>

#include <map>

#include "src/analysis/classify.h"
#include "src/analysis/histogram.h"
#include "src/analysis/provenance.h"
#include "src/analysis/scatter.h"
#include "src/analysis/summary.h"
#include "src/sim/random.h"
#include "src/trace/file.h"

namespace tempo {
namespace {

// Generates a random-but-legal trace: per timer, a state machine of
// set / re-set / cancel / expire events in time order.
struct RandomTrace {
  std::vector<TraceRecord> records;
  CallsiteRegistry callsites;
  size_t arming_records = 0;
};

RandomTrace Generate(uint64_t seed, size_t steps) {
  RandomTrace trace;
  Rng rng(seed);
  const CallsiteId sites[4] = {
      trace.callsites.Intern("a/one"), trace.callsites.Intern("b/two"),
      trace.callsites.Intern("c/three"),
      trace.callsites.Intern("c/child", trace.callsites.Intern("c/three"))};
  constexpr int kTimers = 12;
  struct TimerState {
    bool pending = false;
    SimDuration timeout = 0;
    SimTime expiry = 0;
  };
  TimerState timers[kTimers];
  SimTime now = 0;

  for (size_t step = 0; step < steps; ++step) {
    now += rng.UniformInt(0, 50 * kMillisecond);
    const int t = static_cast<int>(rng.UniformInt(0, kTimers - 1));
    TimerState& state = timers[t];
    const double roll = rng.NextDouble();
    TraceRecord r;
    r.timestamp = now;
    r.timer = static_cast<TimerId>(t + 1);
    r.callsite = sites[t % 4];
    r.pid = static_cast<Pid>(t % 3);
    if (r.pid != kKernelPid) {
      r.flags = kFlagUser;
    }
    if (!state.pending || roll < 0.5) {
      // Arm (or re-arm in place).
      r.op = TimerOp::kSet;
      r.timeout = rng.UniformInt(kMillisecond, 2 * kSecond);
      r.expiry = now + r.timeout;
      state = {true, r.timeout, r.expiry};
      ++trace.arming_records;
    } else if (roll < 0.75) {
      r.op = TimerOp::kCancel;
      state.pending = false;
    } else {
      // Expire: jump time to the expiry.
      now = std::max(now, state.expiry);
      r.timestamp = now;
      r.op = TimerOp::kExpire;
      state.pending = false;
    }
    trace.records.push_back(r);
  }
  return trace;
}

class AnalysisPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnalysisPropertyTest, EpisodesConserveArmingRecords) {
  const RandomTrace trace = Generate(GetParam(), 3000);
  const auto episodes = BuildEpisodes(trace.records);
  // Every arming record opens exactly one episode.
  EXPECT_EQ(episodes.size(), trace.arming_records);
  // End states partition the episodes.
  std::map<EpisodeEnd, size_t> ends;
  for (const Episode& e : episodes) {
    ++ends[e.end];
  }
  size_t total = 0;
  for (const auto& [end, count] : ends) {
    total += count;
  }
  EXPECT_EQ(total, episodes.size());
}

TEST_P(AnalysisPropertyTest, EpisodesNeverEndBeforeTheyStart) {
  const RandomTrace trace = Generate(GetParam(), 3000);
  for (const Episode& e : BuildEpisodes(trace.records)) {
    EXPECT_GE(e.end_time, e.set_time);
    if (e.end == EpisodeEnd::kExpired) {
      // Expiry never happens before the requested timeout in our generator.
      EXPECT_GE(e.held(), e.timeout - kMillisecond);
    }
  }
}

TEST_P(AnalysisPropertyTest, SummaryMatchesManualCounts) {
  const RandomTrace trace = Generate(GetParam(), 3000);
  const TraceSummary s = Summarize(trace.records, "prop");
  EXPECT_EQ(s.accesses, trace.records.size());
  EXPECT_EQ(s.set, trace.arming_records);
  size_t cancels = 0;
  size_t expiries = 0;
  for (const auto& r : trace.records) {
    cancels += r.op == TimerOp::kCancel ? 1 : 0;
    expiries += r.op == TimerOp::kExpire ? 1 : 0;
  }
  EXPECT_EQ(s.canceled, cancels);
  EXPECT_EQ(s.expired, expiries);
  EXPECT_LE(s.concurrency, s.timers);
  EXPECT_EQ(s.user_space + s.kernel, s.accesses);
}

TEST_P(AnalysisPropertyTest, GroupsPartitionEpisodes) {
  const RandomTrace trace = Generate(GetParam(), 3000);
  const auto episodes = BuildEpisodes(trace.records);
  size_t grouped = 0;
  for (const auto& group : GroupEpisodes(episodes)) {
    EXPECT_FALSE(group.empty());
    for (size_t i = 1; i < group.size(); ++i) {
      EXPECT_GE(group[i].set_time, group[i - 1].set_time) << "group not time-ordered";
    }
    grouped += group.size();
  }
  EXPECT_EQ(grouped, episodes.size());
}

TEST_P(AnalysisPropertyTest, ClassifierCoversEveryGroup) {
  const RandomTrace trace = Generate(GetParam(), 3000);
  const auto groups = GroupEpisodes(BuildEpisodes(trace.records));
  const auto classes = ClassifyTrace(trace.records, ClassifyOptions{});
  EXPECT_EQ(classes.size(), groups.size());
  size_t classified_episodes = 0;
  for (const auto& c : classes) {
    classified_episodes += c.episodes;
  }
  size_t total_episodes = 0;
  for (const auto& g : groups) {
    total_episodes += g.size();
  }
  EXPECT_EQ(classified_episodes, total_episodes);
}

TEST_P(AnalysisPropertyTest, HistogramCountsAndCoverageConsistent) {
  const RandomTrace trace = Generate(GetParam(), 3000);
  HistogramOptions options;
  options.min_percent = 0.0;  // keep everything
  const ValueHistogram h = ComputeValueHistogram(trace.records, options);
  EXPECT_EQ(h.total_sets, trace.arming_records);
  uint64_t bucketed = 0;
  double percent_sum = 0;
  for (const auto& bucket : h.buckets) {
    bucketed += bucket.count;
    percent_sum += bucket.percent;
  }
  EXPECT_EQ(bucketed, h.total_sets);  // zero threshold: full coverage
  EXPECT_NEAR(percent_sum, 100.0, 1e-6);
  EXPECT_NEAR(h.coverage_percent, 100.0, 1e-6);
}

TEST_P(AnalysisPropertyTest, HistogramThresholdOnlyDropsBuckets) {
  const RandomTrace trace = Generate(GetParam(), 3000);
  HistogramOptions all;
  all.min_percent = 0.0;
  HistogramOptions thresholded;
  thresholded.min_percent = 5.0;
  const ValueHistogram full = ComputeValueHistogram(trace.records, all);
  const ValueHistogram cut = ComputeValueHistogram(trace.records, thresholded);
  EXPECT_LE(cut.buckets.size(), full.buckets.size());
  EXPECT_LE(cut.coverage_percent, full.coverage_percent + 1e-9);
  for (const auto& bucket : cut.buckets) {
    EXPECT_GE(bucket.percent, 5.0);
  }
}

TEST_P(AnalysisPropertyTest, ScatterCountsBoundedByEndedEpisodes) {
  const RandomTrace trace = Generate(GetParam(), 3000);
  ScatterOptions options;
  const auto points = ComputeScatter(trace.records, options);
  uint64_t plotted = 0;
  for (const auto& p : points) {
    plotted += p.count;
    EXPECT_GT(p.timeout_seconds, 0.0);
    EXPECT_LE(p.percent, options.max_percent + options.percent_bucket);
  }
  size_t ended_with_timeout = 0;
  for (const Episode& e : BuildEpisodes(trace.records)) {
    if (e.timeout > 0 &&
        (e.end == EpisodeEnd::kExpired || e.end == EpisodeEnd::kCanceled)) {
      ++ended_with_timeout;
    }
  }
  EXPECT_LE(plotted, ended_with_timeout);
}

TEST_P(AnalysisPropertyTest, ProvenanceConservesOps) {
  const RandomTrace trace = Generate(GetParam(), 3000);
  uint64_t total = 0;
  for (const auto& root : BuildProvenanceForest(trace.records, trace.callsites)) {
    total += root.subtree_ops;
  }
  EXPECT_EQ(total, trace.records.size());
}

TEST_P(AnalysisPropertyTest, SerializationPreservesEveryAnalysis) {
  const RandomTrace trace = Generate(GetParam(), 1500);
  const auto loaded = DeserializeTrace(SerializeTrace(trace.records, trace.callsites));
  ASSERT_TRUE(loaded.has_value());
  const TraceSummary before = Summarize(trace.records, "x");
  const TraceSummary after = Summarize(loaded->records, "x");
  EXPECT_EQ(before.accesses, after.accesses);
  EXPECT_EQ(before.set, after.set);
  EXPECT_EQ(before.expired, after.expired);
  EXPECT_EQ(before.canceled, after.canceled);
  EXPECT_EQ(before.concurrency, after.concurrency);
  const auto classes_before = ClassifyTrace(trace.records, ClassifyOptions{});
  const auto classes_after = ClassifyTrace(loaded->records, ClassifyOptions{});
  ASSERT_EQ(classes_before.size(), classes_after.size());
  for (size_t i = 0; i < classes_before.size(); ++i) {
    EXPECT_EQ(static_cast<int>(classes_before[i].pattern),
              static_cast<int>(classes_after[i].pattern));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1337u, 9001u, 31337u, 99999u,
                                           123456u));

}  // namespace
}  // namespace tempo
