// Tests for the analysis pipeline: lifetime reconstruction, the
// usage-pattern classifier, histograms, scatter, summaries, rates, origins
// and rendering.

#include <gtest/gtest.h>

#include "src/analysis/classify.h"
#include "src/analysis/histogram.h"
#include "src/analysis/lifetimes.h"
#include "src/analysis/origins.h"
#include "src/analysis/rates.h"
#include "src/analysis/render.h"
#include "src/analysis/scatter.h"
#include "src/analysis/summary.h"

namespace tempo {
namespace {

// Builder for synthetic traces.
class TraceBuilder {
 public:
  TraceBuilder& At(SimTime t) {
    now_ = t;
    return *this;
  }
  TraceBuilder& Advance(SimDuration d) {
    now_ += d;
    return *this;
  }
  TraceBuilder& Set(TimerId timer, SimDuration timeout, uint16_t flags = 0,
                    CallsiteId callsite = kUnknownCallsite, Pid pid = kKernelPid) {
    TraceRecord r;
    r.timestamp = now_;
    r.timer = timer;
    r.timeout = timeout;
    r.expiry = now_ + timeout;
    r.callsite = callsite;
    r.pid = pid;
    r.op = TimerOp::kSet;
    r.flags = flags;
    records_.push_back(r);
    return *this;
  }
  TraceBuilder& Cancel(TimerId timer) {
    TraceRecord r;
    r.timestamp = now_;
    r.timer = timer;
    r.op = TimerOp::kCancel;
    records_.push_back(r);
    return *this;
  }
  TraceBuilder& Expire(TimerId timer) {
    TraceRecord r;
    r.timestamp = now_;
    r.timer = timer;
    r.op = TimerOp::kExpire;
    records_.push_back(r);
    return *this;
  }
  TraceBuilder& Push(const TraceRecord& r) {
    records_.push_back(r);
    return *this;
  }
  const std::vector<TraceRecord>& records() const { return records_; }

 private:
  SimTime now_ = 0;
  std::vector<TraceRecord> records_;
};

// --- BuildEpisodes ---

TEST(LifetimesTest, SetExpirePairMakesExpiredEpisode) {
  TraceBuilder b;
  b.Set(1, kSecond).Advance(kSecond).Expire(1);
  const auto episodes = BuildEpisodes(b.records());
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].end, EpisodeEnd::kExpired);
  EXPECT_EQ(episodes[0].held(), kSecond);
  EXPECT_DOUBLE_EQ(episodes[0].fraction(), 1.0);
}

TEST(LifetimesTest, SetCancelPairMakesCanceledEpisode) {
  TraceBuilder b;
  b.Set(1, kSecond).Advance(300 * kMillisecond).Cancel(1);
  const auto episodes = BuildEpisodes(b.records());
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].end, EpisodeEnd::kCanceled);
  EXPECT_DOUBLE_EQ(episodes[0].fraction(), 0.3);
}

TEST(LifetimesTest, ReSetWhilePendingMakesResetEpisode) {
  TraceBuilder b;
  b.Set(1, kSecond).Advance(500 * kMillisecond).Set(1, kSecond);
  const auto episodes = BuildEpisodes(b.records());
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].end, EpisodeEnd::kReset);
  EXPECT_EQ(episodes[1].end, EpisodeEnd::kOpen);
}

TEST(LifetimesTest, CancelWithoutSetIsIgnored) {
  TraceBuilder b;
  b.Cancel(7).Advance(kSecond).Expire(8);
  EXPECT_TRUE(BuildEpisodes(b.records()).empty());
}

TEST(LifetimesTest, BlockUnblockBecomesEpisode) {
  TraceRecord block;
  block.timestamp = 0;
  block.timer = 5;
  block.timeout = kSecond;
  block.op = TimerOp::kBlock;
  TraceRecord unblock;
  unblock.timestamp = 400 * kMillisecond;
  unblock.timer = 5;
  unblock.op = TimerOp::kUnblock;
  unblock.flags = kFlagWaitSatisfied;
  const auto episodes = BuildEpisodes({block, unblock});
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].end, EpisodeEnd::kCanceled);  // satisfied = not a timeout
}

TEST(LifetimesTest, DynamicTimersClusterByCallsite) {
  // Two dynamic-alloc episodes with different timer ids but the same
  // call-site/thread must share a cluster key (Vista semantics).
  TraceBuilder b;
  b.Set(100, kSecond, kFlagDynamicAlloc, 9, 3).Advance(kSecond).Expire(100);
  b.Set(101, kSecond, kFlagDynamicAlloc, 9, 3).Advance(kSecond).Expire(101);
  b.Set(102, kSecond, 0, 9, 3);  // static identity: separate cluster
  auto groups = GroupEpisodes(BuildEpisodes(b.records()));
  EXPECT_EQ(groups.size(), 2u);
}

// --- classifier ---

ClassifyOptions DefaultOptions() { return ClassifyOptions{}; }

TEST(ClassifyTest, PeriodicTicker) {
  TraceBuilder b;
  for (int i = 0; i < 20; ++i) {
    b.Set(1, kSecond).Advance(kSecond).Expire(1);  // re-set right after expiry
  }
  const auto classes = ClassifyTrace(b.records(), DefaultOptions());
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].pattern, UsagePattern::kPeriodic);
  EXPECT_EQ(classes[0].dominant_timeout, kSecond);
}

TEST(ClassifyTest, PeriodicToleratesJitterWithinVariance) {
  TraceBuilder b;
  for (int i = 0; i < 20; ++i) {
    const SimDuration jitter = (i % 3) * 600 * kMicrosecond;  // < 2 ms
    b.Set(1, kSecond - jitter).Advance(kSecond).Expire(1).Advance(kMillisecond);
  }
  const auto classes = ClassifyTrace(b.records(), DefaultOptions());
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].pattern, UsagePattern::kPeriodic);
}

TEST(ClassifyTest, WatchdogNeverExpires) {
  TraceBuilder b;
  for (int i = 0; i < 20; ++i) {
    b.Set(1, 600 * kSecond).Advance(100 * kSecond);  // re-set long before expiry
  }
  const auto classes = ClassifyTrace(b.records(), DefaultOptions());
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].pattern, UsagePattern::kWatchdog);
}

TEST(ClassifyTest, DelayExpiresThenRestsBeforeReset) {
  TraceBuilder b;
  for (int i = 0; i < 20; ++i) {
    b.Set(1, kSecond).Advance(kSecond).Expire(1).Advance(500 * kMillisecond);
  }
  const auto classes = ClassifyTrace(b.records(), DefaultOptions());
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].pattern, UsagePattern::kDelay);
}

TEST(ClassifyTest, TimeoutMostlyCanceled) {
  TraceBuilder b;
  for (int i = 0; i < 20; ++i) {
    b.Set(1, 30 * kSecond).Advance(20 * kMillisecond).Cancel(1).Advance(2 * kSecond);
  }
  const auto classes = ClassifyTrace(b.records(), DefaultOptions());
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].pattern, UsagePattern::kTimeout);
  EXPECT_EQ(classes[0].dominant_timeout, 30 * kSecond);
}

TEST(ClassifyTest, DeferredMixesResetsAndExpiries) {
  TraceBuilder b;
  for (int round = 0; round < 6; ++round) {
    // A burst of deferrals, then the idle expiry (lazy close).
    for (int i = 0; i < 4; ++i) {
      b.Set(1, 2 * kSecond).Advance(300 * kMillisecond);
    }
    b.Set(1, 2 * kSecond).Advance(2 * kSecond).Expire(1).Advance(10 * kSecond);
  }
  const auto classes = ClassifyTrace(b.records(), DefaultOptions());
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].pattern, UsagePattern::kDeferred);
}

TEST(ClassifyTest, SelectCountdown) {
  TraceBuilder b;
  // Count 600 s down in 40 s slices (fd activity), then time out, reset.
  for (int cycle = 0; cycle < 3; ++cycle) {
    SimDuration remaining = 600 * kSecond;
    while (remaining > 40 * kSecond) {
      b.Set(1, remaining, kFlagUser);
      b.Advance(40 * kSecond);
      b.Cancel(1);
      remaining -= 40 * kSecond;
    }
    b.Set(1, remaining, kFlagUser).Advance(remaining).Expire(1);
  }
  const auto classes = ClassifyTrace(b.records(), DefaultOptions());
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].pattern, UsagePattern::kCountdown);
  EXPECT_EQ(classes[0].dominant_timeout, 600 * kSecond);
}

TEST(ClassifyTest, IrregularValuesAreOther) {
  TraceBuilder b;
  SimDuration values[] = {13 * kMillisecond, 170 * kMillisecond, 450 * kMillisecond,
                          90 * kMillisecond, 800 * kMillisecond, 230 * kMillisecond,
                          60 * kMillisecond, 610 * kMillisecond};
  for (SimDuration v : values) {
    b.Set(1, v).Advance(v).Expire(1).Advance(10 * kMillisecond);
  }
  const auto classes = ClassifyTrace(b.records(), DefaultOptions());
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].pattern, UsagePattern::kOther);
}

TEST(ClassifyTest, FewEpisodesAreSingleUse) {
  TraceBuilder b;
  b.Set(1, kSecond).Advance(kSecond).Expire(1);
  const auto classes = ClassifyTrace(b.records(), DefaultOptions());
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].pattern, UsagePattern::kSingleUse);
}

TEST(ClassifyTest, VarianceKnobControlsToleranceWindow) {
  // Values alternating +/- 5 ms around 1 s: with the paper's 2 ms variance
  // this is irregular; with 10 ms it is one dominant value.
  TraceBuilder b;
  for (int i = 0; i < 20; ++i) {
    const SimDuration v = kSecond + (i % 2 == 0 ? 5 : -5) * kMillisecond;
    b.Set(1, v).Advance(v).Expire(1);
  }
  ClassifyOptions narrow;
  narrow.variance = 2 * kMillisecond;
  EXPECT_EQ(ClassifyTrace(b.records(), narrow)[0].pattern, UsagePattern::kOther);
  ClassifyOptions wide;
  wide.variance = 10 * kMillisecond;
  EXPECT_EQ(ClassifyTrace(b.records(), wide)[0].pattern, UsagePattern::kPeriodic);
}

TEST(ClassifyTest, PatternHistogramPercentagesSumTo100) {
  TraceBuilder b;
  for (int i = 0; i < 10; ++i) {
    b.Set(1, kSecond).Advance(kSecond).Expire(1);
  }
  b.At(0);
  for (int i = 0; i < 10; ++i) {
    b.Set(2, 30 * kSecond).Advance(10 * kMillisecond).Cancel(2).Advance(kSecond);
  }
  b.Set(3, kSecond);  // single use: excluded
  const auto histogram = PatternHistogram(ClassifyTrace(b.records(), DefaultOptions()));
  double total = 0;
  for (const auto& [pattern, pct] : histogram) {
    total += pct;
  }
  EXPECT_NEAR(total, 100.0, 1e-9);
  EXPECT_NEAR(histogram.at(UsagePattern::kPeriodic), 50.0, 1e-9);
  EXPECT_NEAR(histogram.at(UsagePattern::kTimeout), 50.0, 1e-9);
}

// --- summary ---

TEST(SummaryTest, CountsAllFields) {
  TraceBuilder b;
  b.Set(1, kSecond, kFlagUser, kUnknownCallsite, 5);
  b.Set(2, kSecond);
  b.Advance(kSecond).Expire(1).Cancel(2);
  const TraceSummary s = Summarize(b.records(), "test");
  EXPECT_EQ(s.label, "test");
  EXPECT_EQ(s.timers, 2u);
  EXPECT_EQ(s.concurrency, 2u);
  EXPECT_EQ(s.accesses, 4u);
  EXPECT_EQ(s.user_space, 1u);
  EXPECT_EQ(s.kernel, 3u);
  EXPECT_EQ(s.set, 2u);
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.canceled, 1u);
}

TEST(SummaryTest, ConcurrencyIsMaxOutstanding) {
  TraceBuilder b;
  b.Set(1, kSecond).Set(2, kSecond).Set(3, kSecond);
  b.Advance(kSecond).Expire(1).Expire(2).Expire(3);
  b.Set(4, kSecond);
  const TraceSummary s = Summarize(b.records(), "t");
  EXPECT_EQ(s.concurrency, 3u);
}

TEST(SummaryTest, UnblockSatisfiedCountsAsCanceled) {
  TraceRecord block;
  block.op = TimerOp::kBlock;
  block.timer = 1;
  TraceRecord ok = block;
  ok.op = TimerOp::kUnblock;
  ok.flags = kFlagWaitSatisfied;
  TraceRecord timeout = block;
  timeout.op = TimerOp::kUnblock;
  const TraceSummary s = Summarize({block, ok, block, timeout}, "t");
  EXPECT_EQ(s.set, 2u);
  EXPECT_EQ(s.canceled, 1u);
  EXPECT_EQ(s.expired, 1u);
}

// --- histogram ---

TEST(HistogramTest, ThresholdDropsRareValues) {
  TraceBuilder b;
  for (int i = 0; i < 98; ++i) {
    b.Set(1, kSecond, kFlagUser).Advance(kSecond).Expire(1);
  }
  b.Set(2, 7 * kSecond, kFlagUser);  // ~1%: below the 2% threshold
  b.Set(3, 9 * kSecond, kFlagUser);
  HistogramOptions options;
  const ValueHistogram h = ComputeValueHistogram(b.records(), options);
  ASSERT_EQ(h.buckets.size(), 1u);
  EXPECT_EQ(h.buckets[0].value, kSecond);
  EXPECT_EQ(h.total_sets, 100u);
  EXPECT_NEAR(h.buckets[0].percent, 98.0, 0.01);
  EXPECT_NEAR(h.coverage_percent, 98.0, 0.01);
}

TEST(HistogramTest, KernelValuesBucketedInExactJiffies) {
  TraceBuilder b;
  // Kernel wheel records with jittered observed timeouts but exact expiry.
  for (int i = 0; i < 10; ++i) {
    TraceRecord r;
    r.timestamp = i * kSecond + 1700 * kMicrosecond;  // mid-jiffy
    r.timer = 1;
    r.op = TimerOp::kSet;
    r.flags = kFlagJiffyWheel;
    r.timeout = 204 * kMillisecond - 1500 * kMicrosecond;  // jittered
    r.expiry = JiffiesToTime(TimeToJiffies(r.timestamp) + 51);
    b.Push(r);
  }
  HistogramOptions options;
  options.min_percent = 0;
  const ValueHistogram h = ComputeValueHistogram(b.records(), options);
  ASSERT_EQ(h.buckets.size(), 1u);
  EXPECT_EQ(h.buckets[0].jiffies, 51);
  EXPECT_EQ(h.buckets[0].value, 204 * kMillisecond);
}

TEST(HistogramTest, UserOnlyFilter) {
  TraceBuilder b;
  b.Set(1, kSecond, kFlagUser);
  b.Set(2, 2 * kSecond);  // kernel
  HistogramOptions options;
  options.user_only = true;
  options.min_percent = 0;
  const ValueHistogram h = ComputeValueHistogram(b.records(), options);
  ASSERT_EQ(h.buckets.size(), 1u);
  EXPECT_EQ(h.total_sets, 1u);
}

TEST(HistogramTest, PidExclusionFilter) {
  TraceBuilder b;
  b.Set(1, kSecond, kFlagUser, kUnknownCallsite, /*pid=*/7);
  b.Set(2, 2 * kSecond, kFlagUser, kUnknownCallsite, /*pid=*/8);
  HistogramOptions options;
  options.exclude_pids = {7};
  options.min_percent = 0;
  const ValueHistogram h = ComputeValueHistogram(b.records(), options);
  ASSERT_EQ(h.buckets.size(), 1u);
  EXPECT_EQ(h.buckets[0].value, 2 * kSecond);
}

TEST(HistogramTest, CountdownExclusionFilter) {
  TraceBuilder b;
  // A countdown timer plus a fixed-value one.
  SimDuration remaining = 10 * kSecond;
  while (remaining > kSecond) {
    b.Set(1, remaining, kFlagUser).Advance(kSecond).Cancel(1);
    remaining -= kSecond;
  }
  for (int i = 0; i < 5; ++i) {
    b.Set(2, 5 * kSecond, kFlagUser).Advance(5 * kSecond).Expire(2);
  }
  HistogramOptions options;
  options.min_percent = 0;
  options.exclude_countdowns = true;
  const ValueHistogram h = ComputeValueHistogram(b.records(), options);
  ASSERT_EQ(h.buckets.size(), 1u);
  EXPECT_EQ(h.buckets[0].value, 5 * kSecond);
}

// --- scatter ---

TEST(ScatterTest, ExpiredAndCanceledSeparated) {
  TraceBuilder b;
  b.Set(1, kSecond).Advance(kSecond).Expire(1);
  b.Set(2, kSecond).Advance(300 * kMillisecond).Cancel(2);
  ScatterOptions options;
  const auto points = ComputeScatter(b.records(), options);
  ASSERT_EQ(points.size(), 2u);
  int expired = 0;
  for (const auto& p : points) {
    expired += p.expired ? 1 : 0;
  }
  EXPECT_EQ(expired, 1);
}

TEST(ScatterTest, CutoffDropsVeryLateDeliveries) {
  TraceBuilder b;
  // Delivered at 300% of its timeout: above the figures' 250% cut-off.
  b.Set(1, 10 * kMillisecond).Advance(30 * kMillisecond).Expire(1);
  b.Set(2, kSecond).Advance(kSecond).Expire(2);
  ScatterOptions options;
  const auto points = ComputeScatter(b.records(), options);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_NEAR(points[0].timeout_seconds, 1.0, 0.3);
}

TEST(ScatterTest, ImmediateTimersNotPlotted) {
  TraceBuilder b;
  b.Set(1, 0).Advance(kMillisecond).Expire(1);
  ScatterOptions options;
  EXPECT_TRUE(ComputeScatter(b.records(), options).empty());
}

TEST(ScatterTest, AggregatesEqualPointsWithCounts) {
  TraceBuilder b;
  for (int i = 0; i < 50; ++i) {
    b.Set(1, kSecond).Advance(kSecond).Expire(1);
  }
  ScatterOptions options;
  const auto points = ComputeScatter(b.records(), options);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].count, 50u);
}

TEST(ScatterTest, PercentReflectsCancelFraction) {
  TraceBuilder b;
  b.Set(1, 10 * kSecond).Advance(5 * kSecond).Cancel(1);
  ScatterOptions options;
  const auto points = ComputeScatter(b.records(), options);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_NEAR(points[0].percent, 50.0, options.percent_bucket);
}

// --- rates ---

TEST(RatesTest, GroupsByPidLabels) {
  TraceBuilder b;
  for (int s = 0; s < 10; ++s) {
    b.At(s * kSecond);
    for (int i = 0; i < 5; ++i) {
      b.Set(1, kSecond, kFlagUser, kUnknownCallsite, /*pid=*/1);
    }
    b.Set(2, kSecond, 0, kUnknownCallsite, kKernelPid);
  }
  RateGrouping grouping;
  grouping.pid_labels[1] = "Outlook";
  RateOptions options;
  options.end = 10 * kSecond;
  const auto series = ComputeRates(b.records(), grouping, options);
  ASSERT_EQ(series.size(), 2u);  // Outlook + Kernel
  for (const auto& s : series) {
    ASSERT_EQ(s.per_window.size(), 10u);
    if (s.label == "Outlook") {
      EXPECT_EQ(s.per_window[0], 5u);
    } else {
      EXPECT_EQ(s.label, "Kernel");
      EXPECT_EQ(s.per_window[0], 1u);
    }
  }
}

TEST(RatesTest, EmptyLabelDropsRecords) {
  TraceBuilder b;
  b.Set(1, kSecond, kFlagUser, kUnknownCallsite, 1);
  RateGrouping grouping;
  grouping.default_label = "";
  RateOptions options;
  options.end = kSecond;
  const auto series = ComputeRates(b.records(), grouping, options);
  EXPECT_TRUE(series.empty());
}

// --- origins ---

TEST(OriginsTest, AttributesValuesToCallsites) {
  CallsiteRegistry callsites;
  const CallsiteId usb = callsites.Intern("usb/hc_status_poll");
  const CallsiteId ide = callsites.Intern("ide/command_timeout");
  TraceBuilder b;
  for (int i = 0; i < 50; ++i) {
    b.Set(1, 248 * kMillisecond, 0, usb).Advance(248 * kMillisecond).Expire(1);
  }
  b.At(0);
  for (int i = 0; i < 10; ++i) {
    b.Set(2, 30 * kSecond, 0, ide).Advance(10 * kMillisecond).Cancel(2).Advance(kSecond);
  }
  OriginOptions options;
  const auto rows = ComputeOrigins(b.records(), callsites, options);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].origin, "usb/hc_status_poll");
  EXPECT_EQ(rows[0].pattern, UsagePattern::kPeriodic);
  EXPECT_EQ(rows[1].origin, "ide/command_timeout");
  EXPECT_EQ(rows[1].pattern, UsagePattern::kTimeout);
  EXPECT_EQ(rows[1].value, 30 * kSecond);
}

TEST(OriginsTest, LargeValuesAlwaysIncluded) {
  CallsiteRegistry callsites;
  const CallsiteId ka = callsites.Intern("tcp/keepalive");
  const CallsiteId common = callsites.Intern("common");
  TraceBuilder b;
  for (int i = 0; i < 1000; ++i) {
    b.Set(1, kSecond, 0, common).Advance(kSecond).Expire(1);
  }
  b.At(0);
  b.Set(2, 7200 * kSecond, 0, ka).Advance(kSecond).Cancel(2);
  OriginOptions options;
  options.min_percent = 1.0;
  const auto rows = ComputeOrigins(b.records(), callsites, options);
  bool found_keepalive = false;
  for (const auto& row : rows) {
    found_keepalive = found_keepalive || row.origin == "tcp/keepalive";
  }
  EXPECT_TRUE(found_keepalive);
}

// --- renderers (smoke: output contains the key content) ---

TEST(RenderTest, SummaryTableListsAllRows) {
  TraceSummary s;
  s.label = "Idle";
  s.timers = 47;
  s.set = 63183;
  const std::string table = RenderSummaryTable({s});
  EXPECT_NE(table.find("Idle"), std::string::npos);
  EXPECT_NE(table.find("63183"), std::string::npos);
  EXPECT_NE(table.find("Timers"), std::string::npos);
  EXPECT_NE(table.find("Canceled"), std::string::npos);
}

TEST(RenderTest, PatternHistogramShowsPercentages) {
  std::map<UsagePattern, double> h;
  h[UsagePattern::kPeriodic] = 62.5;
  const std::string out = RenderPatternHistogram({{"Idle", h}});
  EXPECT_NE(out.find("periodic"), std::string::npos);
  EXPECT_NE(out.find("62.5%"), std::string::npos);
}

TEST(RenderTest, ValueHistogramShowsJiffies) {
  ValueHistogram h;
  ValueBucket bucket;
  bucket.value = 204 * kMillisecond;
  bucket.jiffies = 51;
  bucket.count = 10;
  bucket.percent = 12.5;
  h.buckets.push_back(bucket);
  h.total_sets = 80;
  h.coverage_percent = 12.5;
  const std::string out = RenderValueHistogram(h, /*show_jiffies=*/true);
  EXPECT_NE(out.find("0.204"), std::string::npos);
  EXPECT_NE(out.find("(51)"), std::string::npos);
}

TEST(RenderTest, ScatterPlotsWithoutCrashing) {
  std::vector<ScatterPoint> points;
  for (int i = 0; i < 20; ++i) {
    ScatterPoint p;
    p.timeout_seconds = 0.001 * (i + 1);
    p.percent = 10.0 * i;
    p.count = static_cast<uint64_t>(i + 1);
    points.push_back(p);
  }
  const std::string out = RenderScatter(points);
  EXPECT_NE(out.find("%"), std::string::npos);
  const std::string cols = ScatterColumns(points);
  EXPECT_NE(cols.find("timeout_s"), std::string::npos);
}

TEST(RenderTest, OriginsTableShowsClasses) {
  OriginRow row;
  row.value = 5 * kSecond;
  row.origin = "mm/writeback";
  row.pattern = UsagePattern::kPeriodic;
  row.sets = 360;
  const std::string out = RenderOrigins({row});
  EXPECT_NE(out.find("mm/writeback"), std::string::npos);
  EXPECT_NE(out.find("periodic"), std::string::npos);
}

}  // namespace
}  // namespace tempo

namespace tempo {
namespace {

TEST(RenderRatesTest, ReportsMeanAndPeakPerSeries) {
  RateSeries outlook{"Outlook", {70, 70, 7000, 70}};
  const std::string out = RenderRates({outlook}, kSecond);
  EXPECT_NE(out.find("Outlook"), std::string::npos);
  EXPECT_NE(out.find("peak 7000/s"), std::string::npos);
}

TEST(RenderTableTest, AlignsColumnsAndPadsMissingCells) {
  const std::string out =
      RenderTable({"name", "value"}, {{"a", "1"}, {"long-name-row"}});
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name-row"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

}  // namespace
}  // namespace tempo
