// Tests for the C10M million-connection server scenario (src/net/server.h):
// determinism in the seed, the serial/threaded lane identity, zero timer
// leaks through teardown, and the scenario running against every TimerQueue
// backend. Suite names start with C10M so the TSan CI job picks them up.

#include <gtest/gtest.h>

#include <string>

#include "src/net/server.h"
#include "src/timer/queue.h"
#include "src/timer/timer_service.h"

namespace tempo {
namespace {

C10MOptions SmallOptions() {
  C10MOptions options;
  options.connections = 4000;
  options.lanes = 4;
  options.seed = 42;
  options.duration = 400 * kMillisecond;
  options.tick = 10 * kMillisecond;
  options.keepalive_interval = 200 * kMillisecond;
  options.idle_timeout = kSecond;
  options.event_rate = 0.05;
  return options;
}

TEST(C10MServerTest, SameSeedSameReport) {
  const C10MReport a = C10MServer(SmallOptions()).Run();
  const C10MReport b = C10MServer(SmallOptions()).Run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.fingerprint, b.fingerprint);

  C10MOptions other = SmallOptions();
  other.seed = 43;
  const C10MReport c = C10MServer(other).Run();
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(C10MServerTest, SerialAndThreadedReportsAreIdentical) {
  const C10MReport serial = C10MServer(SmallOptions()).Run();
  const C10MReport threaded = C10MServer(SmallOptions()).RunThreaded();
  EXPECT_EQ(serial, threaded);
}

TEST(C10MServerTest, TeardownLeavesNoTimers) {
  const C10MReport report = C10MServer(SmallOptions()).Run();
  EXPECT_EQ(report.final_live_timers, 0u);
  EXPECT_EQ(report.teardown_canceled, report.teardown_collected);
  // Every connection keeps keepalive + idle armed for its whole life, so
  // teardown must find at least two timers per connection.
  EXPECT_GE(report.teardown_collected, 2 * report.connections);
}

TEST(C10MServerTest, EveryConnectionHoldsStandingTimers) {
  const C10MReport report = C10MServer(SmallOptions()).Run();
  EXPECT_EQ(report.connections, 4000u);
  EXPECT_GE(report.peak_live_timers, 2 * report.connections);
  EXPECT_GT(report.keepalive_probes, 0u);
  EXPECT_GT(report.delayed_acks_fired + report.delayed_acks_coalesced, 0u);
  EXPECT_GT(report.timers_rescheduled, 0u);
  EXPECT_GT(report.segments_sent, 0u);
}

TEST(C10MServerTest, RunsOnEveryBackend) {
  for (const std::string& name : TimerQueueNames()) {
    C10MOptions options = SmallOptions();
    options.connections = 1000;
    options.queue = name;
    const C10MReport serial = C10MServer(options).Run();
    const C10MReport threaded = C10MServer(options).RunThreaded();
    EXPECT_EQ(serial, threaded) << name;
    EXPECT_EQ(serial.final_live_timers, 0u) << name;
    EXPECT_GE(serial.peak_live_timers, 2 * serial.connections) << name;
  }
}

TEST(C10MServerTest, LaneCountDoesNotChangeTotals) {
  // Different lane counts change the partition (and thus per-lane RNG
  // streams), but the structural invariants must hold for any of them,
  // including lanes that do not divide the connection count.
  for (const size_t lanes : {1u, 3u, 8u}) {
    C10MOptions options = SmallOptions();
    options.connections = 1000;
    options.lanes = lanes;
    const C10MReport serial = C10MServer(options).Run();
    const C10MReport threaded = C10MServer(options).RunThreaded();
    EXPECT_EQ(serial, threaded) << lanes << " lanes";
    EXPECT_EQ(serial.lanes, lanes);
    EXPECT_EQ(serial.final_live_timers, 0u) << lanes << " lanes";
    EXPECT_GE(serial.peak_live_timers, 2 * serial.connections);
  }
}

TEST(C10MServerTest, ServiceVisibleBetweenConstructionAndRun) {
  C10MServer server(SmallOptions());
  EXPECT_EQ(server.service().Size(), 0u);  // lanes arm their timers in Run
  EXPECT_EQ(server.service().shard_count(), SmallOptions().lanes);
  const C10MReport report = server.Run();
  EXPECT_EQ(server.service().Size(), 0u);
  EXPECT_EQ(report.final_live_timers, 0u);
}

}  // namespace
}  // namespace tempo
