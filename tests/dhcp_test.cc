// Tests for the DHCP lease timers — the RFC 2131 overlapping-timer set the
// paper cites in Section 5.2.

#include <gtest/gtest.h>

#include "src/adaptive/dependency.h"
#include "src/net/dhcp.h"
#include "src/trace/buffer.h"

namespace tempo {
namespace {

class DhcpTest : public ::testing::Test {
 protected:
  DhcpTest()
      : kernel_(&sim_, &buffer_, NoJitter()), net_(&sim_),
        client_node_(net_.AddNode("laptop")), server_node_(net_.AddNode("dhcpd")),
        server_(&sim_, &net_, server_node_, /*lease=*/60 * kSecond),
        client_(&kernel_, &net_, client_node_, &server_, /*pid=*/1) {
    LinkParams lan;
    lan.latency = 200 * kMicrosecond;
    net_.SetLinkBoth(client_node_, server_node_, lan);
    kernel_.Boot();
  }

  static LinuxKernel::Options NoJitter() {
    LinuxKernel::Options options;
    options.max_set_jitter = 0;
    return options;
  }

  Simulator sim_{4};
  RelayBuffer buffer_;
  LinuxKernel kernel_;
  SimNetwork net_;
  NodeId client_node_;
  NodeId server_node_;
  DhcpServer server_;
  DhcpClient client_;
};

TEST_F(DhcpTest, AcquiresLeaseAndArmsAllThreeTimers) {
  client_.Start();
  sim_.RunUntil(kSecond);
  EXPECT_EQ(client_.state(), DhcpState::kBound);
  // All three overlapping timers armed together, T1 < T2 < expiry.
  std::map<std::string, SimDuration> sets;
  for (const auto& r : buffer_.records()) {
    if (r.op == TimerOp::kSet) {
      sets[kernel_.callsites().Name(r.callsite)] = r.timeout;
    }
  }
  ASSERT_EQ(sets.count("dhcp/t1_renew"), 1u);
  ASSERT_EQ(sets.count("dhcp/t2_rebind"), 1u);
  ASSERT_EQ(sets.count("dhcp/lease_expiry"), 1u);
  EXPECT_EQ(sets["dhcp/t1_renew"], 30 * kSecond);        // 0.5 * lease
  EXPECT_EQ(sets["dhcp/t2_rebind"], FromSeconds(52.5));  // 0.875 * lease
  EXPECT_EQ(sets["dhcp/lease_expiry"], 60 * kSecond);
}

TEST_F(DhcpTest, HealthyServerRenewsAtT1Forever) {
  client_.Start();
  // +1 s so the run does not end exactly on a T1 boundary mid-renewal.
  sim_.RunUntil(10 * kMinute + kSecond);
  EXPECT_EQ(client_.state(), DhcpState::kBound);
  // Renewal every ~30 s: ~19-20 renewals in 10 minutes.
  EXPECT_GE(client_.renewals(), 18u);
  EXPECT_EQ(client_.rebinds(), 0u);
  EXPECT_EQ(client_.lease_losses(), 0u);
}

TEST_F(DhcpTest, DeadServerWalksRenewRebindExpire) {
  client_.Start();
  sim_.RunUntil(kSecond);
  server_.set_down(true);
  bool lost = false;
  client_.on_lease_lost = [&] { lost = true; };
  // T1 at 30 s -> renewing; T2 at 52.5 s -> rebinding; expiry at 60 s.
  sim_.RunUntil(40 * kSecond);
  EXPECT_EQ(client_.state(), DhcpState::kRenewing);
  sim_.RunUntil(55 * kSecond);
  EXPECT_EQ(client_.state(), DhcpState::kRebinding);
  sim_.RunUntil(kMinute + 2 * kSecond);
  EXPECT_TRUE(lost);
  EXPECT_EQ(client_.lease_losses(), 1u);
  EXPECT_EQ(client_.state(), DhcpState::kInit);
}

TEST_F(DhcpTest, ServerRecoveryDuringRebindSavesLease) {
  client_.Start();
  sim_.RunUntil(kSecond);
  server_.set_down(true);
  // Come back while the client is rebinding (between 52.5 s and 60 s).
  sim_.ScheduleAt(55 * kSecond, [&] { server_.set_down(false); });
  sim_.RunUntil(2 * kMinute);
  EXPECT_EQ(client_.lease_losses(), 0u);
  EXPECT_GE(client_.rebinds(), 1u);
  EXPECT_EQ(client_.state(), DhcpState::kBound);
}

TEST_F(DhcpTest, RenewalCancelsTheOverlappingSetTogether) {
  client_.Start();
  sim_.RunUntil(35 * kSecond);  // past the first renewal
  size_t expiry_cancels = 0;
  size_t t2_cancels = 0;
  for (const auto& r : buffer_.records()) {
    if (r.op != TimerOp::kCancel) {
      continue;
    }
    const std::string& name = kernel_.callsites().Name(r.callsite);
    expiry_cancels += name == "dhcp/lease_expiry" ? 1 : 0;
    t2_cancels += name == "dhcp/t2_rebind" ? 1 : 0;
  }
  // The ACK canceled T2 and the expiry even though neither was close to
  // firing — the cancel-together idiom of Section 5.2.
  EXPECT_GE(expiry_cancels, 1u);
  EXPECT_GE(t2_cancels, 1u);
}

TEST_F(DhcpTest, DependencyGraphProvesT1T2Redundant) {
  // Declaring the RFC 2131 set to the dependency graph shows only the
  // lease expiry matters for failure detection (max-wins), and the rewrite
  // collapses three concurrent timers to one.
  TimerDependencyGraph graph;
  const uint32_t expiry = graph.AddTimer("dhcp/lease_expiry", 60 * kSecond);
  const uint32_t t2 = graph.AddTimer("dhcp/t2_rebind", FromSeconds(52.5));
  const uint32_t t1 = graph.AddTimer("dhcp/t1_renew", 30 * kSecond);
  EXPECT_TRUE(graph.Relate(expiry, t2, TimerRelation::kOverlapMaxWins));
  EXPECT_TRUE(graph.Relate(t2, t1, TimerRelation::kOverlapMaxWins));
  const auto analysis = graph.Analyse();
  EXPECT_EQ(analysis.removable.size(), 2u);  // T1 and T2
  EXPECT_EQ(analysis.concurrent_before, 3u);
  EXPECT_EQ(analysis.concurrent_after, 1u);
}

}  // namespace
}  // namespace tempo
