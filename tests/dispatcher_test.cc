// Tests for the temporal dispatcher (Section 5.5): declared requirements
// run the right code at the right time, watchdog kicks cost no timer
// operations, slack windows batch onto shared wakeups, and CPU fairness
// orders competing dispatches.

#include <gtest/gtest.h>

#include <vector>

#include "src/dispatcher/dispatcher.h"

namespace tempo {
namespace {

class DispatcherTest : public ::testing::Test {
 protected:
  Simulator sim_{1};
  TemporalDispatcher dispatcher_{&sim_};
};

TEST_F(DispatcherTest, RunAfterRunsAtExactTime) {
  DispatchTask* task = dispatcher_.CreateTask("app");
  SimTime ran_at = -1;
  task->RunAfter(250 * kMillisecond, [&] { ran_at = sim_.Now(); });
  sim_.RunUntil(kSecond);
  EXPECT_EQ(ran_at, 250 * kMillisecond);
  EXPECT_EQ(task->dispatches(), 1u);
  EXPECT_EQ(task->worst_lateness(), 0);
}

TEST_F(DispatcherTest, RunWithinRunsInsideTheWindow) {
  DispatchTask* task = dispatcher_.CreateTask("app");
  SimTime ran_at = -1;
  task->RunWithin(kSecond, 5 * kSecond, [&] { ran_at = sim_.Now(); });
  sim_.RunUntil(kMinute);
  EXPECT_GE(ran_at, kSecond);
  EXPECT_LE(ran_at, 5 * kSecond);
}

TEST_F(DispatcherTest, CancelPreventsDispatch) {
  DispatchTask* task = dispatcher_.CreateTask("app");
  const RequirementId id = task->RunAfter(kSecond, [] { FAIL(); });
  EXPECT_TRUE(task->Cancel(id));
  EXPECT_FALSE(task->Cancel(id));
  sim_.RunUntil(kMinute);
}

TEST_F(DispatcherTest, RunEveryHoldsCadenceDriftFree) {
  DispatchTask* task = dispatcher_.CreateTask("app");
  std::vector<SimTime> fires;
  task->RunEvery(100 * kMillisecond, 0, [&] { fires.push_back(sim_.Now()); });
  sim_.RunUntil(10 * kSecond);
  ASSERT_EQ(fires.size(), 100u);
  for (size_t i = 0; i < fires.size(); ++i) {
    EXPECT_EQ(fires[i], static_cast<SimTime>(i + 1) * 100 * kMillisecond);
  }
}

TEST_F(DispatcherTest, GuardFiresWithoutCompletion) {
  DispatchTask* task = dispatcher_.CreateTask("app");
  bool expired = false;
  task->Guard(kSecond, [&] { expired = true; });
  sim_.RunUntil(kMinute);
  EXPECT_TRUE(expired);
}

TEST_F(DispatcherTest, CompletedGuardNeverFires) {
  DispatchTask* task = dispatcher_.CreateTask("app");
  const RequirementId guard = task->Guard(kSecond, [] { FAIL(); });
  sim_.ScheduleAt(100 * kMillisecond, [&] { task->Complete(guard); });
  sim_.RunUntil(kMinute);
}

TEST_F(DispatcherTest, KickedGuardDefersWithoutTimerReprogramming) {
  DispatchTask* task = dispatcher_.CreateTask("app");
  SimTime expired_at = -1;
  const RequirementId guard = task->Guard(kSecond, [&] { expired_at = sim_.Now(); });
  // Kick every 500 ms until t = 5 s: the guard must fire at ~6 s.
  for (int i = 1; i <= 10; ++i) {
    sim_.ScheduleAt(i * 500 * kMillisecond, [&, guard] { task->Kick(guard); });
  }
  const uint64_t programs_before = dispatcher_.hardware_programs();
  sim_.RunUntil(kMinute);
  EXPECT_EQ(expired_at, 6 * kSecond);
  // Ten kicks must not have caused ten timer re-programmings: a kick is a
  // timestamp update; only the (rare) stale wakeups reprogram.
  EXPECT_LE(dispatcher_.hardware_programs() - programs_before, 12u);
}

TEST_F(DispatcherTest, SlackWindowsShareOneWakeup) {
  DispatchTask* task = dispatcher_.CreateTask("app");
  int ran = 0;
  // Eight one-shots whose windows all contain t = 10 s.
  for (int i = 0; i < 8; ++i) {
    task->RunWithin((2 + i) * kSecond, (10 + i) * kSecond, [&] { ++ran; });
  }
  sim_.RunUntil(kMinute);
  EXPECT_EQ(ran, 8);
  // The earliest deadline forces one wakeup at 10 s; the other seven ride
  // along as piggybacked dispatches.
  EXPECT_EQ(dispatcher_.piggybacked_dispatches(), 7u);
}

TEST_F(DispatcherTest, ExactRequirementsDoNotPiggybackEarly) {
  DispatchTask* task = dispatcher_.CreateTask("app");
  std::vector<SimTime> fires;
  task->RunAfter(kSecond, [&] { fires.push_back(sim_.Now()); });
  task->RunAfter(2 * kSecond, [&] { fires.push_back(sim_.Now()); });
  sim_.RunUntil(kMinute);
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_EQ(fires[0], kSecond);
  EXPECT_EQ(fires[1], 2 * kSecond);  // zero-slack: may not run at 1 s
}

TEST_F(DispatcherTest, FairnessOrdersSimultaneousDispatches) {
  DispatchTask* light = dispatcher_.CreateTask("light", 1);
  DispatchTask* heavy = dispatcher_.CreateTask("heavy", 1);
  heavy->ChargeWork(10 * kSecond);  // heavy has consumed more CPU
  std::vector<std::string> order;
  heavy->RunAfter(kSecond, [&] { order.push_back("heavy"); });
  light->RunAfter(kSecond, [&] { order.push_back("light"); });
  sim_.RunUntil(kMinute);
  ASSERT_EQ(order.size(), 2u);
  // Same deadline: the task with less virtual runtime goes first.
  EXPECT_EQ(order[0], "light");
  EXPECT_EQ(order[1], "heavy");
}

TEST_F(DispatcherTest, WeightScalesVirtualRuntime) {
  DispatchTask* heavy_weight = dispatcher_.CreateTask("vip", 10);
  heavy_weight->ChargeWork(10 * kSecond);
  // weight 10: vruntime advances at 1/10th rate.
  EXPECT_EQ(heavy_weight->virtual_runtime(), kSecond);
}

TEST_F(DispatcherTest, CallbackMayDeclareNewRequirements) {
  DispatchTask* task = dispatcher_.CreateTask("app");
  SimTime second_ran = -1;
  task->RunAfter(kSecond, [&] {
    task->RunAfter(kSecond, [&] { second_ran = sim_.Now(); });
  });
  sim_.RunUntil(kMinute);
  EXPECT_EQ(second_ran, 2 * kSecond);
}

TEST_F(DispatcherTest, CallbackMayCancelSibling) {
  DispatchTask* task = dispatcher_.CreateTask("app");
  RequirementId sibling = kInvalidRequirement;
  int ran = 0;
  task->RunAfter(kSecond, [&] {
    ++ran;
    task->Cancel(sibling);
  });
  sibling = task->RunAfter(kSecond, [&] { ++ran; });
  sim_.RunUntil(kMinute);
  // Either both dispatched at the same wakeup in declaration order (the
  // first cancels the second), so exactly one runs.
  EXPECT_EQ(ran, 1);
}

TEST_F(DispatcherTest, LatenessAccountedAgainstWindow) {
  DispatchTask* task = dispatcher_.CreateTask("app");
  // Nothing can be late in a pure simulation unless windows are declared
  // in the past; emulate a missed deadline via a zero-length window that
  // has already closed when the dispatcher first wakes.
  task->RunAfter(kSecond, [] {});
  sim_.RunUntil(kMinute);
  EXPECT_EQ(task->total_lateness(), 0);
}

TEST_F(DispatcherTest, CountersAreConsistent) {
  DispatchTask* task = dispatcher_.CreateTask("app");
  for (int i = 0; i < 10; ++i) {
    task->RunAfter((i + 1) * kSecond, [] {});
  }
  const RequirementId canceled = task->RunAfter(kMinute, [] {});
  task->Cancel(canceled);
  sim_.RunUntil(2 * kMinute);
  EXPECT_EQ(dispatcher_.declared(), 11u);
  EXPECT_EQ(dispatcher_.dispatched(), 10u);
  EXPECT_EQ(dispatcher_.canceled(), 1u);
}

TEST_F(DispatcherTest, ManyPeriodicTasksShareWakeups) {
  // The headline economy: N slack-tolerant periodic requirements need far
  // fewer hardware programmings than N independent timers would.
  std::vector<DispatchTask*> tasks;
  std::vector<SimDuration> periods;
  for (int i = 0; i < 10; ++i) {
    DispatchTask* task = dispatcher_.CreateTask("bg" + std::to_string(i));
    const SimDuration period = (10 + i) * kSecond;  // staggered cadences
    periods.push_back(period);
    task->RunEvery(period, 8 * kSecond, [] {});
    tasks.push_back(task);
  }
  sim_.RunUntil(10 * kMinute);
  uint64_t total_dispatches = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    total_dispatches += tasks[i]->dispatches();
    // Average cadence must hold within the slack tolerance.
    const double expected = ToSeconds(10 * kMinute) / ToSeconds(periods[i]);
    EXPECT_GE(static_cast<double>(tasks[i]->dispatches()), 0.85 * expected);
    EXPECT_LE(static_cast<double>(tasks[i]->dispatches()), 1.25 * expected);
  }
  // Overlapping windows share wakeups: a large share of dispatches ride on
  // another requirement's hardware timer, and the dispatcher programs far
  // fewer timers than it dispatches requirements.
  EXPECT_GT(dispatcher_.piggybacked_dispatches(), total_dispatches / 4);
  EXPECT_LT(dispatcher_.hardware_programs(), total_dispatches);
}

}  // namespace
}  // namespace tempo
