// Edge-case tests across modules: wheel cascade boundaries, codec fuzzing,
// event-queue compaction stress, FIFO network ordering, workload app
// models, and HTTP failure paths.

#include <gtest/gtest.h>

#include "src/net/http.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/timer/hierarchical_wheel.h"
#include "src/trace/codec.h"
#include "src/workloads/select_apps.h"
#include "src/workloads/vista_apps.h"

namespace tempo {
namespace {

// --- hierarchical wheel cascade boundaries ---

TEST(WheelBoundaryTest, ExactLevelBoundaryTimers) {
  // Timers at exactly 255, 256, 257 ticks: straddling the level-0/level-1
  // boundary where cascade bugs live.
  HierarchicalWheelTimerQueue wheel(kMillisecond);
  std::map<int, SimTime> fired;
  for (int ticks : {255, 256, 257, 16383, 16384, 16385}) {
    wheel.Schedule(static_cast<SimTime>(ticks) * kMillisecond,
                   [&fired, ticks](TimerHandle) { fired[ticks] = 1; });
  }
  wheel.Advance(20000 * kMillisecond);
  for (int ticks : {255, 256, 257, 16383, 16384, 16385}) {
    EXPECT_TRUE(fired.count(ticks)) << ticks << " ticks never fired";
  }
}

TEST(WheelBoundaryTest, CancelDuringCascadeWindow) {
  HierarchicalWheelTimerQueue wheel(kMillisecond);
  bool fired = false;
  // Lives in level 1; cancel after the hand is close but before cascade.
  const TimerHandle h =
      wheel.Schedule(300 * kMillisecond, [&](TimerHandle) { fired = true; });
  wheel.Advance(250 * kMillisecond);
  EXPECT_TRUE(wheel.Cancel(h));
  wheel.Advance(kSecond);
  EXPECT_FALSE(fired);
}

TEST(WheelBoundaryTest, AdvanceAcrossManyEmptyRevolutions) {
  HierarchicalWheelTimerQueue wheel(kMillisecond);
  bool fired = false;
  wheel.Schedule(100 * kSecond, [&](TimerHandle) { fired = true; });
  // One big jump across ~390 level-0 revolutions.
  wheel.Advance(99 * kSecond);
  EXPECT_FALSE(fired);
  wheel.Advance(101 * kSecond);
  EXPECT_TRUE(fired);
}

// --- codec fuzz ---

TEST(CodecFuzzTest, RandomBytesNeverCrashDecoder) {
  Rng rng(17);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(kEncodedRecordSize);
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    const auto record = DecodeRecord(bytes.data());
    if (record.has_value()) {
      // A decoded record must re-encode without invariant violations.
      std::vector<uint8_t> out;
      EncodeRecord(*record, &out);
      EXPECT_EQ(out.size(), kEncodedRecordSize);
    }
  }
}

TEST(CodecFuzzTest, RandomTraceBytesNeverCrashTraceDecoder) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bytes(static_cast<size_t>(rng.UniformInt(0, 4096)));
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    const auto records = DecodeTrace(bytes);
    EXPECT_LE(records.size(), bytes.size() / kEncodedRecordSize + 1);
  }
}

// --- event queue compaction stress ---

TEST(EventQueueStressTest, IndexCompactionSurvivesManyCycles) {
  EventQueue queue;
  uint64_t fired = 0;
  // Push through well past the 4096-entry compaction threshold repeatedly.
  for (int round = 0; round < 5; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 6000; ++i) {
      ids.push_back(queue.Schedule(i, [&fired] { ++fired; }));
    }
    // Cancel every third, pop the rest.
    for (size_t i = 0; i < ids.size(); i += 3) {
      queue.Cancel(ids[i]);
    }
    while (!queue.Empty()) {
      queue.Pop().fn();
    }
    // Stale ids from this round must not cancel anything ever again.
    EXPECT_FALSE(queue.Cancel(ids[1]));
  }
  EXPECT_EQ(fired, 5u * 4000u);
}

// --- FIFO network ordering ---

TEST(NetworkFifoTest, PacketsNeverReorderOnALink) {
  Simulator sim(31);
  SimNetwork net(&sim);
  const NodeId a = net.AddNode("a");
  const NodeId b = net.AddNode("b");
  LinkParams link;
  link.latency = kMillisecond;
  link.jitter_sigma = 1.0;  // violent jitter: FIFO must still hold
  net.SetLink(a, b, link);
  std::vector<int> arrivals;
  for (int i = 0; i < 500; ++i) {
    net.Send(a, b, 10, [&arrivals, i] { arrivals.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(arrivals.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(arrivals[static_cast<size_t>(i)], i);
  }
}

// --- workload app models ---

TEST(SelectAppTest, CountdownResetsAfterFullExpiry) {
  Simulator sim(3);
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer);
  LinuxSyscalls syscalls(&kernel);
  kernel.Boot();
  SelectLoopApp::Options options;
  options.full_timeout = 10 * kSecond;
  options.activity_rate = 1.0;
  SelectLoopApp app(&kernel, &syscalls, 1, 1, "x/select", options);
  app.Start();
  sim.RunUntil(2 * kMinute);
  EXPECT_GT(app.wakeups(), 50u);
  EXPECT_GT(app.timeouts(), 5u);  // the 10 s budget runs out repeatedly
  // The set values never exceed the programmer's full timeout.
  for (const auto& r : buffer.records()) {
    if (r.op == TimerOp::kSet && r.is_user()) {
      EXPECT_LE(r.timeout, 10 * kSecond);
    }
  }
}

TEST(PollAppTest, ValuesComeFromTheDeclaredSet) {
  Simulator sim(3);
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer);
  LinuxSyscalls syscalls(&kernel);
  kernel.Boot();
  PollLoopApp::Options options;
  options.values = {{4 * kMillisecond, 0.5}, {8 * kMillisecond, 0.5}};
  options.cancel_probability = 0.0;
  PollLoopApp app(&kernel, &syscalls, 1, 1, "app/poll", options);
  app.Start();
  sim.RunUntil(10 * kSecond);
  EXPECT_GT(app.iterations(), 1000u);
  for (const auto& r : buffer.records()) {
    if (r.op == TimerOp::kSet && r.is_user()) {
      EXPECT_TRUE(r.timeout == 4 * kMillisecond || r.timeout == 8 * kMillisecond)
          << "unexpected value " << r.timeout;
    }
  }
}

TEST(VistaAppTest, WaitLoopMixesSatisfactionAndTimeouts) {
  Simulator sim(3);
  EtwSession session;
  VistaKernel kernel(&sim, &session);
  kernel.Boot();
  WaitLoopApp::Options options;
  options.timeout = 50 * kMillisecond;
  options.satisfied_probability = 0.5;
  WaitLoopApp app(&kernel, 1, 1, "svc/wait", options);
  app.Start();
  sim.RunUntil(kMinute);
  size_t satisfied = 0;
  size_t timed_out = 0;
  for (const auto& r : session.records()) {
    if (r.op == TimerOp::kUnblock) {
      ((r.flags & kFlagWaitSatisfied) != 0 ? satisfied : timed_out) += 1;
    }
  }
  EXPECT_GT(satisfied, 100u);
  EXPECT_GT(timed_out, 100u);
}

TEST(VistaAppTest, UpcallGuardStormsRaiseSetRate) {
  Simulator sim(3);
  EtwSession session;
  VistaKernel kernel(&sim, &session);
  kernel.Boot();
  UpcallGuardApp::Options options;
  options.baseline_rate = 50;
  options.storm_rate = 3000;
  options.storm_gap_mean = 20 * kSecond;
  UpcallGuardApp app(&kernel, 1, 1, "outlook/guard", options);
  app.Start();
  sim.RunUntil(2 * kMinute);
  EXPECT_GT(app.upcalls(), 5000u);
  // Nearly all guards are canceled (the upcall returns within ms).
  EXPECT_LT(app.guard_expiries(), app.upcalls() / 100 + 1);
  // Per-second set counts must show at least one storm window well above
  // the baseline.
  std::map<SimTime, uint64_t> per_second;
  for (const auto& r : session.records()) {
    if (r.op == TimerOp::kSet) {
      ++per_second[r.timestamp / kSecond];
    }
  }
  uint64_t peak = 0;
  for (const auto& [second, count] : per_second) {
    peak = std::max(peak, count);
  }
  EXPECT_GT(peak, 500u);
}

TEST(VistaAppTest, DeferredCloserFiresBetweenBursts) {
  Simulator sim(3);
  EtwSession session;
  VistaKernel kernel(&sim, &session);
  kernel.Boot();
  DeferredCloserApp::Options options;
  options.burst_rate = 0.1;  // a burst every ~10 s
  DeferredCloserApp app(&kernel, 1, 1, "registry/lazy", options);
  app.Start();
  sim.RunUntil(5 * kMinute);
  EXPECT_GT(app.closes(), 10u);
}

// --- HTTP failure path ---

TEST(HttpFailureTest, DeadServerFailsEveryRequestViaWatchdog) {
  Simulator sim(9);
  SimNetwork net(&sim);
  const NodeId server_node = net.AddNode("server");
  const NodeId client_node = net.AddNode("client");
  LinkParams dead;
  dead.unreachable = true;
  net.SetLink(client_node, server_node, dead);
  TcpStack server_stack(&sim, &net, server_node, nullptr, kKernelPid);
  TcpStack client_stack(&sim, &net, client_node, nullptr, kKernelPid);
  TcpListener* listener = server_stack.Listen();
  listener->on_accept = [](TcpConnection*) {};
  HttpLoadGenerator::Options load;
  load.total_requests = 20;
  load.parallel = 4;
  load.think_time_mean = 100 * kMillisecond;
  HttpLoadGenerator generator(&client_stack, listener, load);
  bool done = false;
  generator.Start([&] { done = true; });
  sim.RunUntil(10 * kMinute);
  EXPECT_TRUE(done);
  EXPECT_EQ(generator.completed(), 0u);
  EXPECT_EQ(generator.failed(), 20u);  // every request hit the 5 s watchdog
}

}  // namespace
}  // namespace tempo
