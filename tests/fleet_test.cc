// Unit tests for the fleet layer: wire round-trips, the FleetReadError
// taxonomy (every class of frame damage surfaces as its typed error, and a
// damaged stream stays poisoned), incremental decoding under arbitrary
// fragmentation, aggregator loss accounting (gaps, duplicates, staleness,
// dirty closes — a host never silently disappears), and the end-to-end
// paths: simulated hosts over the in-process pipe and over real TCP.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/fleet/aggregator.h"
#include "src/fleet/host_sim.h"
#include "src/fleet/server.h"
#include "src/fleet/summary.h"
#include "src/fleet/wire.h"
#include "src/obs/metrics.h"
#include "src/sim/time.h"
#include "src/trace/transport.h"

namespace tempo {
namespace fleet {
namespace {

// A summary exercising every field group: both series lists, burst state,
// patterns, channels, metrics, and non-trivial label strings.
HostSummary RichSummary(const std::string& host = "desktop-7",
                        uint64_t sequence = 3) {
  HostSummary s;
  s.host = host;
  s.sequence = sequence;
  s.now = 4 * kSecond + 250 * kMillisecond;
  s.window = kSecond;
  s.records = 123456;
  SeriesSummary outlook;
  outlook.label = "outlook.exe";
  outlook.sets = 43057;
  outlook.expires = 43000;
  outlook.cancels = 12;
  outlook.mean_rate = 70.5;
  outlook.last_rate = 6993.0;
  outlook.peak_rate = 6993.0;
  outlook.burst_active = true;
  outlook.bursts = 1;
  outlook.burst_peak_rate = 6993.0;
  SeriesSummary kernel;
  kernel.label = "Kernel";
  kernel.sets = 24000;
  kernel.expires = 23936;
  kernel.mean_rate = 1000.0;
  kernel.last_rate = 1000.0;
  kernel.peak_rate = 1000.0;
  s.processes = {outlook, kernel};
  SeriesSummary origin = kernel;
  origin.label = "kernel";
  s.origins = {origin};
  s.patterns = {{"periodic", 64}, {"watchdog", 8}};
  s.classifier_tracked = 72;
  s.classifier_evictions = 5;
  s.windows_evicted = 0;
  s.channels = {{host + "/kernel", 48000, 0}, {host + "/outlook", 86114, 7}};
  s.metrics = {{"relay_accepted", 134114}, {"drainer_emitted", 134107}};
  s.slack.slack.Record(0);
  s.slack.slack.Record(1500);       // a ~1.5 us firing
  s.slack.slack.Record(3999744);    // a ~4 ms rounded jiffy
  s.slack.canceled = 12;
  s.slack.rearmed = 3;
  s.slack.early = 1;
  s.slack.open = 64;
  return s;
}

FleetOptions Quiet() {
  FleetOptions options;
  options.stats_label.clear();  // unit tests stay out of the global registry
  return options;
}

// --- wire round trip ---

TEST(FleetWire, EncodeDecodeRoundTripPreservesEveryField) {
  const HostSummary original = RichSummary();
  const std::vector<uint8_t> frame = EncodeSummaryFrame(original);
  ASSERT_GE(frame.size(), kFrameHeaderBytes + kFrameTrailerBytes);
  HostSummary decoded;
  FleetReadError error;
  ASSERT_EQ(DecodeSummaryFrame(frame.data(), frame.size(), &decoded, &error),
            FrameDecoder::Status::kFrame);
  EXPECT_EQ(decoded, original);
  EXPECT_EQ(decoded.relay_dropped(), 7u);
}

TEST(FleetWire, DecoderYieldsConsecutiveFramesFromOneBuffer) {
  std::vector<uint8_t> wire;
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    const std::vector<uint8_t> frame = EncodeSummaryFrame(RichSummary("h", seq));
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  HostSummary out;
  FleetReadError error;
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kFrame);
    EXPECT_EQ(out.sequence, seq);
  }
  EXPECT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(decoder.frames_decoded(), 3u);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FleetWire, SingleByteFragmentsDecodeIdentically) {
  const HostSummary original = RichSummary();
  const std::vector<uint8_t> frame = EncodeSummaryFrame(original);
  FrameDecoder decoder;
  HostSummary out;
  FleetReadError error;
  for (size_t i = 0; i < frame.size(); ++i) {
    // Until the last byte arrives the decoder must keep asking for more.
    EXPECT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kNeedMore);
    decoder.Feed(&frame[i], 1);
  }
  ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out, original);
}

TEST(FleetWire, OversizedStringIsClampedToAConsistentFrame) {
  // A name beyond the u16 length prefix must be clamped at encode time,
  // not emitted as a self-contradictory frame the decoder calls corrupt.
  const HostSummary original = RichSummary(std::string(70000, 'h'));
  const std::vector<uint8_t> frame = EncodeSummaryFrame(original);
  HostSummary decoded;
  FleetReadError error;
  ASSERT_EQ(DecodeSummaryFrame(frame.data(), frame.size(), &decoded, &error),
            FrameDecoder::Status::kFrame);
  EXPECT_EQ(decoded.host.size(), 0xffffu);
  EXPECT_EQ(decoded.host, original.host.substr(0, 0xffff));
  EXPECT_EQ(decoded.sequence, original.sequence);
}

TEST(FleetWire, PathologicalSummaryIsTrimmedToTheFrameBound) {
  // A summary whose encoding would exceed kMaxSummaryFrameBytes must be
  // trimmed at the source: the host's frame always decodes, with the
  // header counters intact and only the series tail dropped.
  HostSummary huge = RichSummary();
  SeriesSummary series = huge.processes[0];
  series.label = std::string(1000, 'p');
  huge.processes.assign(6000, series);  // ~6 MiB of series alone
  const std::vector<uint8_t> frame = EncodeSummaryFrame(huge);
  ASSERT_LE(frame.size(),
            kFrameHeaderBytes + kMaxSummaryFrameBytes + kFrameTrailerBytes);
  HostSummary decoded;
  FleetReadError error;
  ASSERT_EQ(DecodeSummaryFrame(frame.data(), frame.size(), &decoded, &error),
            FrameDecoder::Status::kFrame)
      << FleetReadErrorName(error);
  EXPECT_EQ(decoded.host, huge.host);
  EXPECT_EQ(decoded.records, huge.records);
  EXPECT_FALSE(decoded.processes.empty());
  EXPECT_LT(decoded.processes.size(), huge.processes.size());
}

// --- the error taxonomy ---

TEST(FleetWireTaxonomy, TruncatedFrameAtCloseIsTyped) {
  const std::vector<uint8_t> frame = EncodeSummaryFrame(RichSummary());
  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size() - 1);  // everything but one byte
  HostSummary out;
  FleetReadError error;
  // Mid-stream this is just an incomplete frame...
  EXPECT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kNeedMore);
  // ...but once the stream ends, the partial frame is a typed loss.
  decoder.Close();
  ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kError);
  EXPECT_EQ(error, FleetReadError::kTruncated);
  EXPECT_STREQ(FleetReadErrorName(error), "truncated frame");
}

TEST(FleetWireTaxonomy, BadMagicIsTypedBeforeTheFullHeaderArrives) {
  FrameDecoder decoder;
  const uint8_t junk[4] = {'H', 'T', 'T', 'P'};  // wrong from byte 0
  decoder.Feed(junk, sizeof(junk));
  HostSummary out;
  FleetReadError error;
  ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kError);
  EXPECT_EQ(error, FleetReadError::kMagic);
}

TEST(FleetWireTaxonomy, UnknownVersionIsTyped) {
  std::vector<uint8_t> frame = EncodeSummaryFrame(RichSummary());
  frame[8] = 0xFF;  // version field follows the 8-byte magic
  HostSummary out;
  FleetReadError error;
  ASSERT_EQ(DecodeSummaryFrame(frame.data(), frame.size(), &out, &error),
            FrameDecoder::Status::kError);
  EXPECT_EQ(error, FleetReadError::kVersion);
}

TEST(FleetWireTaxonomy, OversizedLengthPrefixIsTyped) {
  std::vector<uint8_t> frame = EncodeSummaryFrame(RichSummary());
  // Length prefix sits after magic + version; 0xFFFFFFFF breaks the bound.
  frame[12] = frame[13] = frame[14] = frame[15] = 0xFF;
  HostSummary out;
  FleetReadError error;
  ASSERT_EQ(DecodeSummaryFrame(frame.data(), frame.size(), &out, &error),
            FrameDecoder::Status::kError);
  EXPECT_EQ(error, FleetReadError::kOversized);
}

TEST(FleetWireTaxonomy, ChecksumMismatchIsTyped) {
  std::vector<uint8_t> frame = EncodeSummaryFrame(RichSummary());
  frame[kFrameHeaderBytes] ^= 0x01;  // first payload byte
  HostSummary out;
  FleetReadError error;
  ASSERT_EQ(DecodeSummaryFrame(frame.data(), frame.size(), &out, &error),
            FrameDecoder::Status::kError);
  EXPECT_EQ(error, FleetReadError::kChecksum);
}

TEST(FleetWireTaxonomy, ChecksumValidButSelfContradictoryPayloadIsCorrupt) {
  // Re-frame a valid payload with one trailing garbage byte and a checksum
  // that matches it: framing and checksum pass, the content does not.
  const std::vector<uint8_t> good = EncodeSummaryFrame(RichSummary());
  std::vector<uint8_t> payload(good.begin() + kFrameHeaderBytes,
                               good.end() - kFrameTrailerBytes);
  payload.push_back(0xAB);
  std::vector<uint8_t> frame(good.begin(), good.begin() + kFrameHeaderBytes);
  const uint32_t size = static_cast<uint32_t>(payload.size());
  frame[12] = static_cast<uint8_t>(size);
  frame[13] = static_cast<uint8_t>(size >> 8);
  frame[14] = static_cast<uint8_t>(size >> 16);
  frame[15] = static_cast<uint8_t>(size >> 24);
  frame.insert(frame.end(), payload.begin(), payload.end());
  const uint64_t checksum = FleetChecksum(payload.data(), payload.size());
  for (int i = 0; i < 8; ++i) {
    frame.push_back(static_cast<uint8_t>(checksum >> (8 * i)));
  }
  HostSummary out;
  FleetReadError error;
  ASSERT_EQ(DecodeSummaryFrame(frame.data(), frame.size(), &out, &error),
            FrameDecoder::Status::kError);
  EXPECT_EQ(error, FleetReadError::kCorrupt);
}

TEST(FleetWireTaxonomy, DigestBucketsContradictingTheCountAreCorrupt) {
  // The digest's bucket list must sum to its advertised span count; a
  // payload where it does not is framing damage even under a valid
  // checksum. The digest is the payload's final section, so the last
  // 8 bytes before the trailer are the last bucket's count — perturb it.
  HostSummary summary = RichSummary();
  ASSERT_GT(summary.slack.slack.count, 0u);
  std::vector<uint8_t> good = EncodeSummaryFrame(summary);
  std::vector<uint8_t> payload(good.begin() + kFrameHeaderBytes,
                               good.end() - kFrameTrailerBytes);
  payload[payload.size() - 8] ^= 0x01;
  std::vector<uint8_t> frame(good.begin(), good.begin() + kFrameHeaderBytes);
  frame.insert(frame.end(), payload.begin(), payload.end());
  const uint64_t checksum = FleetChecksum(payload.data(), payload.size());
  for (int i = 0; i < 8; ++i) {
    frame.push_back(static_cast<uint8_t>(checksum >> (8 * i)));
  }
  HostSummary out;
  FleetReadError error;
  ASSERT_EQ(DecodeSummaryFrame(frame.data(), frame.size(), &out, &error),
            FrameDecoder::Status::kError);
  EXPECT_EQ(error, FleetReadError::kCorrupt);
}

TEST(FleetWire, EmptySlackDigestRoundTrips) {
  HostSummary summary = RichSummary();
  summary.slack = SlackDigest{};
  const std::vector<uint8_t> frame = EncodeSummaryFrame(summary);
  HostSummary decoded;
  FleetReadError error;
  ASSERT_EQ(DecodeSummaryFrame(frame.data(), frame.size(), &decoded, &error),
            FrameDecoder::Status::kFrame);
  EXPECT_EQ(decoded, summary);
  EXPECT_TRUE(decoded.slack.slack.empty());
}

TEST(FleetWireTaxonomy, PoisonedStreamStaysPoisoned) {
  std::vector<uint8_t> bad = EncodeSummaryFrame(RichSummary());
  bad[kFrameHeaderBytes] ^= 0x01;
  FrameDecoder decoder;
  decoder.Feed(bad.data(), bad.size());
  HostSummary out;
  FleetReadError error;
  ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kError);
  EXPECT_EQ(error, FleetReadError::kChecksum);
  // A pristine frame after the damage must NOT decode: framing after
  // corruption cannot be trusted.
  const std::vector<uint8_t> good = EncodeSummaryFrame(RichSummary());
  decoder.Feed(good.data(), good.size());
  ASSERT_EQ(decoder.Next(&out, &error), FrameDecoder::Status::kError);
  EXPECT_EQ(error, FleetReadError::kChecksum);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_EQ(decoder.frames_decoded(), 0u);
}

// --- aggregator loss accounting ---

TEST(FleetAggregatorTest, SequenceGapsAndDuplicatesAreCharged) {
  FleetAggregator agg(Quiet());
  agg.Ingest(RichSummary("h", 1));
  agg.Ingest(RichSummary("h", 4));  // 2 and 3 never arrived
  agg.Ingest(RichSummary("h", 4));  // replay
  const FleetView view = agg.TakeView();
  ASSERT_EQ(view.hosts.size(), 1u);
  EXPECT_EQ(view.hosts[0].sequence_gaps, 2u);
  EXPECT_EQ(view.hosts[0].duplicates, 1u);
  EXPECT_FALSE(view.hosts[0].clean);
  EXPECT_EQ(view.sequence_gaps_total, 2u);
  EXPECT_EQ(view.duplicates_total, 1u);
  EXPECT_FALSE(view.clean());
}

TEST(FleetAggregatorTest, QuietHostAgesIntoStaleButNeverDisappears) {
  FleetAggregator agg(Quiet());  // stale_after = 3 s
  HostSummary early = RichSummary("laggard", 1);
  early.now = kSecond;
  early.channels[1].dropped = 0;  // lossless host: staleness alone here
  agg.Ingest(early);
  HostSummary late = RichSummary("fresh", 1);
  late.now = 10 * kSecond;
  late.channels[1].dropped = 0;
  agg.Ingest(late);
  const FleetView view = agg.TakeView();
  EXPECT_EQ(view.fleet_now, 10 * kSecond);
  ASSERT_EQ(view.hosts.size(), 2u);  // the laggard still has its row
  EXPECT_EQ(view.hosts_total, 2u);
  EXPECT_EQ(view.hosts_live, 1u);
  EXPECT_EQ(view.hosts_stale, 1u);
  // std::map ordering: "fresh" before "laggard".
  EXPECT_FALSE(view.hosts[0].stale);
  EXPECT_TRUE(view.hosts[1].stale);
  EXPECT_EQ(view.hosts[1].age, 9 * kSecond);
  // Staleness is lag, not loss: nothing was dropped on the floor.
  EXPECT_TRUE(view.clean());
}

TEST(FleetAggregatorTest, DecodeErrorPoisonsTheHostsOnThatSource) {
  FleetAggregator agg(Quiet());
  agg.Ingest(RichSummary("a", 1), "tcp/0");
  agg.Ingest(RichSummary("b", 1), "tcp/1");
  agg.NoteDecodeError("tcp/0", FleetReadError::kChecksum);
  const FleetView view = agg.TakeView();
  ASSERT_EQ(view.hosts.size(), 2u);
  EXPECT_FALSE(view.hosts[0].clean);  // "a" rode the damaged source
  EXPECT_TRUE(view.hosts[1].clean);
  EXPECT_EQ(view.decode_errors_total, 1u);
  ASSERT_EQ(view.sources.size(), 1u);  // only the troubled source gets a row
  EXPECT_EQ(view.sources[0].source, "tcp/0");
  EXPECT_STREQ(view.sources[0].last_error.c_str(), "checksum mismatch");
  EXPECT_FALSE(view.clean());
}

TEST(FleetAggregatorTest, DirtyCloseIsCountedCleanCloseIsNot) {
  FleetAggregator agg(Quiet());
  agg.Ingest(RichSummary("a", 1), "tcp/0");
  agg.Ingest(RichSummary("b", 1), "tcp/1");
  agg.NoteClose("tcp/0", /*clean=*/true);
  agg.NoteClose("tcp/1", /*clean=*/false);
  const FleetView view = agg.TakeView();
  EXPECT_EQ(view.hosts_closed, 2u);
  EXPECT_TRUE(view.hosts[0].clean);
  EXPECT_FALSE(view.hosts[1].clean);
  EXPECT_EQ(view.dirty_closes_total, 1u);
  EXPECT_FALSE(view.clean());
}

TEST(FleetAggregatorTest, SeriesMergeAcrossHostsAndBurstCensus) {
  FleetAggregator agg(Quiet());
  agg.Ingest(RichSummary("a", 1));
  HostSummary quiet = RichSummary("b", 1);
  quiet.processes[0].burst_active = false;
  quiet.processes[0].bursts = 0;
  quiet.processes[0].burst_peak_rate = 0.0;
  agg.Ingest(quiet);
  const FleetView view = agg.TakeView();
  ASSERT_FALSE(view.processes.empty());
  // Top-by-sets: outlook.exe, reported by both hosts, summed.
  EXPECT_EQ(view.processes[0].label, "outlook.exe");
  EXPECT_EQ(view.processes[0].hosts, 2u);
  EXPECT_EQ(view.processes[0].sets, 2u * 43057u);
  EXPECT_EQ(view.processes[0].hosts_bursting, 1u);
  EXPECT_EQ(agg.HostsWithBurst("outlook.exe", 5000.0), 1u);
  EXPECT_EQ(agg.HostsWithBurst("outlook.exe", 7500.0), 0u);
  EXPECT_EQ(agg.HostsWithBurst("Kernel", 1.0), 0u);
}

TEST(FleetAggregatorTest, SlackDigestsMergeExactlyAcrossHosts) {
  FleetAggregator agg(Quiet());
  HostSummary a = RichSummary("a", 1);
  HostSummary b = RichSummary("b", 1);
  b.slack.slack.Record(123456789);  // one ~123 ms straggler only host b saw
  HostSummary quiet = RichSummary("c", 1);
  quiet.slack = SlackDigest{};  // a host with no spans yet
  agg.Ingest(a);
  agg.Ingest(b);
  agg.Ingest(quiet);

  const FleetView view = agg.TakeView();
  EXPECT_EQ(view.hosts_reporting_slack, 2u);
  EXPECT_EQ(view.slack.slack.count, a.slack.slack.count + b.slack.slack.count);
  EXPECT_EQ(view.slack.slack.sum, a.slack.slack.sum + b.slack.slack.sum);
  EXPECT_EQ(view.slack.slack.max, 123456789u);
  EXPECT_EQ(view.slack.canceled, a.slack.canceled + b.slack.canceled);
  EXPECT_EQ(view.slack.early, a.slack.early + b.slack.early);
  EXPECT_EQ(view.slack.open, a.slack.open + b.slack.open);
  // The fold is the same SlackHist::Merge the offline passes use, so the
  // fleet histogram equals merging the host histograms directly.
  SlackHist direct = a.slack.slack;
  direct.Merge(b.slack.slack);
  EXPECT_EQ(view.slack.slack, direct);
}

TEST(FleetAggregatorTest, SyncObsPublishesFleetGauges) {
  obs::Registry::Global().Reset();
  FleetOptions options;
  options.stats_label = "fleet-test";
  FleetAggregator agg(options);
  agg.Ingest(RichSummary("a", 1));
  agg.Ingest(RichSummary("b", 1));
  agg.SyncObs();
  obs::Gauge* hosts = obs::Registry::Global().GetGauge(
      "fleet_hosts", {{"aggregator", "fleet-test"}});
  ASSERT_NE(hosts, nullptr);
  EXPECT_EQ(hosts->value(), 2);
}

// --- collector over the in-process pipe ---

TEST(FleetCollectorTest, PipeTransportDeliversFramesAndTypedLosses) {
  FleetAggregator agg(Quiet());
  FleetCollector collector(&agg);
  InProcessPipeHub hub(collector.Handler(), /*deliver_chunk=*/5);
  auto good = hub.Connect("pipe/good");
  auto bad = hub.Connect("pipe/bad");
  const std::vector<uint8_t> frame = EncodeSummaryFrame(RichSummary("g", 1));
  ASSERT_TRUE(good->Write(frame.data(), frame.size()));
  std::vector<uint8_t> damaged = EncodeSummaryFrame(RichSummary("b", 1));
  damaged[kFrameHeaderBytes] ^= 0x80;
  ASSERT_TRUE(bad->Write(damaged.data(), damaged.size()));
  good->Close();
  bad->Close();
  hub.Drain();
  const FleetView view = agg.TakeView();
  EXPECT_EQ(view.hosts_total, 1u);  // "b" never decoded
  EXPECT_EQ(view.frames_total, 1u);
  EXPECT_EQ(view.decode_errors_total, 1u);
  ASSERT_EQ(view.sources.size(), 1u);
  EXPECT_EQ(view.sources[0].source, "pipe/bad");
  EXPECT_FALSE(view.clean());
}

// --- simulated hosts end to end ---

TEST(FleetEndToEnd, SimulatedFleetOverPipeIsLosslessAndBursts) {
  FleetAggregator agg(Quiet());
  FleetCollector collector(&agg);
  InProcessPipeHub hub(collector.Handler());
  FleetRunOptions run;
  run.hosts = 3;
  run.duration = 6 * kSecond;
  run.seed = 11;
  run.connect = [&hub](const std::string& host) { return hub.Connect(host); };
  run.after_round = [&hub](SimTime) { hub.Drain(); };
  const FleetRunResult result = RunFleet(run);
  hub.Drain();
  EXPECT_EQ(result.hosts, 3u);
  const FleetView view = agg.TakeView();
  EXPECT_EQ(view.hosts_total, 3u);
  EXPECT_EQ(view.hosts_live, 3u);
  EXPECT_EQ(view.hosts_closed, 3u);
  EXPECT_EQ(view.frames_total, result.frames);
  EXPECT_EQ(view.records_total, result.records);
  EXPECT_TRUE(view.clean());
  // Every simulated desktop runs the outlook.exe watchdog storm.
  EXPECT_EQ(agg.HostsWithBurst("outlook.exe", 5000.0), 3u);
}

TEST(FleetEndToEnd, SimulatedFleetOverTcpIsLossless) {
  FleetOptions options = Quiet();
  FleetTcpServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const uint16_t port = server.port();
  FleetRunOptions run;
  run.hosts = 2;
  run.duration = 6 * kSecond;
  run.seed = 5;
  run.connect = [port](const std::string&) {
    return ConnectTcpStream("127.0.0.1", port, nullptr);
  };
  const FleetRunResult result = RunFleet(run);
  server.Stop();  // drains the sockets and reports the closes
  const FleetView view = server.View();
  EXPECT_EQ(view.hosts_total, 2u);
  EXPECT_EQ(view.frames_total, result.frames);
  EXPECT_EQ(view.records_total, result.records);
  EXPECT_TRUE(view.clean());
  EXPECT_EQ(server.HostsWithBurst("outlook.exe", 5000.0), 2u);
}

TEST(FleetEndToEnd, FailedConnectIsADeadHostNotACrash) {
  FleetAggregator agg(Quiet());
  FleetCollector collector(&agg);
  InProcessPipeHub hub(collector.Handler());
  FleetRunOptions run;
  run.hosts = 3;
  run.duration = 2 * kSecond;
  run.seed = 7;
  size_t connects = 0;
  run.connect = [&](const std::string& host) -> std::unique_ptr<ByteSink> {
    if (++connects == 2) {
      return nullptr;  // the second host cannot reach its collector
    }
    return hub.Connect(host);
  };
  run.after_round = [&hub](SimTime) { hub.Drain(); };
  const FleetRunResult result = RunFleet(run);
  hub.Drain();
  EXPECT_EQ(result.hosts, 3u);  // the dead host still simulated
  const FleetView view = agg.TakeView();
  EXPECT_EQ(view.hosts_total, 2u);  // ...but never published
  EXPECT_EQ(view.frames_total, result.frames);
  EXPECT_GT(view.frames_total, 0u);
}

TEST(FleetEndToEnd, StopWithIdleOpenConnectionIsACleanClose) {
  FleetOptions options = Quiet();
  FleetTcpServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto sink = ConnectTcpStream("127.0.0.1", server.port(), &error);
  ASSERT_NE(sink, nullptr) << error;
  HostSummary summary = RichSummary("idle-host", 1);
  summary.channels[1].dropped = 0;  // a lossless host, merely idle
  const std::vector<uint8_t> frame = EncodeSummaryFrame(summary);
  ASSERT_TRUE(sink->Write(frame.data(), frame.size()));
  // Wait until the frame has been consumed, so the stop-time drain finds
  // an idle (EAGAIN), healthy socket rather than pending bytes.
  for (int i = 0; i < 500 && server.View().frames_total < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  server.Stop();
  const FleetView view = server.View();
  ASSERT_EQ(view.frames_total, 1u);
  // An idle-but-open peer at shutdown is a server-initiated close, not
  // loss: it must not surface as a dirty close and flip the fleet lossy.
  EXPECT_EQ(view.dirty_closes_total, 0u);
  EXPECT_TRUE(view.clean());
  sink->Close();
}

}  // namespace
}  // namespace fleet
}  // namespace tempo
