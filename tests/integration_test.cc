// Cross-module integration tests: the full trace -> persist -> reload ->
// analyse pipeline, instrumentation perturbation, adaptive timeouts driving
// real kernel timers, and OS-to-OS comparisons the paper draws.

#include <gtest/gtest.h>

#include "src/adaptive/adaptive_timeout.h"
#include "src/adaptive/timer_service.h"
#include "src/analysis/classify.h"
#include "src/analysis/provenance.h"
#include "src/analysis/scatter.h"
#include "src/analysis/summary.h"
#include "src/trace/file.h"
#include "src/workloads/linux_workloads.h"
#include "src/workloads/vista_workloads.h"

namespace tempo {
namespace {

WorkloadOptions Short() {
  WorkloadOptions options;
  options.duration = 2 * kMinute;
  options.seed = 5;
  return options;
}

TEST(IntegrationTest, WorkloadTracePersistsAndReanalysesIdentically) {
  TraceRun run = RunLinuxIdle(Short());
  const std::string path = ::testing::TempDir() + "/tempo_integration.trc";
  ASSERT_TRUE(WriteTraceFile(path, run.records, run.callsites()));
  const auto loaded = ReadTraceFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());

  const TraceSummary live = Summarize(run.records, "x");
  const TraceSummary reloaded = Summarize(loaded->records, "x");
  EXPECT_EQ(live.accesses, reloaded.accesses);
  EXPECT_EQ(live.set, reloaded.set);
  EXPECT_EQ(live.timers, reloaded.timers);
  EXPECT_EQ(live.concurrency, reloaded.concurrency);

  // Classification over the reloaded trace matches the live one.
  const auto live_classes = ClassifyTrace(run.records, ClassifyOptions{});
  const auto reloaded_classes = ClassifyTrace(loaded->records, ClassifyOptions{});
  ASSERT_EQ(live_classes.size(), reloaded_classes.size());
  for (size_t i = 0; i < live_classes.size(); ++i) {
    EXPECT_EQ(static_cast<int>(live_classes[i].pattern),
              static_cast<int>(reloaded_classes[i].pattern));
  }
}

TEST(IntegrationTest, LoggingDoesNotPerturbTheWorkload) {
  // Section 3.2's perturbation bound: the instrumented and uninstrumented
  // runs must perform the same timer operations. Our sinks never feed back
  // into behaviour, so the bound is exact: a NullSink run and a recording
  // run of the same seed execute identical schedules.
  WorkloadOptions options = Short();
  TraceRun recorded = RunLinuxIdle(options);
  TraceRun recorded2 = RunLinuxIdle(options);
  ASSERT_EQ(recorded.records.size(), recorded2.records.size());
  EXPECT_EQ(recorded.sim->events_executed(), recorded2.sim->events_executed());
}

TEST(IntegrationTest, CpuChargeReflectsPaperLoggingCost) {
  TraceRun run = RunLinuxIdle(Short());
  EXPECT_EQ(run.sim->cpu().charged_cycles(),
            run.records.size() * kPaperLogCostCycles);
}

TEST(IntegrationTest, VistaDeliversShortTimersLaterThanLinux) {
  // The cross-OS claim behind Figures 8-11: Vista's 15.6 ms interrupt
  // quantisation delivers short timeouts far later (relative to their
  // duration) than Linux's 4 ms jiffy.
  auto late_fraction = [](const std::vector<TraceRecord>& records) {
    size_t considered = 0;
    size_t late = 0;
    for (const Episode& e : BuildEpisodes(records)) {
      if (e.end != EpisodeEnd::kExpired || e.timeout <= 0 ||
          e.timeout > 5 * kMillisecond) {
        continue;
      }
      ++considered;
      if (e.fraction() > 2.0) {
        ++late;
      }
    }
    return considered == 0 ? 0.0
                           : static_cast<double>(late) / static_cast<double>(considered);
  };
  TraceRun linux_run = RunLinuxFirefox(Short());
  TraceRun vista_run = RunVistaFirefox(Short());
  EXPECT_GT(late_fraction(vista_run.records), late_fraction(linux_run.records));
}

TEST(IntegrationTest, ProvenanceForestCoversEveryRecordedOp) {
  TraceRun run = RunLinuxWebserver(Short());
  const auto forest = BuildProvenanceForest(run.records, run.callsites());
  uint64_t total = 0;
  for (const auto& root : forest) {
    total += root.subtree_ops;
  }
  EXPECT_EQ(total, run.records.size());
}

TEST(IntegrationTest, AdaptiveTimeoutOverInstrumentedKernelTimers) {
  // The Section-5 library runs over the instrumented Linux kernel: its
  // timer traffic appears in the trace like any other client's, so the
  // paper's methodology could observe its own proposed fix.
  Simulator sim(3);
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer);
  kernel.Boot();
  LinuxTimerService service(&kernel, "adaptive/guard", 9);
  AdaptiveTimeout adaptive;

  // 100 operations completing in ~2 ms, guarded adaptively.
  int timeouts_fired = 0;
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(i * 100 * kMillisecond, [&] {
      const SimTime started = sim.Now();
      const ServiceTimerId guard =
          service.Arm(adaptive.Current(), [&] { ++timeouts_fired; });
      sim.ScheduleAfter(2 * kMillisecond, [&, guard, started] {
        if (service.Cancel(guard)) {
          adaptive.RecordSuccess(sim.Now() - started);
        }
      });
    });
  }
  sim.RunUntil(kMinute);
  EXPECT_TRUE(adaptive.warmed_up());
  // Once warmed up, the guard is a few ms, far below the initial 30 s...
  EXPECT_LT(adaptive.Current(), 100 * kMillisecond);
  // ...and the guards appear in the kernel trace under their call-site.
  size_t guard_sets = 0;
  for (const auto& r : buffer.records()) {
    if (r.op == TimerOp::kSet &&
        kernel.callsites().Name(r.callsite) == "adaptive/guard") {
      ++guard_sets;
    }
  }
  EXPECT_EQ(guard_sets, 100u);
  // The classifier sees them as the "timeout" pattern (armed, canceled
  // shortly after, re-armed later) — the paper's taxonomy applied to the
  // paper's own proposal.
  bool classified_timeout = false;
  for (const auto& c : ClassifyTrace(buffer.records(), ClassifyOptions{})) {
    if (kernel.callsites().Name(c.callsite) == "adaptive/guard") {
      classified_timeout = c.pattern == UsagePattern::kTimeout ||
                           c.pattern == UsagePattern::kOther;
    }
  }
  EXPECT_TRUE(classified_timeout);
}

TEST(IntegrationTest, ScatterMassMovesWithWorkloadCharacter) {
  // Idle is expiry-dominated (periodic kernel machinery); the webserver's
  // cancellation mass (connection timeouts canceled at tiny fractions)
  // must visibly exceed idle's.
  auto cancel_mass_below_10pct = [](const std::vector<TraceRecord>& records) {
    ScatterOptions options;
    uint64_t canceled_low = 0;
    uint64_t total = 0;
    for (const auto& p : ComputeScatter(records, options)) {
      total += p.count;
      if (!p.expired && p.percent < 10.0) {
        canceled_low += p.count;
      }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(canceled_low) / static_cast<double>(total);
  };
  TraceRun idle = RunLinuxIdle(Short());
  TraceRun web = RunLinuxWebserver(Short());
  EXPECT_GT(cancel_mass_below_10pct(web.records),
            cancel_mass_below_10pct(idle.records));
}

}  // namespace
}  // namespace tempo
