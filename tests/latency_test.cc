// Tests for the latency observatory's slack attribution: the SlackState
// fold's span semantics (re-arms, cancels, early fires, rounding skew,
// dynamic-alloc id clustering), the ordered-merge jobs identity of
// LatencyPass, the structural identity between the live SlackTracker and
// the offline pass over the same record sequence — single-threaded and
// through a threaded relay drain — and the dispatcher's per-task lateness
// histogram cross-checked against LatencyPass on a scripted workload.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/latency.h"
#include "src/analysis/pipeline.h"
#include "src/dispatcher/dispatcher.h"
#include "src/live/slack_tracker.h"
#include "src/obs/metrics.h"
#include "src/sim/time.h"
#include "src/trace/relay.h"

namespace tempo {
namespace {

TraceRecord Rec(TimerOp op, SimTime ts, TimerId timer, SimDuration timeout = 0,
                SimTime expiry = 0, uint16_t flags = 0, Pid pid = 1,
                CallsiteId callsite = 0) {
  TraceRecord r;
  r.op = op;
  r.timestamp = ts;
  r.timer = timer;
  r.timeout = timeout;
  r.expiry = expiry;
  r.flags = flags;
  r.pid = pid;
  r.callsite = callsite;
  return r;
}

SlackState Fold(const std::vector<TraceRecord>& records) {
  SlackState state;
  state.Accumulate(std::span<const TraceRecord>(records.data(), records.size()));
  return state;
}

// --- span semantics ---

TEST(LatencySpans, ReArmedTimerClosesOnlyTheLastArm) {
  // set -> set -> expire: the second set supersedes the first (one re-armed
  // span), and the fired span's slack is measured against the second arm.
  const std::vector<TraceRecord> records = {
      Rec(TimerOp::kSet, 0, 1, 10 * kMillisecond, 10 * kMillisecond),
      Rec(TimerOp::kSet, 5 * kMillisecond, 1, 10 * kMillisecond, 15 * kMillisecond),
      Rec(TimerOp::kExpire, 15 * kMillisecond, 1),
  };
  const SlackState state = Fold(records);
  EXPECT_EQ(state.rearmed_spans(), 1u);
  EXPECT_EQ(state.fired_spans(), 1u);
  EXPECT_EQ(state.open_spans(), 0u);
  // Fired exactly at requested = 5ms + 10ms: zero slack.
  EXPECT_EQ(state.total().count, 1u);
  EXPECT_EQ(state.total().sum, 0u);
}

TEST(LatencySpans, CancelBeforeExpireIsACanceledSpanNotAFiredOne) {
  const std::vector<TraceRecord> records = {
      Rec(TimerOp::kSet, 0, 1, 10 * kMillisecond, 10 * kMillisecond),
      Rec(TimerOp::kCancel, 3 * kMillisecond, 1),
  };
  const SlackState state = Fold(records);
  EXPECT_EQ(state.canceled_spans(), 1u);
  EXPECT_EQ(state.fired_spans(), 0u);
  EXPECT_TRUE(state.total().empty());
}

TEST(LatencySpans, EarlyFireClampsToZeroAndIsCounted) {
  // The expire lands before the requested time (timer migration, clock
  // steps): slack clamps to zero rather than going negative, and the span
  // is flagged so the clamp is visible.
  const std::vector<TraceRecord> records = {
      Rec(TimerOp::kSet, 0, 1, 10 * kMillisecond, 10 * kMillisecond),
      Rec(TimerOp::kExpire, 8 * kMillisecond, 1),
  };
  const SlackState state = Fold(records);
  EXPECT_EQ(state.fired_spans(), 1u);
  EXPECT_EQ(state.early_fires(), 1u);
  EXPECT_EQ(state.total().count, 1u);
  EXPECT_EQ(state.total().sum, 0u);
}

TEST(LatencySpans, RoundingSkewAndMachineryDelaySplit) {
  // Requested 0+10ms; the kernel rounded the deadline to 14ms (skew 4ms)
  // and delivered at 16ms (firing 2ms): total slack 6ms.
  const std::vector<TraceRecord> records = {
      Rec(TimerOp::kSet, 0, 1, 10 * kMillisecond, 14 * kMillisecond, kFlagRounded),
      Rec(TimerOp::kExpire, 16 * kMillisecond, 1),
  };
  const SlackState state = Fold(records);
  EXPECT_EQ(state.total().sum, static_cast<uint64_t>(6 * kMillisecond));
  EXPECT_EQ(state.skew().sum, static_cast<uint64_t>(4 * kMillisecond));
  EXPECT_EQ(state.firing().sum, static_cast<uint64_t>(2 * kMillisecond));
  // The arming flags route the span to the rounded class.
  EXPECT_EQ(state.cls(SlackClass::kRounded).count, 1u);
  EXPECT_EQ(state.cls(SlackClass::kPlain).count, 0u);
}

TEST(LatencySpans, ExpireWithoutExpiryFallsBackToTheRequestedTime) {
  // An arm whose record carries no absolute expiry (expiry 0, e.g. a
  // monotonic-Advance clamped path that never scheduled hardware) is
  // measured purely against set + timeout.
  const std::vector<TraceRecord> records = {
      Rec(TimerOp::kSet, 0, 1, 10 * kMillisecond, /*expiry=*/0),
      Rec(TimerOp::kExpire, 13 * kMillisecond, 1),
  };
  const SlackState state = Fold(records);
  EXPECT_EQ(state.total().sum, static_cast<uint64_t>(3 * kMillisecond));
  EXPECT_EQ(state.skew().sum, 0u);
  EXPECT_EQ(state.firing().sum, static_cast<uint64_t>(3 * kMillisecond));
}

TEST(LatencySpans, UnmatchedCloseIsCountedNotInvented) {
  const std::vector<TraceRecord> records = {
      Rec(TimerOp::kExpire, kMillisecond, 42),
  };
  const SlackState state = Fold(records);
  EXPECT_EQ(state.unmatched_closes(), 1u);
  EXPECT_EQ(state.fired_spans(), 0u);
}

TEST(LatencySpans, DynamicAllocIdsClusterByCallsite) {
  // Vista-style dynamic allocation: every use is a fresh timer id
  // (Section 3.3), so per-id joins stay exact and the blame table folds
  // the ids back together by call-site.
  const CallsiteId site = 7;
  const std::vector<TraceRecord> records = {
      Rec(TimerOp::kSet, 0, 100, kMillisecond, kMillisecond, kFlagDynamicAlloc, 3, site),
      Rec(TimerOp::kExpire, 2 * kMillisecond, 100),
      Rec(TimerOp::kSet, 3 * kMillisecond, 101, kMillisecond, 4 * kMillisecond,
          kFlagDynamicAlloc, 3, site),
      Rec(TimerOp::kExpire, 5 * kMillisecond, 101),
  };
  const SlackState state = Fold(records);
  EXPECT_EQ(state.fired_spans(), 2u);
  ASSERT_EQ(state.by_callsite().size(), 1u);
  const SlackBlame& blame = state.by_callsite().begin()->second;
  EXPECT_EQ(blame.spans, 2u);
  EXPECT_EQ(blame.slack_sum, static_cast<uint64_t>(2 * kMillisecond));
  ASSERT_EQ(state.by_pid().size(), 1u);
  EXPECT_EQ(state.by_pid().begin()->first, 3);
}

// --- deterministic synthetic workloads ---

uint64_t XorShift(uint64_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

// A plausible mixed stream: arms, cancels, expiries (on time, late, early),
// re-arms and a few unmatched closes, over `timers` ids starting at `base`.
std::vector<TraceRecord> Stream(uint64_t seed, size_t count, TimerId base,
                                size_t timers) {
  std::vector<TraceRecord> out;
  out.reserve(count);
  uint64_t s = seed != 0 ? seed : 1;
  SimTime now = 0;
  for (size_t i = 0; i < count; ++i) {
    now += static_cast<SimDuration>(XorShift(&s) % (2 * kMillisecond));
    const TimerId timer = base + static_cast<TimerId>(XorShift(&s) % timers);
    const uint64_t roll = XorShift(&s) % 100;
    if (roll < 50) {
      const SimDuration timeout =
          static_cast<SimDuration>(kMicrosecond + XorShift(&s) % (50 * kMillisecond));
      // A third of the arms carry a rounded-up expiry, a few carry none.
      SimTime expiry = now + timeout;
      uint16_t flags = 0;
      if (roll % 3 == 0) {
        expiry += static_cast<SimDuration>(XorShift(&s) % (4 * kMillisecond));
        flags |= kFlagRounded;
      } else if (roll % 7 == 0) {
        expiry = 0;
      }
      if (roll % 5 == 0) {
        flags |= kFlagDeferrable;
      }
      out.push_back(Rec(TimerOp::kSet, now, timer, timeout, expiry, flags,
                        static_cast<Pid>(1 + roll % 3),
                        static_cast<CallsiteId>(roll % 4)));
    } else if (roll < 80) {
      out.push_back(Rec(TimerOp::kExpire, now, timer));
    } else {
      out.push_back(Rec(TimerOp::kCancel, now, timer));
    }
  }
  return out;
}

TEST(LatencyPassTest, JobsOneAndManyAreByteIdentical) {
  const std::vector<TraceRecord> records = Stream(2008, 20000, 1, 64);
  std::string reports[2];
  SlackState states[2];
  const size_t jobs[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    PipelineOptions options;
    options.jobs = jobs[i];
    options.stats_label.clear();
    std::vector<std::unique_ptr<AnalysisPass>> passes;
    auto pass = std::make_unique<LatencyPass>();
    LatencyPass* raw = pass.get();
    passes.push_back(std::move(pass));
    PipelineRunner runner(options);
    // Small chunks so four workers really get disjoint ranges.
    runner.Run(std::span<const TraceRecord>(records.data(), records.size()),
               passes, /*chunk_records=*/512);
    states[i] = raw->state();
    reports[i] = RenderLatencyReport(raw->state(), nullptr, {}, 10);
  }
  EXPECT_EQ(states[0], states[1]);
  EXPECT_EQ(reports[0], reports[1]);
  // The stream must actually exercise the interesting paths.
  EXPECT_GT(states[0].fired_spans(), 0u);
  EXPECT_GT(states[0].canceled_spans(), 0u);
  EXPECT_GT(states[0].rearmed_spans(), 0u);
  EXPECT_GT(states[0].unmatched_closes(), 0u);
}

// --- live == offline ---

TEST(SlackLiveTest, TrackerMatchesOfflineFoldOverTheSameSequence) {
  const std::vector<TraceRecord> records = Stream(7, 5000, 1, 32);
  live::SlackTracker tracker{""};  // no obs label: pure fold
  for (const TraceRecord& record : records) {
    tracker.Ingest(record);
  }
  EXPECT_EQ(tracker.state(), Fold(records));
}

TEST(SlackLiveTest, ThreadedRelayDrainMatchesOfflinePass) {
  // Producers log through lock-free relay channels while the drainer
  // feeds the live tracker and captures the drained sequence; the offline
  // pass over that capture must reproduce the tracker's state exactly.
  // Run under TSan this is also the proof the drain path itself is clean.
  for (const uint64_t seed : {1ull, 42ull, 2008ull}) {
    constexpr size_t kProducers = 3;
    constexpr size_t kPerProducer = 4000;
    RelayChannelSet channels;
    std::vector<RelayChannel*> lanes;
    for (size_t p = 0; p < kProducers; ++p) {
      lanes.push_back(
          channels.Register("latency-test/" + std::to_string(p), {256, 4}));
    }
    live::SlackTracker tracker{""};
    std::vector<TraceRecord> captured;
    captured.reserve(kProducers * kPerProducer);
    RelayDrainer drainer(&channels, [&](const TraceRecord& record) {
      tracker.Ingest(record);
      captured.push_back(record);
    });

    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        // Disjoint timer-id ranges per producer keep every set/expire pair
        // on one lane, so drops aside, spans survive any interleaving.
        const std::vector<TraceRecord> records =
            Stream(seed + p, kPerProducer, static_cast<TimerId>(1 + 1000 * p), 16);
        for (const TraceRecord& record : records) {
          while (!lanes[p]->TryLog(record)) {
            std::this_thread::yield();  // ring full: wait for the drainer
          }
        }
      });
    }
    // Drain concurrently until every producer is done, then flush.
    std::atomic<bool> done{false};
    std::thread drain_thread([&] {
      while (!done.load(std::memory_order_acquire)) {
        drainer.Poll();
      }
    });
    for (std::thread& t : producers) {
      t.join();
    }
    done.store(true, std::memory_order_release);
    drain_thread.join();
    channels.CloseAll();
    drainer.Finish();

    ASSERT_EQ(captured.size(), kProducers * kPerProducer) << "relay dropped records";
    EXPECT_EQ(tracker.state(), Fold(captured)) << "seed " << seed;
    EXPECT_GT(tracker.state().fired_spans(), 0u);
  }
}

// --- dispatcher lateness cross-check ---

TEST(LatencyDispatcherCrossCheck, TaskHistogramMatchesLatencyPassFiringComponent) {
  // Scripted workload in two acts. Act one: 20 zero-slack one-shots that
  // dispatch exactly on their deadlines (lateness 0). Act two: a recovery
  // callback that declares 20 jobs whose deadlines are already in the past
  // (catch-up work discovered after a stall) — each is provably late by a
  // known amount. The per-task obs histogram, the task's lateness scalars
  // and LatencyPass over synthesized set/expire records must all agree.
  Simulator sim{1};
  TemporalDispatcher dispatcher{&sim};
  DispatchTask* task = dispatcher.CreateTask("latency-xcheck");
  obs::Histogram* hist = obs::Registry::Global().GetHistogram(
      "dispatcher_task_lateness_ns", {{"task", "latency-xcheck"}});
  const uint64_t base_count = hist->count();
  const uint64_t base_sum = hist->sum();

  constexpr int kOnTime = 20;
  constexpr int kOverdue = 20;
  std::vector<TraceRecord> records;
  records.reserve(2 * (kOnTime + kOverdue));
  for (int i = 0; i < kOnTime; ++i) {
    const SimDuration delay = static_cast<SimDuration>(i + 1) * kMillisecond;
    records.push_back(Rec(TimerOp::kSet, sim.Now(), 1 + i, delay, sim.Now() + delay));
    task->RunAfter(delay, [&records, &sim, i] {
      records.push_back(Rec(TimerOp::kExpire, sim.Now(), 1 + i));
    });
  }
  task->RunAfter(100 * kMillisecond, [&] {
    for (int j = 0; j < kOverdue; ++j) {
      const SimDuration overdue = static_cast<SimDuration>(j + 1) * 20 * kMicrosecond;
      const TimerId timer = 100 + j;
      // An absolute deadline already in the past: timeout 0, expiry set.
      records.push_back(
          Rec(TimerOp::kSet, sim.Now(), timer, 0, sim.Now() - overdue, kFlagAbsolute));
      task->RunWithin(-overdue, -overdue, [&records, &sim, timer] {
        records.push_back(Rec(TimerOp::kExpire, sim.Now(), timer));
      });
    }
  });
  sim.RunUntil(kSecond);

  constexpr uint64_t kJobs = kOnTime + kOverdue + 1;  // + the recovery shot
  const SlackState state = Fold(records);
  ASSERT_EQ(state.fired_spans(), static_cast<uint64_t>(kOnTime + kOverdue));
  EXPECT_EQ(task->dispatches(), kJobs);
  // Zero-slack windows: requested == deadline, so the pass's firing
  // component IS dispatch lateness (the recovery shot itself is on time
  // and unrecorded, adding zero to both sides).
  EXPECT_EQ(state.firing().sum, static_cast<uint64_t>(task->total_lateness()));
  EXPECT_EQ(state.firing().max, static_cast<uint64_t>(task->worst_lateness()));
  EXPECT_EQ(state.total().sum, static_cast<uint64_t>(task->total_lateness()));
  EXPECT_GT(task->total_lateness(), 0) << "workload failed to provoke lateness";
  // And the exported histogram carries the same distribution.
  EXPECT_EQ(hist->count() - base_count, kJobs);
  EXPECT_EQ(hist->sum() - base_sum, static_cast<uint64_t>(task->total_lateness()));
  EXPECT_GE(hist->max(), static_cast<uint64_t>(task->worst_lateness()));
}

}  // namespace
}  // namespace tempo
