// Tests for the live analysis layer (src/live): the bounded window rings,
// the burst detector's hysteresis, the online usage-pattern classifier and
// its LRU, and the LiveAnalyzer's load-bearing identity contract — for a
// finished run, the live per-label set-rate series must equal what the
// offline RatesPass computes from the recorded trace of the same run.
// The equivalence is checked three ways, at several window sizes:
//   * synthetic record streams fed to both sides directly;
//   * a randomized multi-producer relay run, recorded to disk through
//     TraceStreamWriter on the same drain path the analyzer taps (the
//     concurrency tests run under the TSan CI job);
//   * a real workload (the Figure 1 Vista desktop) observed through the
//     LiveTapOptions hookup while it executes — which must also flag the
//     Outlook watchdog storm as a burst, online.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/rates.h"
#include "src/live/burst.h"
#include "src/live/classifier.h"
#include "src/live/live_analyzer.h"
#include "src/live/window_ring.h"
#include "src/timer/timer_service.h"
#include "src/trace/file.h"
#include "src/trace/relay.h"
#include "src/trace/stream_writer.h"
#include "src/workloads/vista_workloads.h"

namespace tempo {
namespace {

using live::BurstDetector;
using live::BurstThresholds;
using live::LiveAnalyzer;
using live::LiveOptions;
using live::OnlineClassifier;
using live::RateRing;

TraceRecord Rec(SimTime ts, TimerOp op, Pid pid = kKernelPid, TimerId timer = 1,
                SimDuration timeout = 0) {
  TraceRecord r;
  r.timestamp = ts;
  r.op = op;
  r.pid = pid;
  r.timer = timer;
  r.timeout = timeout;
  return r;
}

void ExpectSeriesEqual(const std::vector<RateSeries>& live,
                       const std::vector<RateSeries>& offline) {
  ASSERT_EQ(live.size(), offline.size());
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].label, offline[i].label) << "series " << i;
    EXPECT_EQ(live[i].per_window, offline[i].per_window)
        << "series " << live[i].label;
  }
}

// --- RateRing ---

TEST(LiveRingTest, CountsPerWindowAndTracksPeak) {
  RateRing ring(8);
  ring.Add(3);
  ring.Add(3);
  ring.Add(3);
  ring.Add(5, 2);
  EXPECT_EQ(ring.Count(3), 3u);
  EXPECT_EQ(ring.Count(5), 2u);
  EXPECT_EQ(ring.Count(4), 0u);
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.peak_count(), 3u);
  EXPECT_EQ(ring.peak_window(), 3u);
  EXPECT_EQ(ring.evicted_windows(), 0u);
}

TEST(LiveRingTest, EvictionIsCountedNeverSilent) {
  RateRing ring(4);  // power of two already
  for (uint64_t w = 0; w < 10; ++w) {
    ring.Add(w);
  }
  // Retained range is [6, 9]; windows 0..5 fell off the back.
  EXPECT_EQ(ring.lo(), 6u);
  EXPECT_EQ(ring.hi(), 9u);
  EXPECT_EQ(ring.Count(5), 0u);
  EXPECT_EQ(ring.Count(9), 1u);
  EXPECT_EQ(ring.evicted_windows(), 6u);
  EXPECT_EQ(ring.evicted_count(), 6u);
  EXPECT_EQ(ring.total(), 10u);  // totals stay exact after eviction
}

TEST(LiveRingTest, StragglerBelowRetentionGoesToEvictedTallies) {
  RateRing ring(4);
  ring.Add(0);
  ring.Add(100);  // jump far ahead: window 0 evicted
  ring.Add(1);    // straggler below retention
  EXPECT_EQ(ring.Count(1), 0u);
  EXPECT_EQ(ring.evicted_windows(), 2u);
  EXPECT_EQ(ring.evicted_count(), 2u);
  EXPECT_EQ(ring.total(), 3u);
}

// --- BurstDetector ---

TEST(LiveBurstTest, HysteresisMakesAWobblyStormOneBurst) {
  BurstThresholds t;
  t.threshold = 100.0;
  t.clear = 50.0;
  BurstDetector det(t, "");  // uninstrumented
  det.OnWindowClosed(0, 10.0);
  EXPECT_FALSE(det.active());
  det.OnWindowClosed(1, 150.0);  // crosses the threshold
  EXPECT_TRUE(det.active());
  EXPECT_EQ(det.bursts(), 1u);
  EXPECT_EQ(det.start_window(), 1u);
  det.OnWindowClosed(2, 60.0);  // below threshold but above clear: still on
  EXPECT_TRUE(det.active());
  EXPECT_EQ(det.bursts(), 1u);
  det.OnWindowClosed(3, 120.0);  // wobbles back up: same burst
  EXPECT_TRUE(det.active());
  EXPECT_EQ(det.bursts(), 1u);
  det.OnWindowClosed(4, 40.0);  // below clear: burst ends
  EXPECT_FALSE(det.active());
  det.OnWindowClosed(5, 200.0);  // a second storm
  EXPECT_EQ(det.bursts(), 2u);
  EXPECT_DOUBLE_EQ(det.peak_rate(), 200.0);
}

TEST(LiveBurstTest, ClearAboveThresholdIsClamped) {
  BurstThresholds t;
  t.threshold = 100.0;
  t.clear = 500.0;  // nonsense: would end every burst instantly
  BurstDetector det(t, "");
  det.OnWindowClosed(0, 150.0);
  EXPECT_TRUE(det.active());
  det.OnWindowClosed(1, 120.0);  // >= clamped clear (=threshold): stays on
  EXPECT_TRUE(det.active());
  EXPECT_EQ(det.bursts(), 1u);
}

// --- OnlineClassifier ---

OnlineClassifier::Options QuietOptions(size_t capacity = 64) {
  OnlineClassifier::Options o;
  o.capacity = capacity;
  o.stats_label.clear();  // keep unit tests out of the global registry
  return o;
}

UsagePattern PatternOf(const OnlineClassifier& c, TimerId id) {
  UsagePattern p = UsagePattern::kOther;
  EXPECT_TRUE(c.Lookup(id, &p));
  return p;
}

TEST(LiveClassifierTest, PeriodicTimerIsClassifiedStreaming) {
  OnlineClassifier c(QuietOptions());
  const SimDuration period = 100 * kMillisecond;
  SimTime t = 0;
  for (int i = 0; i < 4; ++i) {
    c.Observe(Rec(t, TimerOp::kSet, 1, 7, period));
    t += period;
    c.Observe(Rec(t, TimerOp::kExpire, 1, 7));
  }
  EXPECT_EQ(PatternOf(c, 7), UsagePattern::kPeriodic);
}

TEST(LiveClassifierTest, WatchdogNeverExpires) {
  OnlineClassifier c(QuietOptions());
  for (int i = 0; i < 4; ++i) {
    c.Observe(Rec(i * kSecond, TimerOp::kSet, 1, 7, 5 * kSecond));
  }
  EXPECT_EQ(PatternOf(c, 7), UsagePattern::kWatchdog);
}

TEST(LiveClassifierTest, TimeoutIsCanceledThenReSet) {
  OnlineClassifier c(QuietOptions());
  for (int i = 0; i < 4; ++i) {
    c.Observe(Rec(i * kSecond, TimerOp::kSet, 1, 7, 100 * kMillisecond));
    c.Observe(Rec(i * kSecond + 10 * kMillisecond, TimerOp::kCancel, 1, 7));
  }
  EXPECT_EQ(PatternOf(c, 7), UsagePattern::kTimeout);
}

TEST(LiveClassifierTest, DelayReSetsAfterARealGap) {
  OnlineClassifier c(QuietOptions());
  SimTime t = 0;
  for (int i = 0; i < 4; ++i) {
    c.Observe(Rec(t, TimerOp::kSet, 1, 7, 100 * kMillisecond));
    t += 100 * kMillisecond;
    c.Observe(Rec(t, TimerOp::kExpire, 1, 7));
    t += 100 * kMillisecond;  // a gap well beyond the 2 ms variance
  }
  EXPECT_EQ(PatternOf(c, 7), UsagePattern::kDelay);
}

TEST(LiveClassifierTest, CountdownCountsThePreviousValueDown) {
  OnlineClassifier c(QuietOptions());
  c.Observe(Rec(0, TimerOp::kSet, 1, 7, 500 * kMillisecond));
  c.Observe(Rec(100 * kMillisecond, TimerOp::kSet, 1, 7, 400 * kMillisecond));
  c.Observe(Rec(200 * kMillisecond, TimerOp::kSet, 1, 7, 300 * kMillisecond));
  c.Observe(Rec(300 * kMillisecond, TimerOp::kSet, 1, 7, 200 * kMillisecond));
  EXPECT_EQ(PatternOf(c, 7), UsagePattern::kCountdown);
}

TEST(LiveClassifierTest, WatchdogWithExpiriesIsDeferred) {
  OnlineClassifier c(QuietOptions());
  // Deferred four times like a watchdog...
  for (int i = 0; i < 5; ++i) {
    c.Observe(Rec(i * 500 * kMillisecond, TimerOp::kSet, 1, 7, kSecond));
  }
  // ...then it finally fires and is restarted.
  c.Observe(Rec(3 * kSecond, TimerOp::kExpire, 1, 7));
  c.Observe(Rec(3 * kSecond, TimerOp::kSet, 1, 7, kSecond));
  EXPECT_EQ(PatternOf(c, 7), UsagePattern::kDeferred);
}

TEST(LiveClassifierTest, BelowMinEpisodesStaysSingleUse) {
  OnlineClassifier c(QuietOptions());
  c.Observe(Rec(0, TimerOp::kSet, 1, 7, kSecond));
  c.Observe(Rec(kSecond, TimerOp::kSet, 1, 7, kSecond));
  EXPECT_EQ(PatternOf(c, 7), UsagePattern::kSingleUse);
}

TEST(LiveClassifierTest, LruEvictsColdestAndFreezesItsPattern) {
  OnlineClassifier c(QuietOptions(/*capacity=*/2));
  c.Observe(Rec(0, TimerOp::kSet, 1, 1, kSecond));
  c.Observe(Rec(1, TimerOp::kSet, 1, 2, kSecond));
  c.Observe(Rec(2, TimerOp::kSet, 1, 3, kSecond));  // evicts timer 1
  EXPECT_EQ(c.tracked(), 2u);
  EXPECT_EQ(c.evictions(), 1u);
  UsagePattern p;
  EXPECT_FALSE(c.Lookup(1, &p));
  EXPECT_TRUE(c.Lookup(2, &p));
  EXPECT_TRUE(c.Lookup(3, &p));
  // The evicted timer's pattern stays frozen in the aggregate mix.
  EXPECT_EQ(c.mix()[static_cast<size_t>(UsagePattern::kSingleUse)], 3u);
  // A cancel/expire of an evicted timer must not resurrect it.
  c.Observe(Rec(3, TimerOp::kExpire, 1, 1));
  EXPECT_EQ(c.tracked(), 2u);
}

// --- LiveAnalyzer vs the offline RatesPass (identity contract) ---

// A synthetic stream with every labelled case: kernel records, mapped
// pids, default-labelled pids, a dropped (empty) label, non-counting ops,
// and trailing records sitting exactly on the derived trace end.
std::vector<TraceRecord> SyntheticStream() {
  std::vector<TraceRecord> records;
  std::mt19937_64 rng(2008);
  SimTime t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += rng() % (40 * kMillisecond);
    const Pid pid = static_cast<Pid>(rng() % 5);  // 0=kernel, 1..4 users
    const uint64_t pick = rng() % 10;
    TimerOp op = TimerOp::kSet;
    if (pick >= 6 && pick < 8) {
      op = TimerOp::kExpire;
    } else if (pick == 8) {
      op = TimerOp::kCancel;
    } else if (pick == 9) {
      op = (i % 2) != 0 ? TimerOp::kInit : TimerOp::kBlock;
    }
    records.push_back(Rec(t, op, pid, rng() % 40, kSecond));
  }
  // Several records at the exact final timestamp: the offline pass derives
  // end = last timestamp and excludes them; the live side must agree.
  records.push_back(Rec(t, TimerOp::kSet, 1, 7, kSecond));
  records.push_back(Rec(t, TimerOp::kSet, 0, 8, kSecond));
  return records;
}

RateGrouping MixedGrouping() {
  RateGrouping grouping;
  grouping.pid_labels[1] = "Outlook";
  grouping.pid_labels[2] = "Browser";
  grouping.pid_labels[3] = "";  // explicitly dropped
  return grouping;  // pid 4 falls under the "System" default
}

TEST(LiveAnalyzerTest, SetRateResultEqualsOfflinePassAtSeveralWindows) {
  const std::vector<TraceRecord> records = SyntheticStream();
  const RateGrouping grouping = MixedGrouping();
  for (const SimDuration window :
       {100 * kMillisecond, kSecond, 3 * kSecond + 700 * kMillisecond}) {
    SCOPED_TRACE(testing::Message() << "window=" << window);
    LiveOptions options;
    options.window = window;
    options.grouping = grouping;
    options.classifier.stats_label.clear();
    options.stats_label = "test";
    LiveAnalyzer analyzer(options);
    for (const TraceRecord& r : records) {
      analyzer.Ingest(r);
    }
    EXPECT_EQ(analyzer.windows_evicted(), 0u);

    RateOptions rate_options;
    rate_options.window = window;
    ExpectSeriesEqual(analyzer.SetRateResult(),
                      ComputeRates(records, grouping, rate_options));
  }
}

TEST(LiveAnalyzerTest, EmptyAndDegenerateStreams) {
  LiveOptions options;
  options.classifier.stats_label.clear();
  options.stats_label = "test-empty";
  LiveAnalyzer analyzer(options);
  EXPECT_TRUE(analyzer.SetRateResult().empty());
  // A single record: derived end == its timestamp, so nothing counts —
  // exactly like the offline pass.
  analyzer.Ingest(Rec(kSecond, TimerOp::kSet, 1, 1, kSecond));
  ExpectSeriesEqual(analyzer.SetRateResult(),
                    ComputeRates({Rec(kSecond, TimerOp::kSet, 1, 1, kSecond)},
                                 RateGrouping{}, RateOptions{}));
}

TEST(LiveAnalyzerTest, RingEvictionIsSurfacedNotSilent) {
  LiveOptions options;
  options.window = kSecond;
  options.ring_windows = 4;
  options.classifier.stats_label.clear();
  options.stats_label = "test-evict";
  LiveAnalyzer analyzer(options);
  for (int w = 0; w < 64; ++w) {
    analyzer.Ingest(Rec(w * kSecond, TimerOp::kSet, 0, 1, kSecond));
  }
  EXPECT_GT(analyzer.windows_evicted(), 0u);
  const live::LiveSnapshot snap = analyzer.TakeSnapshot();
  EXPECT_EQ(snap.windows_evicted, analyzer.windows_evicted());
  // Totals remain exact even though old windows are gone.
  ASSERT_EQ(snap.processes.size(), 1u);
  EXPECT_EQ(snap.processes[0].sets, 64u);
}

// --- The randomized multi-producer equivalence run (TSan-covered) ---

class LiveEquivalenceTest : public ::testing::Test {
 protected:
  std::string Path() const { return testing::TempDir() + "/live_equiv.trc"; }
  void TearDown() override { std::remove(Path().c_str()); }
};

TEST_F(LiveEquivalenceTest, MultiProducerStreamedRunMatchesOfflinePass) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;
  const RateGrouping grouping = MixedGrouping();
  const SimDuration windows[] = {100 * kMillisecond, kSecond,
                                 2 * kSecond + 300 * kMillisecond};
  for (const SimDuration window : windows) {
    SCOPED_TRACE(testing::Message() << "window=" << window);
    RelayChannelSet channels;
    std::vector<RelayChannel*> lanes;
    for (int p = 0; p < kProducers; ++p) {
      lanes.push_back(channels.Register("lane" + std::to_string(p)));
    }
    CallsiteRegistry callsites;
    TraceStreamWriter writer(Path(), &callsites);
    LiveOptions options;
    options.window = window;
    options.grouping = grouping;
    options.classifier.stats_label.clear();
    options.stats_label = "equiv";
    LiveAnalyzer analyzer(options);
    // One drain path, two consumers of the same merge: the stream writer
    // records the run while the analyzer watches it.
    RelayDrainer drainer(&channels, [&](const TraceRecord& r) {
      writer.Append(r);
      analyzer.Ingest(r);
    });

    std::atomic<bool> done{false};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        std::mt19937_64 rng(1000u + static_cast<unsigned>(p) +
                            static_cast<unsigned>(window));
        SimTime t = rng() % kMillisecond;
        for (int i = 0; i < kPerProducer; ++i) {
          t += rng() % (2 * kMillisecond);  // nondecreasing per channel
          const Pid pid = static_cast<Pid>(rng() % 5);
          const uint64_t pick = rng() % 10;
          TimerOp op = TimerOp::kSet;
          if (pick >= 6 && pick < 8) {
            op = TimerOp::kExpire;
          } else if (pick == 8) {
            op = TimerOp::kCancel;
          } else if (pick == 9) {
            op = TimerOp::kBlock;
          }
          while (!lanes[p]->TryLog(Rec(t, op, pid, rng() % 100, kSecond))) {
            std::this_thread::yield();  // ring full: wait for the drainer
          }
        }
      });
    }
    std::thread consumer([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (drainer.Poll() == 0) {
          std::this_thread::yield();
        }
      }
    });
    for (auto& thread : producers) {
      thread.join();
    }
    done.store(true, std::memory_order_release);
    consumer.join();
    channels.CloseAll();
    drainer.Finish();
    ASSERT_TRUE(writer.Close());
    for (const RelayChannel* lane : lanes) {
      EXPECT_EQ(lane->dropped(), 0u);
    }

    // The recorded file and the live view came from the same merge; the
    // offline pass over the file must reproduce the live series exactly.
    const auto loaded = ReadTraceFile(Path());
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->records.size(),
              static_cast<size_t>(kProducers) * kPerProducer);
    EXPECT_EQ(analyzer.records_ingested(), loaded->records.size());
    EXPECT_EQ(analyzer.windows_evicted(), 0u);
    RateOptions rate_options;
    rate_options.window = window;
    ExpectSeriesEqual(analyzer.SetRateResult(),
                      ComputeRates(loaded->records, grouping, rate_options));
  }
}

// --- The sharded TimerService traced live (TSan-covered) ---

TEST(LiveServiceTest, ConcurrentTimerServiceDrainsIntoTheAnalyzer) {
  RelayChannelSet channels;
  TimerService::Options service_options;
  service_options.shards = 4;
  service_options.stats_label = "live-service-test";
  service_options.trace = &channels;
  TimerService service(service_options);

  LiveOptions options;
  options.window = 100 * kMillisecond;
  options.classifier.stats_label.clear();
  options.stats_label = "service";
  LiveAnalyzer analyzer(options);
  std::vector<TraceRecord> merged;
  RelayDrainer drainer(&channels, [&](const TraceRecord& r) {
    merged.push_back(r);
    analyzer.Ingest(r);
  });

  constexpr int kWorkers = 4;
  constexpr int kOpsPerWorker = 4000;
  std::atomic<SimTime> now{0};
  std::atomic<int> remaining{kWorkers};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      std::mt19937_64 rng(77u + static_cast<unsigned>(w));
      std::vector<TimerHandle> handles;
      for (int i = 0; i < kOpsPerWorker; ++i) {
        const SimTime base = now.load(std::memory_order_acquire);
        handles.push_back(service.Schedule(
            base + kMillisecond * (1 + rng() % 2000), [](TimerHandle) {}));
        if (handles.size() > 4 && rng() % 10 < 7) {
          service.Cancel(handles.front());
          handles.erase(handles.begin());
        }
        if (i % 64 == 0) {
          std::this_thread::yield();
        }
      }
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  // The driving clock: advances trace time, fires due shards, and drains
  // the per-shard channels into the live analyzer — all while the workers
  // keep scheduling and canceling. It runs until every worker is done, so
  // the test cannot race past them; sim time is capped so the window span
  // always fits the analyzer's ring (the identity below needs zero
  // evictions).
  constexpr SimTime kSimCap = 30 * kSecond;
  SimTime t = 0;
  while (remaining.load(std::memory_order_acquire) > 0) {
    if (t < kSimCap) {
      t += 10 * kMillisecond;
    }
    now.store(t, std::memory_order_release);
    service.SetTraceTime(t);
    service.AdvanceAll(t);
    drainer.Poll();
  }
  for (auto& thread : workers) {
    thread.join();
  }
  channels.CloseAll();
  drainer.Finish();

  ASSERT_GT(merged.size(), 0u);
  EXPECT_EQ(analyzer.records_ingested(), merged.size());
  ASSERT_EQ(analyzer.windows_evicted(), 0u);
  // Everything the service logs is kernel-labelled; live must equal the
  // offline pass over the very records the drainer emitted.
  RateOptions rate_options;
  rate_options.window = options.window;
  ExpectSeriesEqual(analyzer.SetRateResult(),
                    ComputeRates(merged, RateGrouping{}, rate_options));
}

// --- End to end: a real workload observed while it runs ---

TEST(LiveWorkloadTest, VistaDesktopLiveEqualsOfflineAndFlagsOutlookBurst) {
  RelayChannelSet channels;
  std::unique_ptr<LiveAnalyzer> analyzer;
  std::unique_ptr<RelayDrainer> drainer;
  LiveTapOptions tap;
  tap.channels = &channels;
  tap.poll = [&] {
    if (analyzer == nullptr) {
      // First poll: the workload has registered every process by now.
      LiveOptions options;
      options.window = kSecond;
      for (const Process& p : tap.processes->processes()) {
        if (p.pid != kKernelPid) {
          options.grouping.pid_labels[p.pid] = p.name;
        }
      }
      options.callsites = tap.callsites;
      options.classifier.stats_label.clear();
      options.stats_label = "workload";
      analyzer = std::make_unique<LiveAnalyzer>(options);
      drainer = std::make_unique<RelayDrainer>(
          &channels, [&a = *analyzer](const TraceRecord& r) { a.Ingest(r); });
    }
    drainer->Poll();
  };

  WorkloadOptions options;
  options.duration = 2 * kMinute;
  options.seed = 2008;
  options.live = &tap;
  TraceRun run = RunVistaDesktop(options);

  ASSERT_NE(analyzer, nullptr);
  channels.CloseAll();
  drainer->Finish();
  ASSERT_EQ(channels.size(), 1u);
  EXPECT_EQ(channels.channel(0)->dropped(), 0u);
  EXPECT_EQ(analyzer->records_ingested(), run.records.size());

  // Identity: the live series equal the offline pass over the recorded
  // trace, under the same per-process grouping.
  RateGrouping grouping;
  for (const auto& [name, pid] : run.pids) {
    grouping.pid_labels[pid] = name;
  }
  RateOptions rate_options;
  ExpectSeriesEqual(analyzer->SetRateResult(),
                    ComputeRates(run.records, grouping, rate_options));

  // And the observatory caught Figure 1 online: Outlook's watchdog storm
  // as a burst >= 5000 sets/s, over a kernel baseline near 1000/s.
  const live::LiveSnapshot snap = analyzer->TakeSnapshot();
  const live::LiveSeriesStats* outlook = nullptr;
  const live::LiveSeriesStats* kernel = nullptr;
  for (const auto& s : snap.processes) {
    if (s.label == "outlook.exe") {
      outlook = &s;
    } else if (s.label == "Kernel") {
      kernel = &s;
    }
  }
  ASSERT_NE(outlook, nullptr);
  ASSERT_NE(kernel, nullptr);
  EXPECT_GE(outlook->bursts, 1u);
  EXPECT_GE(outlook->burst_peak_rate, 5000.0);
  EXPECT_GT(kernel->mean_rate, 900.0);
  EXPECT_LT(kernel->mean_rate, 1100.0);
  // The pattern mix is live too: the desktop has periodic tickers and
  // watchdog-style timers among its classified population.
  uint64_t periodic = 0;
  uint64_t watchdog = 0;
  for (const auto& [name, count] : snap.patterns) {
    if (name == std::string(UsagePatternName(UsagePattern::kPeriodic))) {
      periodic = count;
    }
    if (name == std::string(UsagePatternName(UsagePattern::kWatchdog))) {
      watchdog = count;
    }
  }
  EXPECT_GT(periodic, 0u);
  EXPECT_GT(watchdog, 0u);
}

}  // namespace
}  // namespace tempo
