// Additional API-surface tests: canonical timeouts, scatter options,
// rate columns, hrtimer/dynticks interplay, NT timers, and workload
// run-harness contracts.

#include <gtest/gtest.h>

#include "src/analysis/lifetimes.h"
#include "src/analysis/render.h"
#include "src/analysis/scatter.h"
#include "src/osvista/userapi.h"
#include "src/workloads/linux_workloads.h"
#include "src/workloads/vista_workloads.h"

namespace tempo {
namespace {

TEST(CanonicalTimeoutTest, WheelSetsUseJiffyDelta) {
  TraceRecord r;
  r.op = TimerOp::kSet;
  r.flags = kFlagJiffyWheel;
  r.timestamp = 10 * kMillisecond;  // mid-jiffy
  r.timeout = 199 * kMillisecond;   // jittered observation
  r.expiry = JiffiesToTime(TimeToJiffies(r.timestamp) + 51);
  EXPECT_EQ(CanonicalTimeout(r), 51 * kJiffy);
}

TEST(CanonicalTimeoutTest, UserAndHighResKeepExactValues) {
  TraceRecord user;
  user.op = TimerOp::kSet;
  user.flags = kFlagUser | kFlagJiffyWheel;
  user.timeout = FromMilliseconds(499.9);
  user.expiry = kSecond;
  EXPECT_EQ(CanonicalTimeout(user), FromMilliseconds(499.9));

  TraceRecord hr;
  hr.op = TimerOp::kSet;
  hr.flags = kFlagHighRes;
  hr.timeout = 1234567;
  hr.expiry = 7654321;
  EXPECT_EQ(CanonicalTimeout(hr), 1234567);
}

TEST(ScatterOptionsTest, IncludeResetsCountsReArms) {
  std::vector<TraceRecord> records;
  TraceRecord set;
  set.timer = 1;
  set.op = TimerOp::kSet;
  set.timeout = kSecond;
  set.expiry = kSecond;
  records.push_back(set);
  TraceRecord reset = set;
  reset.timestamp = 500 * kMillisecond;
  reset.expiry = reset.timestamp + kSecond;
  records.push_back(reset);  // re-arm while pending
  TraceRecord expire = reset;
  expire.timestamp = reset.timestamp + kSecond;
  expire.op = TimerOp::kExpire;
  records.push_back(expire);

  ScatterOptions without;
  ScatterOptions with;
  with.include_resets = true;
  uint64_t n_without = 0;
  uint64_t n_with = 0;
  for (const auto& p : ComputeScatter(records, without)) {
    n_without += p.count;
  }
  for (const auto& p : ComputeScatter(records, with)) {
    n_with += p.count;
  }
  EXPECT_EQ(n_without, 1u);  // only the expiry episode
  EXPECT_EQ(n_with, 2u);     // the reset counts as a cancellation
}

TEST(RenderColumnsTest, RateColumnsEmitOneSeriesPerLabel) {
  RateSeries a{"Kernel", {1, 2, 3}};
  RateSeries b{"Outlook", {7, 0, 9}};
  const std::string out = RateColumns({a, b}, kSecond);
  EXPECT_NE(out.find("# Kernel"), std::string::npos);
  EXPECT_NE(out.find("# Outlook"), std::string::npos);
  EXPECT_NE(out.find("0 7"), std::string::npos);  // t=0s value of Outlook
}

TEST(HrTimerDynticksTest, HrTimerFiresPreciselyUnderDynticks) {
  // hrtimers run from their own one-shot event: suppressing the periodic
  // tick must not delay them.
  Simulator sim(1);
  RelayBuffer buffer;
  LinuxKernel::Options options;
  options.dynticks = true;
  options.max_set_jitter = 0;
  LinuxKernel kernel(&sim, &buffer, options);
  kernel.Boot();
  SimTime fired_at = -1;
  LinuxHrTimer* t = kernel.InitHrTimer("test/hr", [&] { fired_at = sim.Now(); });
  kernel.StartHrTimer(t, 7777777);  // 7.777777 ms, not a jiffy multiple
  sim.RunUntil(kSecond);
  EXPECT_EQ(fired_at, 7777777);
}

TEST(HrTimerDynticksTest, ReprogramOnEarlierHrTimer) {
  Simulator sim(1);
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer);
  kernel.Boot();
  std::vector<SimTime> fires;
  LinuxHrTimer* late = kernel.InitHrTimer("test/late", [&] { fires.push_back(sim.Now()); });
  LinuxHrTimer* early = kernel.InitHrTimer("test/early", [&] { fires.push_back(sim.Now()); });
  kernel.StartHrTimer(late, 100 * kMillisecond);
  kernel.StartHrTimer(early, 10 * kMillisecond);  // must pull the event forward
  sim.RunUntil(kSecond);
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_EQ(fires[0], 10 * kMillisecond);
  EXPECT_EQ(fires[1], 100 * kMillisecond);
}

TEST(NtTimerTest, OneShotDoesNotRepeat) {
  Simulator sim(1);
  EtwSession session;
  VistaKernel kernel(&sim, &session);
  VistaUserApi api(&kernel);
  kernel.Boot();
  int fired = 0;
  NtTimer* t = api.NtCreateTimer(1, 1, "app/nt", [&] { ++fired; });
  t->Set(50 * kMillisecond);  // no period
  sim.RunUntil(kSecond);
  EXPECT_EQ(fired, 1);
}

TEST(NtTimerTest, ReSetBeforeExpiryDefers) {
  Simulator sim(1);
  EtwSession session;
  VistaKernel kernel(&sim, &session);
  VistaUserApi api(&kernel);
  kernel.Boot();
  SimTime fired_at = -1;
  NtTimer* t = api.NtCreateTimer(1, 1, "app/nt", [&] { fired_at = sim.Now(); });
  t->Set(100 * kMillisecond);
  sim.ScheduleAt(50 * kMillisecond, [&] { t->Set(100 * kMillisecond); });
  sim.RunUntil(kSecond);
  EXPECT_GE(fired_at, 150 * kMillisecond);
}

TEST(WorkloadHarnessTest, AllRunnersProduceLabelledColumnOrder) {
  WorkloadOptions options;
  options.duration = 30 * kSecond;
  const auto linux_runs = RunAllLinuxWorkloads(options);
  ASSERT_EQ(linux_runs.size(), 4u);
  EXPECT_EQ(linux_runs[0].label, "Idle");
  EXPECT_EQ(linux_runs[1].label, "Skype");
  EXPECT_EQ(linux_runs[2].label, "Firefox");
  EXPECT_EQ(linux_runs[3].label, "Webserver");
  const auto vista_runs = RunAllVistaWorkloads(options);
  ASSERT_EQ(vista_runs.size(), 4u);
  EXPECT_EQ(vista_runs[0].label, "Idle");
  for (const auto& run : vista_runs) {
    EXPECT_NE(run.vista_kernel, nullptr);
    EXPECT_EQ(run.linux_kernel, nullptr);
  }
}

TEST(WorkloadHarnessTest, PidsMapCoversNamedProcesses) {
  WorkloadOptions options;
  options.duration = 10 * kSecond;
  TraceRun idle = RunLinuxIdle(options);
  for (const char* name : {"Xorg", "icewm", "init", "cron"}) {
    EXPECT_TRUE(idle.pids.count(name)) << name;
  }
  TraceRun desktop = RunVistaDesktop(options);
  for (const char* name : {"outlook.exe", "iexplore.exe", "csrss.exe"}) {
    EXPECT_TRUE(desktop.pids.count(name)) << name;
  }
}

TEST(WorkloadHarnessTest, IntensityScalesActivity) {
  WorkloadOptions low;
  low.duration = kMinute;
  low.intensity = 0.25;
  WorkloadOptions high = low;
  high.intensity = 2.0;
  TraceRun quiet = RunLinuxIdle(low);
  TraceRun busy = RunLinuxIdle(high);
  EXPECT_GT(busy.records.size(), quiet.records.size());
}

}  // namespace
}  // namespace tempo
