// Tests for the network substrate: fabric, RTO estimation, TCP, resolvers,
// RPC backoff, the layered file-access scenario and the HTTP pair.

#include <gtest/gtest.h>

#include "src/net/fileaccess.h"
#include "src/net/http.h"
#include "src/net/network.h"
#include "src/net/resolver.h"
#include "src/net/rpc.h"
#include "src/net/rto.h"
#include "src/net/tcp.h"
#include "src/sim/simulator.h"
#include "src/trace/buffer.h"

namespace tempo {
namespace {

// --- SimNetwork ---

TEST(SimNetworkTest, DeliversAfterLatency) {
  Simulator sim(1);
  SimNetwork net(&sim);
  const NodeId a = net.AddNode("a");
  const NodeId b = net.AddNode("b");
  LinkParams link;
  link.latency = kMillisecond;
  link.jitter_sigma = 0;
  link.per_byte = 0;
  net.SetLink(a, b, link);
  SimTime arrived = -1;
  EXPECT_TRUE(net.Send(a, b, 100, [&] { arrived = sim.Now(); }));
  sim.Run();
  EXPECT_EQ(arrived, kMillisecond);
}

TEST(SimNetworkTest, UnreachableDropsSilently) {
  Simulator sim(1);
  SimNetwork net(&sim);
  const NodeId a = net.AddNode("a");
  const NodeId b = net.AddNode("b");
  LinkParams link;
  link.unreachable = true;
  net.SetLink(a, b, link);
  bool delivered = false;
  EXPECT_FALSE(net.Send(a, b, 10, [&] { delivered = true; }));
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.packets_dropped(), 1u);
}

TEST(SimNetworkTest, LossDropsApproximatelyAtRate) {
  Simulator sim(2);
  SimNetwork net(&sim);
  const NodeId a = net.AddNode("a");
  const NodeId b = net.AddNode("b");
  LinkParams link;
  link.loss = 0.3;
  net.SetLink(a, b, link);
  int delivered = 0;
  for (int i = 0; i < 10000; ++i) {
    net.Send(a, b, 1, [&] { ++delivered; });
  }
  sim.Run();
  EXPECT_NEAR(delivered, 7000, 200);
}

TEST(SimNetworkTest, SerializationCostScalesWithBytes) {
  Simulator sim(1);
  SimNetwork net(&sim);
  const NodeId a = net.AddNode("a");
  const NodeId b = net.AddNode("b");
  LinkParams link;
  link.latency = 0;
  link.jitter_sigma = 0;
  link.per_byte = 8;  // 8 ns per byte = 1 Gb/s
  net.SetLink(a, b, link);
  SimTime arrived = -1;
  net.Send(a, b, 1000, [&] { arrived = sim.Now(); });
  sim.Run();
  EXPECT_EQ(arrived, 8000);
}

// --- JacobsonEstimator ---

TEST(JacobsonTest, InitialRtoBeforeSamples) {
  JacobsonEstimator est;
  EXPECT_EQ(est.Rto(), 3 * kSecond);
  EXPECT_FALSE(est.has_sample());
}

TEST(JacobsonTest, FirstSampleInitialisesSrttAndRttvar) {
  JacobsonEstimator est;
  est.Sample(100 * kMillisecond);
  EXPECT_EQ(est.srtt(), 100 * kMillisecond);
  EXPECT_EQ(est.rttvar(), 50 * kMillisecond);
  // RTO = SRTT + 4 * RTTVAR = 300 ms.
  EXPECT_EQ(est.Rto(), 300 * kMillisecond);
}

TEST(JacobsonTest, MinRtoClampsLanRtts) {
  // The paper's testbed: ~130 us RTTs, yet the retransmit value seen in the
  // trace is 204 ms — the Linux minimum. The estimator must clamp.
  JacobsonEstimator est;
  for (int i = 0; i < 100; ++i) {
    est.Sample(130 * kMicrosecond);
  }
  EXPECT_EQ(est.Rto(), 204 * kMillisecond);
}

TEST(JacobsonTest, BackoffDoublesUpToMax) {
  JacobsonEstimator est;
  est.Sample(100 * kMillisecond);
  const SimDuration base = est.Rto();
  est.Backoff();
  EXPECT_EQ(est.Rto(), 2 * base);
  est.Backoff();
  EXPECT_EQ(est.Rto(), 4 * base);
  for (int i = 0; i < 20; ++i) {
    est.Backoff();
  }
  EXPECT_EQ(est.Rto(), 120 * kSecond);  // max clamp
}

TEST(JacobsonTest, RtoSaturatesInsteadOfOverflowingAtExtremeParams) {
  // A large SRTT with a deep backoff shift used to compute base << shift
  // before clamping — overflowing signed SimDuration (UB). The shift must
  // saturate to max_rto instead.
  JacobsonEstimator::Params params;
  params.max_backoff_shift = 62;
  JacobsonEstimator est(params);
  est.Sample(40 * kHour);  // base = srtt + 4*rttvar = 120 h ≈ 2^48.6 ns
  for (int i = 0; i < 62; ++i) {
    est.Backoff();
  }
  EXPECT_EQ(est.backoff_shift(), 62);
  EXPECT_EQ(est.Rto(), params.max_rto);
}

TEST(JacobsonTest, RtoSaturatesWithUnboundedMaxRto) {
  // Even with max_rto at the type's ceiling the shift must not overflow.
  JacobsonEstimator::Params params;
  params.max_rto = INT64_MAX;
  params.max_backoff_shift = 63;
  JacobsonEstimator est(params);
  est.Sample(kHour);
  for (int i = 0; i < 63; ++i) {
    est.Backoff();
  }
  EXPECT_EQ(est.Rto(), INT64_MAX);
}

TEST(JacobsonTest, ModerateBackoffStillDoublesAfterSaturationFix) {
  JacobsonEstimator::Params params;
  params.max_backoff_shift = 16;
  JacobsonEstimator est(params);
  est.Sample(kSecond);
  const SimDuration base = est.Rto();
  est.Backoff();
  est.Backoff();
  EXPECT_EQ(est.Rto(), std::min<SimDuration>(4 * base, params.max_rto));
}

TEST(JacobsonTest, SampleResetsBackoff) {
  JacobsonEstimator est;
  est.Sample(100 * kMillisecond);
  est.Backoff();
  est.Backoff();
  est.Sample(100 * kMillisecond);
  EXPECT_EQ(est.backoff_shift(), 0);
}

TEST(JacobsonTest, VarianceTracksJitterUp) {
  JacobsonEstimator est;
  for (int i = 0; i < 50; ++i) {
    est.Sample(100 * kMillisecond);
  }
  const SimDuration stable = est.Rto();
  for (int i = 0; i < 10; ++i) {
    est.Sample((i % 2 == 0 ? 50 : 150) * kMillisecond);
  }
  EXPECT_GT(est.Rto(), stable);
}

// --- TCP ---

struct TcpFixture {
  Simulator sim{3};
  SimNetwork net{&sim};
  NodeId a;
  NodeId b;
  std::unique_ptr<TcpStack> stack_a;
  std::unique_ptr<TcpStack> stack_b;

  explicit TcpFixture(double loss = 0.0, LinuxKernel* kernel = nullptr) {
    a = net.AddNode("a");
    b = net.AddNode("b");
    LinkParams link;
    link.latency = 65 * kMicrosecond;
    link.jitter_sigma = 0.1;
    link.loss = loss;
    net.SetLinkBoth(a, b, link);
    stack_a = std::make_unique<TcpStack>(&sim, &net, a, kernel, kKernelPid);
    stack_b = std::make_unique<TcpStack>(&sim, &net, b, nullptr, kKernelPid);
  }
};

TEST(TcpTest, HandshakeEstablishesBothEnds) {
  TcpFixture f;
  TcpListener* listener = f.stack_b->Listen();
  TcpConnection* server_conn = nullptr;
  listener->on_accept = [&](TcpConnection* conn) { server_conn = conn; };
  TcpConnection* client_conn = nullptr;
  f.stack_a->Connect(listener, [&](TcpConnection* conn) { client_conn = conn; }, nullptr);
  f.sim.RunUntil(kSecond);
  ASSERT_NE(client_conn, nullptr);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_TRUE(client_conn->established());
  EXPECT_TRUE(server_conn->established());
}

TEST(TcpTest, DataIsAcked) {
  TcpFixture f;
  TcpListener* listener = f.stack_b->Listen();
  size_t received = 0;
  listener->on_accept = [&](TcpConnection* conn) {
    conn->on_data = [&](size_t bytes) { received += bytes; };
  };
  bool acked = false;
  f.stack_a->Connect(listener, [&](TcpConnection* conn) {
    conn->Send(1000, [&] { acked = true; });
  }, nullptr);
  f.sim.RunUntil(kSecond);
  EXPECT_EQ(received, 1000u);
  EXPECT_TRUE(acked);
}

TEST(TcpTest, LossTriggersRetransmission) {
  TcpFixture f(/*loss=*/0.35);
  TcpListener* listener = f.stack_b->Listen();
  size_t deliveries = 0;
  listener->on_accept = [&](TcpConnection* conn) {
    conn->on_data = [&](size_t) { ++deliveries; };
  };
  int acked = 0;
  TcpConnection* client = nullptr;
  f.stack_a->Connect(listener, [&](TcpConnection* conn) {
    client = conn;
    conn->Send(1000, [&] { ++acked; });
  }, nullptr);
  f.sim.RunUntil(5 * kMinute);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(acked, 1);
  EXPECT_GE(deliveries, 1u);
}

TEST(TcpTest, ConnectToUnreachableFailsAfterSynRetries) {
  TcpFixture f;
  LinkParams dead;
  dead.unreachable = true;
  f.net.SetLink(f.a, f.b, dead);
  TcpListener* listener = f.stack_b->Listen();
  bool failed = false;
  SimTime failed_at = -1;
  f.stack_a->Connect(listener, [](TcpConnection*) { FAIL() << "must not connect"; },
                     [&] {
                       failed = true;
                       failed_at = f.sim.Now();
                     });
  f.sim.RunUntil(10 * kMinute);
  EXPECT_TRUE(failed);
  // 3 + 6 + 12 + 24 + 48 + (final 96 s wait) = 189 s, Linux's SYN schedule.
  EXPECT_GE(failed_at, 93 * kSecond);
  EXPECT_LE(failed_at, 200 * kSecond);
}

TEST(TcpTest, StopAndWaitQueuesBackToBackSends) {
  TcpFixture f;
  TcpListener* listener = f.stack_b->Listen();
  size_t received = 0;
  listener->on_accept = [&](TcpConnection* conn) {
    conn->on_data = [&](size_t bytes) { received += bytes; };
  };
  int acks = 0;
  f.stack_a->Connect(listener, [&](TcpConnection* conn) {
    conn->Send(100, [&] { ++acks; });
    conn->Send(200, [&] { ++acks; });
    conn->Send(300, [&] { ++acks; });
  }, nullptr);
  f.sim.RunUntil(kMinute);
  EXPECT_EQ(received, 600u);
  EXPECT_EQ(acks, 3);
}

TEST(TcpTest, CloseNotifiesPeer) {
  TcpFixture f;
  TcpListener* listener = f.stack_b->Listen();
  bool server_saw_close = false;
  listener->on_accept = [&](TcpConnection* conn) {
    conn->on_peer_close = [&] { server_saw_close = true; };
  };
  f.stack_a->Connect(listener, [&](TcpConnection* conn) { conn->Close(); }, nullptr);
  f.sim.RunUntil(kSecond);
  EXPECT_TRUE(server_saw_close);
}

TEST(TcpTest, KernelBoundStackEmitsKeepaliveAndRetransmitRecords) {
  Simulator sim(3);
  RelayBuffer buffer;
  LinuxKernel::Options kopts;
  kopts.max_set_jitter = 0;
  LinuxKernel kernel(&sim, &buffer, kopts);
  kernel.Boot();
  SimNetwork net(&sim);
  const NodeId a = net.AddNode("a");
  const NodeId b = net.AddNode("b");
  LinkParams link;
  link.latency = 65 * kMicrosecond;
  net.SetLinkBoth(a, b, link);
  TcpStack traced(&sim, &net, a, &kernel, kKernelPid);
  TcpStack remote(&sim, &net, b, nullptr, kKernelPid);
  TcpListener* listener = remote.Listen();
  listener->on_accept = [](TcpConnection*) {};
  TcpConnection* client = nullptr;
  traced.Connect(listener, [&](TcpConnection* conn) {
    client = conn;
    conn->Send(500, nullptr);
  }, nullptr);
  sim.RunUntil(10 * kSecond);
  ASSERT_NE(client, nullptr);
  client->Close();
  sim.RunUntil(11 * kSecond);

  bool saw_keepalive_set = false;
  bool saw_keepalive_cancel = false;
  bool saw_retransmit_set = false;
  for (const auto& r : buffer.records()) {
    const std::string& name = kernel.callsites().Name(r.callsite);
    if (name == "tcp/keepalive") {
      saw_keepalive_set = saw_keepalive_set || r.op == TimerOp::kSet;
      saw_keepalive_cancel = saw_keepalive_cancel || r.op == TimerOp::kCancel;
      if (r.op == TimerOp::kSet) {
        EXPECT_NEAR(ToSeconds(r.timeout), 7200.0, 1.0);
      }
    }
    if (name == "tcp/retransmit" && r.op == TimerOp::kSet) {
      saw_retransmit_set = true;
    }
  }
  EXPECT_TRUE(saw_keepalive_set);
  EXPECT_TRUE(saw_keepalive_cancel);
  EXPECT_TRUE(saw_retransmit_set);
}

TEST(TcpTest, TimerStructsAreSlabReused) {
  // 100 sequential connections must reuse a handful of timer identities
  // (Table 1: a 30000-connection trace had ~100 distinct timers).
  Simulator sim(3);
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer);
  kernel.Boot();
  SimNetwork net(&sim);
  const NodeId a = net.AddNode("a");
  const NodeId b = net.AddNode("b");
  net.SetLinkBoth(a, b, LinkParams{});
  TcpStack traced(&sim, &net, a, &kernel, kKernelPid);
  TcpStack remote(&sim, &net, b, nullptr, kKernelPid);
  TcpListener* listener = remote.Listen();
  listener->on_accept = [](TcpConnection*) {};
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(i * 100 * kMillisecond, [&] {
      traced.Connect(listener, [](TcpConnection* conn) { conn->Close(); }, nullptr);
    });
  }
  sim.RunUntil(kMinute);
  std::set<TimerId> ids;
  for (const auto& r : buffer.records()) {
    ids.insert(r.timer);
  }
  EXPECT_LE(ids.size(), 16u);
}

// --- resolver ---

TEST(ResolverTest, KnownNameResolvesQuickly) {
  Simulator sim(1);
  SimNetwork net(&sim);
  const NodeId self = net.AddNode("self");
  const NodeId dns = net.AddNode("dns");
  const NodeId target = net.AddNode("target");
  NameProvider provider(&sim, &net, self, dns, "dns", NameProvider::Options{});
  provider.Register("fileserver", target);
  bool found = false;
  NodeId node = kInvalidNode;
  SimDuration elapsed = 0;
  provider.Lookup("fileserver", [&](bool f, NodeId n, SimDuration e) {
    found = f;
    node = n;
    elapsed = e;
  });
  sim.RunUntil(kMinute);
  EXPECT_TRUE(found);
  EXPECT_EQ(node, target);
  EXPECT_LT(elapsed, 10 * kMillisecond);
}

TEST(ResolverTest, UnknownNameCostsFullRetrySchedule) {
  Simulator sim(1);
  SimNetwork net(&sim);
  const NodeId self = net.AddNode("self");
  const NodeId dns = net.AddNode("dns");
  NameProvider::Options options;
  options.timeout = 5 * kSecond;
  options.retries = 1;
  NameProvider provider(&sim, &net, self, dns, "dns", options);
  bool done = false;
  SimDuration elapsed = 0;
  provider.Lookup("tpyo", [&](bool f, NodeId, SimDuration e) {
    EXPECT_FALSE(f);
    done = true;
    elapsed = e;
  });
  sim.RunUntil(kMinute);
  EXPECT_TRUE(done);
  EXPECT_EQ(elapsed, 10 * kSecond);  // 2 attempts x 5 s
}

TEST(ResolverTest, SuccessfulLookupsLeaveNoPendingTimeoutEvents) {
  Simulator sim(1);
  SimNetwork net(&sim);
  const NodeId self = net.AddNode("self");
  const NodeId dns = net.AddNode("dns");
  const NodeId target = net.AddNode("target");
  NameProvider::Options options;
  options.timeout = 5 * kSecond;
  options.retries = 3;
  NameProvider provider(&sim, &net, self, dns, "dns", options);
  provider.Register("fileserver", target);
  constexpr int kLookups = 50;
  int resolved = 0;
  for (int i = 0; i < kLookups; ++i) {
    provider.Lookup("fileserver", [&](bool f, NodeId, SimDuration) {
      if (f) {
        ++resolved;
      }
    });
  }
  // Replies arrive within milliseconds; run well past them but well before
  // the 5 s timeouts would have fired as dead no-op events.
  sim.RunUntil(kSecond);
  EXPECT_EQ(resolved, kLookups);
  // Each answered attempt must cancel its timeout: nothing may stay queued.
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(ResolverTest, TimeoutStillFiresWhenReplyNeverArrives) {
  // The timeout cancellation must not break the retry path: an unknown
  // name still walks the full retry schedule.
  Simulator sim(1);
  SimNetwork net(&sim);
  const NodeId self = net.AddNode("self");
  const NodeId dns = net.AddNode("dns");
  NameProvider::Options options;
  options.timeout = kSecond;
  options.retries = 2;
  NameProvider provider(&sim, &net, self, dns, "dns", options);
  bool done = false;
  provider.Lookup("unknown", [&](bool f, NodeId, SimDuration e) {
    EXPECT_FALSE(f);
    EXPECT_EQ(e, 3 * kSecond);  // 3 attempts x 1 s
    done = true;
  });
  sim.RunUntil(kMinute);
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(ResolverTest, ParallelResolutionTakesFirstWinner) {
  Simulator sim(1);
  SimNetwork net(&sim);
  const NodeId self = net.AddNode("self");
  const NodeId wins_server = net.AddNode("wins");
  const NodeId dns_server = net.AddNode("dns");
  const NodeId target = net.AddNode("target");
  NameProvider::Options wins_options;
  wins_options.timeout = FromMilliseconds(1500);
  wins_options.retries = 2;
  NameProvider wins(&sim, &net, self, wins_server, "wins", wins_options);
  NameProvider dns(&sim, &net, self, dns_server, "dns", NameProvider::Options{});
  dns.Register("server", target);  // only DNS knows it
  ParallelResolver resolver(&sim);
  resolver.AddProvider(&wins);
  resolver.AddProvider(&dns);
  bool found = false;
  resolver.Resolve("server", [&](bool f, NodeId n, SimDuration) {
    found = f;
    EXPECT_EQ(n, target);
  });
  sim.RunUntil(kMinute);
  EXPECT_TRUE(found);
}

TEST(ResolverTest, ParallelFailureWaitsForSlowestProvider) {
  Simulator sim(1);
  SimNetwork net(&sim);
  const NodeId self = net.AddNode("self");
  const NodeId wins_server = net.AddNode("wins");
  const NodeId dns_server = net.AddNode("dns");
  NameProvider::Options wins_options;
  wins_options.timeout = FromMilliseconds(1500);
  wins_options.retries = 2;  // 4.5 s total
  NameProvider wins(&sim, &net, self, wins_server, "wins", wins_options);
  NameProvider::Options dns_options;
  dns_options.timeout = 5 * kSecond;
  dns_options.retries = 1;  // 10 s total
  NameProvider dns(&sim, &net, self, dns_server, "dns", dns_options);
  ParallelResolver resolver(&sim);
  resolver.AddProvider(&wins);
  resolver.AddProvider(&dns);
  SimDuration elapsed = 0;
  resolver.Resolve("tpyo", [&](bool f, NodeId, SimDuration e) {
    EXPECT_FALSE(f);
    elapsed = e;
  });
  sim.RunUntil(kMinute);
  EXPECT_EQ(elapsed, 10 * kSecond);  // bound by the slowest provider
}

// --- RPC ---

TEST(RpcTest, HealthyCallCompletesFirstAttempt) {
  Simulator sim(1);
  SimNetwork net(&sim);
  const NodeId c = net.AddNode("client");
  const NodeId s = net.AddNode("server");
  RpcServer server(&sim, &net, s);
  RpcClient client(&sim, &net, c);
  RpcClient::Result result;
  client.Call(&server, 512, [&](RpcClient::Result r) { result = r; });
  sim.RunUntil(kMinute);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_LT(result.elapsed, 100 * kMillisecond);
}

TEST(RpcTest, DeadServerExhaustsExponentialBackoff) {
  Simulator sim(1);
  SimNetwork net(&sim);
  const NodeId c = net.AddNode("client");
  const NodeId s = net.AddNode("server");
  RpcServer server(&sim, &net, s);
  server.set_down(true);
  RpcClient client(&sim, &net, c);
  RpcClient::Result result;
  client.Call(&server, 512, [&](RpcClient::Result r) { result = r; });
  sim.RunUntil(10 * kMinute);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, 8);  // initial + 7 retries
  // 0.5 + 1 + 2 + 4 + 8 + 16 + 32 + 64 = 127.5 s of waiting.
  EXPECT_NEAR(ToSeconds(result.elapsed), 127.5, 1.0);
}

TEST(RpcTest, RefusedConnectionBackoffTakesOverAMinute) {
  // Section 2.2.2: "recovering from a typing error can take over a minute"
  // — the SunRPC refused-connection schedule.
  Simulator sim(1);
  SimNetwork net(&sim);
  const NodeId c = net.AddNode("client");
  const NodeId s = net.AddNode("server");
  RpcServer server(&sim, &net, s);
  server.set_refuse_connections(true);
  RpcClient client(&sim, &net, c);
  bool ok = true;
  SimDuration elapsed = 0;
  client.Connect(&server, [&](bool o, SimDuration e) {
    ok = o;
    elapsed = e;
  });
  sim.RunUntil(10 * kMinute);
  EXPECT_FALSE(ok);
  EXPECT_GT(elapsed, 60 * kSecond);
  EXPECT_LT(elapsed, 70 * kSecond);
}

TEST(RpcTest, HealthyConnectIsOneRoundTrip) {
  Simulator sim(1);
  SimNetwork net(&sim);
  const NodeId c = net.AddNode("client");
  const NodeId s = net.AddNode("server");
  RpcServer server(&sim, &net, s);
  RpcClient client(&sim, &net, c);
  bool ok = false;
  SimDuration elapsed = 0;
  client.Connect(&server, [&](bool o, SimDuration e) {
    ok = o;
    elapsed = e;
  });
  sim.RunUntil(kMinute);
  EXPECT_TRUE(ok);
  EXPECT_LT(elapsed, 10 * kMillisecond);
}

// --- FileBrowser (the layering pathology) ---

struct BrowserFixture {
  Simulator sim{5};
  SimNetwork net{&sim};
  NodeId self;
  NodeId dns_node;
  NodeId server_node;
  std::unique_ptr<NameProvider> dns;
  std::unique_ptr<ParallelResolver> resolver;
  std::unique_ptr<RpcClient> rpc;
  std::unique_ptr<RpcServer> server;
  std::unique_ptr<FileBrowser> browser;

  BrowserFixture() {
    self = net.AddNode("desktop");
    dns_node = net.AddNode("dns");
    server_node = net.AddNode("fileserver");
    // The paper's 130 ms round-trip to the file server.
    LinkParams wan;
    wan.latency = 65 * kMillisecond;
    wan.jitter_sigma = 0.05;
    net.SetLinkBoth(self, server_node, wan);
    dns = std::make_unique<NameProvider>(&sim, &net, self, dns_node, "dns",
                                         NameProvider::Options{});
    dns->Register("fileserver", server_node);
    resolver = std::make_unique<ParallelResolver>(&sim);
    resolver->AddProvider(dns.get());
    rpc = std::make_unique<RpcClient>(&sim, &net, self);
    server = std::make_unique<RpcServer>(&sim, &net, server_node);
    browser = std::make_unique<FileBrowser>(&sim, &net, resolver.get(), rpc.get(), self);
    for (const auto& spec : DefaultFileProtocols()) {
      browser->AddProtocol(spec);
    }
  }
};

TEST(FileBrowserTest, HealthyOpenCompletesNearRoundTripTime) {
  BrowserFixture f;
  FileBrowser::Result result;
  f.browser->Open("fileserver", f.server.get(), [&](FileBrowser::Result r) { result = r; });
  f.sim.RunUntil(kMinute);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.resolved);
  // "a response from the file server usually arrives shortly after the
  //  130 ms round-trip time"
  EXPECT_LT(ToSeconds(result.elapsed), 1.0);
}

TEST(FileBrowserTest, DeadServerTakesOverAMinuteToReport) {
  BrowserFixture f;
  f.server->set_refuse_connections(true);
  FileBrowser::Result result;
  f.browser->Open("fileserver", f.server.get(), [&](FileBrowser::Result r) { result = r; });
  f.sim.RunUntil(10 * kMinute);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.resolved);
  // Failure is reported only after the most conservative layer (NFS's
  // SunRPC backoff) gives up: over a minute.
  EXPECT_GT(ToSeconds(result.elapsed), 60.0);
}

TEST(FileBrowserTest, UnresolvedNameFailsAfterResolverTimeouts) {
  BrowserFixture f;
  FileBrowser::Result result;
  result.success = true;
  f.browser->Open("tpyo", nullptr, [&](FileBrowser::Result r) { result = r; });
  f.sim.RunUntil(10 * kMinute);
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.resolved);
  EXPECT_GE(ToSeconds(result.elapsed), 9.9);  // DNS: 2 x 5 s
}

// --- HTTP ---

TEST(HttpTest, ServerHandlesLoadGeneratorRequests) {
  Simulator sim(9);
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer);
  KernelSubsystemsOptions sub_options;
  sub_options.lan_event_rate = 0;
  sub_options.console_activity_rate = 0;
  KernelSubsystems subsystems(&kernel, sub_options);
  LinuxSyscalls syscalls(&kernel);
  kernel.Boot();
  subsystems.Start();
  SimNetwork net(&sim);
  const NodeId server_node = net.AddNode("server");
  const NodeId client_node = net.AddNode("client");
  net.SetLinkBoth(server_node, client_node, LinkParams{});
  const Pid apache = sim.processes().AddProcess("apache2");
  TcpStack server_stack(&sim, &net, server_node, &kernel, kKernelPid);
  TcpStack client_stack(&sim, &net, client_node, nullptr, kKernelPid);
  HttpServer server(&kernel, &syscalls, &server_stack, apache, HttpServer::Options{},
                    &subsystems);
  TcpListener* listener = server.Start();

  HttpLoadGenerator::Options load;
  load.total_requests = 200;
  load.think_time_mean = 50 * kMillisecond;
  HttpLoadGenerator generator(&client_stack, listener, load);
  bool done = false;
  generator.Start([&] { done = true; });
  sim.RunUntil(5 * kMinute);
  EXPECT_TRUE(done);
  EXPECT_EQ(generator.completed(), 200u);
  EXPECT_EQ(generator.failed(), 0u);
  EXPECT_EQ(server.requests_served(), 200u);
}

TEST(HttpTest, ServerTraceContainsApacheAndTcpTimers) {
  Simulator sim(9);
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer);
  KernelSubsystemsOptions sub_options;
  sub_options.lan_event_rate = 0;
  sub_options.console_activity_rate = 0;
  KernelSubsystems subsystems(&kernel, sub_options);
  LinuxSyscalls syscalls(&kernel);
  kernel.Boot();
  subsystems.Start();
  SimNetwork net(&sim);
  const NodeId server_node = net.AddNode("server");
  const NodeId client_node = net.AddNode("client");
  net.SetLinkBoth(server_node, client_node, LinkParams{});
  const Pid apache = sim.processes().AddProcess("apache2");
  TcpStack server_stack(&sim, &net, server_node, &kernel, kKernelPid);
  TcpStack client_stack(&sim, &net, client_node, nullptr, kKernelPid);
  HttpServer server(&kernel, &syscalls, &server_stack, apache, HttpServer::Options{},
                    &subsystems);
  TcpListener* listener = server.Start();
  HttpLoadGenerator::Options load;
  load.total_requests = 50;
  load.think_time_mean = 20 * kMillisecond;
  HttpLoadGenerator generator(&client_stack, listener, load);
  generator.Start(nullptr);
  sim.RunUntil(kMinute);

  std::set<std::string> seen;
  for (const auto& r : buffer.records()) {
    if (r.op == TimerOp::kSet) {
      seen.insert(kernel.callsites().Name(r.callsite));
    }
  }
  for (const char* expected : {"apache2/event_loop", "apache2/socket_poll", "net/sockets",
                               "tcp/retransmit", "tcp/keepalive"}) {
    EXPECT_TRUE(seen.count(expected)) << "missing " << expected;
  }
}

}  // namespace
}  // namespace tempo

namespace tempo {
namespace {

TEST(VistaTcpWheelTest, PrivateWheelKeepsTcpOutOfTheTrace) {
  // The paper: Vista's TCP/IP stack was re-architected to use per-CPU
  // timing wheels, so TCP timers never appear in the KTIMER trace (and the
  // 7200 s keepalive is absent from the Vista webserver trace). A stack in
  // private-wheel mode must work — retransmissions included — while the
  // instrumented kernel records nothing for it.
  Simulator sim(3);
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer);  // stands in for the instrumented host
  kernel.Boot();
  const size_t baseline_records = buffer.records().size();
  SimNetwork net(&sim);
  const NodeId a = net.AddNode("a");
  const NodeId b = net.AddNode("b");
  LinkParams lossy;
  lossy.latency = kMillisecond;
  lossy.loss = 0.3;
  net.SetLinkBoth(a, b, lossy);
  TcpStack vista_stack(&sim, &net, a, &kernel, kKernelPid);
  vista_stack.UsePrivateWheel();
  TcpStack remote(&sim, &net, b, nullptr, kKernelPid);
  TcpListener* listener = remote.Listen();
  size_t received = 0;
  listener->on_accept = [&](TcpConnection* conn) {
    conn->on_data = [&](size_t bytes) { received += bytes; };
  };
  int acked = 0;
  vista_stack.Connect(listener, [&](TcpConnection* conn) {
    conn->Send(1000, [&] { ++acked; });
  }, nullptr);
  sim.RunUntil(5 * kMinute);
  EXPECT_EQ(acked, 1);
  EXPECT_EQ(received, 1000u);
  EXPECT_GT(vista_stack.wheel_services(), 0u);
  // Not one TCP timer record reached the instrumented interface: only the
  // timer structs allocated before the wheel took over (none here).
  size_t tcp_records = 0;
  for (size_t i = baseline_records; i < buffer.records().size(); ++i) {
    const auto& r = buffer.records()[i];
    const std::string& name = kernel.callsites().Name(r.callsite);
    if (name.rfind("tcp/", 0) == 0 || name.rfind("net/", 0) == 0) {
      ++tcp_records;
    }
  }
  EXPECT_EQ(tcp_records, 0u);
}

TEST(VistaTcpWheelTest, KernelModeDoesTraceTheSameExchange) {
  // Control: the identical exchange on a kernel-bound stack produces TCP
  // records — isolating the effect to the wheel binding.
  Simulator sim(3);
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer);
  kernel.Boot();
  SimNetwork net(&sim);
  const NodeId a = net.AddNode("a");
  const NodeId b = net.AddNode("b");
  net.SetLinkBoth(a, b, LinkParams{});
  TcpStack linux_stack(&sim, &net, a, &kernel, kKernelPid);
  TcpStack remote(&sim, &net, b, nullptr, kKernelPid);
  TcpListener* listener = remote.Listen();
  listener->on_accept = [](TcpConnection*) {};
  linux_stack.Connect(listener, [](TcpConnection* conn) { conn->Send(1000, nullptr); },
                      nullptr);
  sim.RunUntil(kMinute);
  size_t tcp_records = 0;
  for (const auto& r : buffer.records()) {
    const std::string& name = kernel.callsites().Name(r.callsite);
    if (name.rfind("tcp/", 0) == 0 || name.rfind("net/", 0) == 0) {
      ++tcp_records;
    }
  }
  EXPECT_GT(tcp_records, 0u);
}

}  // namespace
}  // namespace tempo
