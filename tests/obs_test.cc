// Unit tests for the obs self-metrics layer: registry uniqueness,
// histogram bucket boundaries and quantiles, probe behaviour, snapshot
// determinism under a virtual probe clock, and the three renderers.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "src/dispatcher/dispatcher.h"
#include "src/obs/metrics.h"
#include "src/obs/probe.h"
#include "src/obs/scrape_server.h"
#include "src/obs/snapshot.h"
#include "src/sim/simulator.h"
#include "src/timer/queue.h"

namespace tempo {
namespace {

using obs::Histogram;
using obs::Registry;

// Tests share the process-global registry with every other instrumented
// subsystem, so each test zeroes values first and asserts on deltas or on
// a private Registry instance.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::Global().Reset();
    obs::SetProbesEnabled(true);
    obs::SetProbeClock(nullptr);  // default wall clock
  }
  void TearDown() override {
    obs::SetProbesEnabled(true);
    obs::SetProbeClock(nullptr);
  }
};

// --- Registry ---

TEST_F(ObsTest, SameNameAndLabelsReturnsSameInstrument) {
  Registry reg;
  obs::Counter* a = reg.GetCounter("ops", {{"queue", "heap"}});
  obs::Counter* b = reg.GetCounter("ops", {{"queue", "heap"}});
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(b->value(), 3u);
}

TEST_F(ObsTest, LabelOrderDoesNotMatter) {
  Registry reg;
  obs::Counter* a = reg.GetCounter("ops", {{"queue", "heap"}, {"op", "set"}});
  obs::Counter* b = reg.GetCounter("ops", {{"op", "set"}, {"queue", "heap"}});
  EXPECT_EQ(a, b);
}

TEST_F(ObsTest, DifferentLabelsReturnDistinctInstruments) {
  Registry reg;
  obs::Counter* a = reg.GetCounter("ops", {{"queue", "heap"}});
  obs::Counter* b = reg.GetCounter("ops", {{"queue", "tree"}});
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.size(), 2u);
}

TEST_F(ObsTest, KindMismatchReturnsNull) {
  Registry reg;
  ASSERT_NE(reg.GetCounter("x"), nullptr);
  EXPECT_EQ(reg.GetGauge("x"), nullptr);
  EXPECT_EQ(reg.GetHistogram("x"), nullptr);
  // The original is untouched and still reachable.
  EXPECT_NE(reg.GetCounter("x"), nullptr);
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsInstruments) {
  Registry reg;
  obs::Counter* c = reg.GetCounter("c");
  obs::Histogram* h = reg.GetHistogram("h");
  c->Inc(7);
  h->Record(42);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.GetCounter("c"), c);  // same instrument, pointer-stable
}

// --- Histogram ---

TEST_F(ObsTest, BucketBoundariesArePowersOfTwo) {
  // 0 is its own bucket; then [1,2), [2,4), [4,8), ...
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // The top bucket absorbs the extreme range instead of overflowing.
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kBucketCount - 1);
  for (size_t i = 0; i < Histogram::kBucketCount - 1; ++i) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    const uint64_t hi = Histogram::BucketUpperBound(i);
    EXPECT_LT(lo, hi);
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "lower bound of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(hi - 1), i) << "upper bound of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(hi), i + 1);
  }
}

TEST_F(ObsTest, HistogramTracksCountSumMinMax) {
  Registry reg;
  Histogram* h = reg.GetHistogram("h");
  h->Record(10);
  h->Record(100);
  h->Record(1);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 111u);
  EXPECT_EQ(h->min(), 1u);
  EXPECT_EQ(h->max(), 100u);
  EXPECT_DOUBLE_EQ(h->mean(), 37.0);
}

TEST_F(ObsTest, SingleValueQuantilesAreExact) {
  Registry reg;
  Histogram* h = reg.GetHistogram("h");
  for (int i = 0; i < 1000; ++i) {
    h->Record(236);  // the paper's cycles/record
  }
  EXPECT_DOUBLE_EQ(h->Quantile(0.50), 236.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.90), 236.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.99), 236.0);
}

TEST_F(ObsTest, QuantilesRespectBucketResolution) {
  Registry reg;
  Histogram* h = reg.GetHistogram("h");
  // 90 fast ops in [8,16), 10 slow ops in [1024,2048).
  for (int i = 0; i < 90; ++i) {
    h->Record(10);
  }
  for (int i = 0; i < 10; ++i) {
    h->Record(1500);
  }
  // p50 lands in the fast bucket, p99 in the slow one; log-scale buckets
  // bound each estimate within a factor of two of the true value.
  EXPECT_GE(h->Quantile(0.50), 8.0);
  EXPECT_LT(h->Quantile(0.50), 16.0);
  EXPECT_GE(h->Quantile(0.99), 1024.0);
  EXPECT_LE(h->Quantile(0.99), 1500.0);
  EXPECT_EQ(h->Quantile(0.0), 10.0);   // clamped to observed min
  EXPECT_EQ(h->Quantile(1.0), 1500.0); // clamped to observed max
}

TEST_F(ObsTest, EmptyHistogramQuantileIsZero) {
  Registry reg;
  EXPECT_DOUBLE_EQ(reg.GetHistogram("h")->Quantile(0.99), 0.0);
}

// --- ScopedProbe ---

uint64_t g_test_cycles = 0;
uint64_t TestClock() { return g_test_cycles += 10; }

TEST_F(ObsTest, ProbeRecordsElapsedProbeClockCycles) {
  obs::SetProbeClock(&TestClock);
  Registry reg;
  Histogram* h = reg.GetHistogram("probe");
  {
    obs::ScopedProbe probe(h);  // start read, then end read: 10 cycles apart
  }
  ASSERT_EQ(h->count(), 1u);
  EXPECT_EQ(h->sum(), 10u);
}

TEST_F(ObsTest, DisabledProbesRecordNothing) {
  obs::SetProbeClock(&TestClock);
  Registry reg;
  Histogram* h = reg.GetHistogram("probe");
  obs::SetProbesEnabled(false);
  const uint64_t clock_before = g_test_cycles;
  {
    obs::ScopedProbe probe(h);
  }
  EXPECT_EQ(h->count(), 0u);
  // The disabled path must not even read the clock.
  EXPECT_EQ(g_test_cycles, clock_before);
}

TEST_F(ObsTest, NullHistogramProbeIsSafe) {
  obs::ScopedProbe probe(nullptr);  // e.g. a kind-mismatched Get
}

// --- Renderer escaping ---

// Prometheus exposition rules: backslash, double quote and newline in a
// label value must render as \\, \" and \n. A value like a Windows path
// ("C:\x") used to produce an unparseable exposition line.
TEST_F(ObsTest, PrometheusLabelValuesAreEscaped) {
  Registry reg;
  reg.GetCounter("esc_total", {{"path", "C:\\temp\\\"quoted\"\nline"}})->Inc(3);
  const obs::MetricsSnapshot snap = reg.TakeSnapshot();

  const std::string prom = obs::RenderPrometheus(snap);
  EXPECT_NE(prom.find("esc_total{path=\"C:\\\\temp\\\\\\\"quoted\\\"\\nline\"} 3"),
            std::string::npos)
      << prom;
  // No raw newline may survive inside the braces (it would split the line).
  const size_t brace = prom.find('{');
  ASSERT_NE(brace, std::string::npos);
  EXPECT_EQ(prom.find('\n', brace), prom.find("\"} 3\n") + 4) << prom;

  // The text renderer shares the labelled-name formatting.
  const std::string text = obs::RenderText(snap);
  EXPECT_NE(text.find("\\\\temp"), std::string::npos) << text;
  EXPECT_NE(text.find("\\n"), std::string::npos) << text;
}

// --- Snapshot determinism under the sim clock ---

// Runs a deterministic simulation exercising probed subsystems (timer
// queue + dispatcher + sim core) and returns the rendered snapshot.
std::string RunScenarioAndSnapshot() {
  Registry::Global().Reset();
  Simulator sim(42);
  InstallSimProbeClock(&sim);  // virtual time only: no wall-clock reads
  TimerQueueOptions queue_options;
  queue_options.name = "tree";
  auto queue = MakeTimerQueue(queue_options);
  for (int i = 0; i < 100; ++i) {
    const TimerHandle h = queue->Schedule(i * kMillisecond, [](TimerHandle) {});
    if (i % 3 == 0) {
      queue->Cancel(h);
    }
  }
  TemporalDispatcher dispatcher(&sim);
  DispatchTask* task = dispatcher.CreateTask("t");
  task->RunEvery(5 * kMillisecond, kMillisecond, [&queue, &sim] {
    queue->Advance(sim.Now());
  });
  sim.RunFor(200 * kMillisecond);
  InstallSimProbeClock(nullptr);
  const obs::MetricsSnapshot snap = Registry::Global().TakeSnapshot();
  return obs::RenderText(snap) + obs::RenderJson(snap) + obs::RenderPrometheus(snap);
}

TEST_F(ObsTest, SnapshotIsDeterministicUnderSimClock) {
  const std::string first = RunScenarioAndSnapshot();
  const std::string second = RunScenarioAndSnapshot();
  EXPECT_EQ(first, second);
  // And the scenario actually produced timer metrics, not an empty echo.
  EXPECT_NE(first.find("timer_ops{op=\"set\",queue=\"tree\"}"), std::string::npos);
  EXPECT_NE(first.find("dispatcher_batch_size"), std::string::npos);
}

// --- Instrumented subsystems report through the global registry ---

TEST_F(ObsTest, TimerQueueOpsAreCounted) {
  for (const std::string& name : TimerQueueNames()) {
    Registry::Global().Reset();
    TimerQueueOptions queue_options;
    queue_options.name = name;
    auto queue = MakeTimerQueue(queue_options);
    const TimerHandle a = queue->Schedule(kMillisecond, [](TimerHandle) {});
    queue->Schedule(2 * kMillisecond, [](TimerHandle) {});
    queue->Cancel(a);
    queue->Advance(10 * kMillisecond);
    const obs::MetricsSnapshot snap = Registry::Global().TakeSnapshot();
    const obs::SnapshotEntry* set =
        snap.Find("timer_ops", {{"op", "set"}, {"queue", name}});
    const obs::SnapshotEntry* cancel =
        snap.Find("timer_ops", {{"op", "cancel"}, {"queue", name}});
    const obs::SnapshotEntry* expire =
        snap.Find("timer_ops", {{"op", "expire"}, {"queue", name}});
    ASSERT_NE(set, nullptr) << name;
    ASSERT_NE(cancel, nullptr) << name;
    ASSERT_NE(expire, nullptr) << name;
    EXPECT_EQ(set->value, 2) << name;
    EXPECT_EQ(cancel->value, 1) << name;
    EXPECT_EQ(expire->value, 1) << name;
  }
}

TEST_F(ObsTest, DispatcherBatchingIsMeasured) {
  Simulator sim(7);
  TemporalDispatcher dispatcher(&sim);
  DispatchTask* a = dispatcher.CreateTask("a");
  DispatchTask* b = dispatcher.CreateTask("b");
  // Two cadences with generous slack collapse into shared wakeups.
  a->RunEvery(10 * kMillisecond, 8 * kMillisecond, [] {});
  b->RunEvery(10 * kMillisecond, 8 * kMillisecond, [] {});
  sim.RunFor(kSecond);
  const obs::MetricsSnapshot snap = Registry::Global().TakeSnapshot();
  const obs::SnapshotEntry* batch = snap.Find("dispatcher_batch_size");
  const obs::SnapshotEntry* dispatched = snap.Find("dispatcher_dispatched");
  ASSERT_NE(batch, nullptr);
  ASSERT_NE(dispatched, nullptr);
  EXPECT_GT(batch->count, 0u);
  EXPECT_EQ(batch->sum, static_cast<uint64_t>(dispatched->value));
  EXPECT_EQ(static_cast<uint64_t>(dispatched->value),
            dispatcher.dispatched());
}

TEST_F(ObsTest, SimulatorReportsEventsAndQueueDepth) {
  Simulator sim(1);
  for (int i = 0; i < 50; ++i) {
    sim.ScheduleAfter(i * kMillisecond, [] {});
  }
  sim.Run();
  const obs::MetricsSnapshot snap = Registry::Global().TakeSnapshot();
  const obs::SnapshotEntry* events = snap.Find("sim_events_executed");
  const obs::SnapshotEntry* hwm = snap.Find("sim_event_queue_depth_hwm");
  ASSERT_NE(events, nullptr);
  ASSERT_NE(hwm, nullptr);
  EXPECT_EQ(events->value, 50);
  EXPECT_EQ(hwm->value, 50);
}

// --- Renderers ---

TEST_F(ObsTest, RenderersAgreeOnValues) {
  Registry reg;
  reg.GetCounter("requests", {{"code", "200"}}, "Requests served")->Inc(5);
  reg.GetGauge("depth")->Set(-3);
  Histogram* h = reg.GetHistogram("latency", {}, "Op latency");
  h->Record(3);
  h->Record(5);
  const obs::MetricsSnapshot snap = reg.TakeSnapshot();

  const std::string text = obs::RenderText(snap);
  EXPECT_NE(text.find("requests{code=\"200\"}"), std::string::npos);
  EXPECT_NE(text.find("5"), std::string::npos);
  EXPECT_NE(text.find("-3"), std::string::npos);
  EXPECT_NE(text.find("count=2"), std::string::npos);

  const std::string json = obs::RenderJson(snap);
  EXPECT_NE(json.find("\"name\":\"requests\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"code\":\"200\"}"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\",\"count\":2,\"sum\":8"),
            std::string::npos);

  const std::string prom = obs::RenderPrometheus(snap);
  EXPECT_NE(prom.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(prom.find("requests_total{code=\"200\"} 5"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("depth -3"), std::string::npos);
  EXPECT_NE(prom.find("# HELP latency Op latency"), std::string::npos);
  EXPECT_NE(prom.find("latency_bucket{le=\"4\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("latency_bucket{le=\"8\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("latency_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("latency_sum 8"), std::string::npos);
  EXPECT_NE(prom.find("latency_count 2"), std::string::npos);
}

TEST_F(ObsTest, SnapshotOrderIsSortedAndStable) {
  Registry reg;
  reg.GetCounter("zebra");
  reg.GetCounter("alpha");
  reg.GetCounter("mid", {{"l", "b"}});
  reg.GetCounter("mid", {{"l", "a"}});
  const obs::MetricsSnapshot snap = reg.TakeSnapshot();
  ASSERT_EQ(snap.entries.size(), 4u);
  EXPECT_EQ(snap.entries[0].name, "alpha");
  EXPECT_EQ(snap.entries[1].name, "mid");
  EXPECT_EQ(snap.entries[1].labels[0].second, "a");
  EXPECT_EQ(snap.entries[2].labels[0].second, "b");
  EXPECT_EQ(snap.entries[3].name, "zebra");
}

// --- JSON label escaping ---

TEST_F(ObsTest, JsonLabelValuesAreEscaped) {
  Registry reg;
  // Backslashes, quotes, a newline, a tab and a raw control byte: every
  // class the JSON escaper must neutralise.
  reg.GetCounter("esc_total", {{"path", "C:\\temp\\\"quoted\"\nline\tcol\x01"}})
      ->Inc(3);
  const std::string json = obs::RenderJson(reg.TakeSnapshot());
  EXPECT_NE(json.find("C:\\\\temp\\\\\\\"quoted\\\"\\nline\\tcol\\u0001"),
            std::string::npos)
      << json;
  // No raw newline or control byte may survive: either would break a
  // strict JSON consumer.
  EXPECT_EQ(json.find('\n'), std::string::npos) << json;
  EXPECT_EQ(json.find('\x01'), std::string::npos) << json;
  EXPECT_EQ(json.find('\t'), std::string::npos) << json;
}

// --- the Prometheus text parser ---

TEST_F(ObsTest, ParsePrometheusTextReadsSamplesAndDecodesEscapes) {
  const std::string text =
      "# HELP ops Operations.\n"
      "# TYPE ops counter\n"
      "ops_total{queue=\"heap\",path=\"C:\\\\x\\n\\\"q\\\"\"} 42\n"
      "depth -3.5\n";
  std::vector<obs::PromSample> samples;
  std::string error;
  ASSERT_TRUE(obs::ParsePrometheusText(text, &samples, &error)) << error;
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "ops_total");
  ASSERT_EQ(samples[0].labels.size(), 2u);
  EXPECT_EQ(samples[0].labels[0].second, "heap");
  EXPECT_EQ(samples[0].labels[1].second, "C:\\x\n\"q\"");
  EXPECT_EQ(samples[0].value, 42.0);
  EXPECT_EQ(samples[1].name, "depth");
  EXPECT_EQ(samples[1].value, -3.5);
}

TEST_F(ObsTest, ParsePrometheusTextRejectsMalformedLines) {
  std::vector<obs::PromSample> samples;
  std::string error;
  EXPECT_FALSE(obs::ParsePrometheusText("ops{unclosed 3\n", &samples, &error));
  EXPECT_FALSE(obs::ParsePrometheusText("ops not-a-number\n", &samples, &error));
  EXPECT_FALSE(obs::ParsePrometheusText("{} 3\n", &samples, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

// --- the scrape endpoint ---

TEST_F(ObsTest, ScrapeServerServesParseableMetricsOverHttp) {
  Registry reg;
  reg.GetCounter("scrape_ops", {{"queue", "heap"}})->Inc(9);
  reg.GetGauge("scrape_depth")->Set(-4);
  const std::string rendered = obs::RenderPrometheus(reg.TakeSnapshot());
  obs::ScrapeServer server([&rendered] { return rendered; });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(
      obs::HttpGet("127.0.0.1", server.port(), "/metrics", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, rendered);

  // The served text must round-trip through a strict exposition parser —
  // the curl-equivalent proof the endpoint speaks real Prometheus.
  std::vector<obs::PromSample> samples;
  ASSERT_TRUE(obs::ParsePrometheusText(body, &samples, &error)) << error;
  bool found = false;
  for (const obs::PromSample& s : samples) {
    if (s.name == "scrape_ops_total" && !s.labels.empty() &&
        s.labels[0].second == "heap" && s.value == 9.0) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << body;
  server.Stop();
}

TEST_F(ObsTest, ScrapeServerSurvivesAnIdleClient) {
  obs::ScrapeServer::Options options;
  options.io_timeout_ms = 100;
  obs::ScrapeServer server([] { return std::string("x 1\n"); }, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  // Connect and send nothing. Without a receive timeout this parks the
  // serving thread in recv() forever and starves every later scrape.
  const int idle = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(idle, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(idle, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // A real scrape queued behind the idle client must still be answered.
  int status = 0;
  std::string body;
  ASSERT_TRUE(
      obs::HttpGet("127.0.0.1", server.port(), "/metrics", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "x 1\n");
  ::close(idle);
  server.Stop();
}

TEST_F(ObsTest, ScrapeServerAnswersHeadWithHeadersOnly) {
  // Prometheus and load balancers probe with HEAD; RFC 9110 says the
  // response carries the headers a GET would — Content-Length included —
  // with no body.
  const std::string rendered = "probe_ok 1\nprobe_depth -4\n";
  obs::ScrapeServer server([&rendered] { return rendered; });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  int status = 0;
  std::string headers;
  std::string body;
  ASSERT_TRUE(obs::HttpRequest("HEAD", "127.0.0.1", server.port(), "/metrics",
                               &status, &headers, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(body.empty()) << body;
  EXPECT_NE(headers.find("Content-Length: " + std::to_string(rendered.size())),
            std::string::npos)
      << headers;

  // And the GET the HEAD promised: the body whose size HEAD advertised,
  // still strict-exposition parseable.
  ASSERT_TRUE(
      obs::HttpGet("127.0.0.1", server.port(), "/metrics", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, rendered);
  std::vector<obs::PromSample> samples;
  ASSERT_TRUE(obs::ParsePrometheusText(body, &samples, &error)) << error;
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "probe_ok");
  server.Stop();
}

TEST_F(ObsTest, ScrapeServerRejectsOtherMethodsWithAllowHeader) {
  obs::ScrapeServer server([] { return std::string("x 1\n"); });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  for (const char* method : {"POST", "PUT", "DELETE"}) {
    int status = 0;
    std::string headers;
    std::string body;
    ASSERT_TRUE(obs::HttpRequest(method, "127.0.0.1", server.port(), "/metrics",
                                 &status, &headers, &body, &error))
        << method << ": " << error;
    EXPECT_EQ(status, 405) << method;
    EXPECT_NE(headers.find("Allow: GET, HEAD"), std::string::npos)
        << method << ": " << headers;
  }
  server.Stop();
}

TEST_F(ObsTest, ScrapeServerRejectsUnknownPaths) {
  obs::ScrapeServer server([] { return std::string("x 1\n"); });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  int status = 0;
  std::string body;
  ASSERT_TRUE(
      obs::HttpGet("127.0.0.1", server.port(), "/nope", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 404);
  server.Stop();
}

}  // namespace
}  // namespace tempo
