// Tests for the Linux timer-subsystem model: jiffies, the instrumented
// timer interface, dynticks/deferrable/round_jiffies, hrtimers, syscalls
// and the kernel subsystem clients.

#include <gtest/gtest.h>

#include <set>

#include "src/oslinux/jiffies.h"
#include "src/oslinux/kernel.h"
#include "src/oslinux/subsystems.h"
#include "src/oslinux/syscalls.h"
#include "src/oslinux/timer_stats.h"
#include "src/sim/simulator.h"
#include "src/trace/buffer.h"

namespace tempo {
namespace {

// Counts records of one op for one timer.
size_t CountOps(const std::vector<TraceRecord>& records, TimerOp op,
                TimerId timer = kInvalidTimerId) {
  size_t n = 0;
  for (const auto& r : records) {
    if (r.op == op && (timer == kInvalidTimerId || r.timer == timer)) {
      ++n;
    }
  }
  return n;
}

LinuxKernel::Options NoJitter() {
  LinuxKernel::Options options;
  options.max_set_jitter = 0;
  return options;
}

// --- jiffies.h ---

TEST(JiffiesTest, Basics) {
  EXPECT_EQ(kJiffy, 4 * kMillisecond);
  EXPECT_EQ(DurationToJiffies(0), 0u);
  EXPECT_EQ(DurationToJiffies(1), 1u);            // rounds up
  EXPECT_EQ(DurationToJiffies(4 * kMillisecond), 1u);
  EXPECT_EQ(DurationToJiffies(5 * kMillisecond), 2u);
  EXPECT_EQ(DurationToJiffies(kSecond), 250u);
  EXPECT_EQ(TimeToJiffies(4 * kMillisecond), 1u);  // rounds down
  EXPECT_EQ(TimeToJiffies(4 * kMillisecond - 1), 0u);
  EXPECT_EQ(JiffiesToTime(250), kSecond);
}

TEST(JiffiesTest, RoundJiffiesToWholeSecond) {
  EXPECT_EQ(RoundJiffies(0), 0u);
  EXPECT_EQ(RoundJiffies(250), 250u);   // already on a boundary
  EXPECT_EQ(RoundJiffies(251), 500u);
  EXPECT_EQ(RoundJiffies(499), 500u);
  EXPECT_EQ(RoundJiffiesRelative(100, 200), 300u);  // 200+100 -> 500; 500-200
}

// --- timer interface ---

class LinuxKernelTest : public ::testing::Test {
 protected:
  LinuxKernelTest() : kernel_(&sim_, &buffer_, NoJitter()) { kernel_.Boot(); }

  Simulator sim_{1};
  RelayBuffer buffer_;
  LinuxKernel kernel_;
};

TEST_F(LinuxKernelTest, InitTimerLogsInit) {
  LinuxTimer* t = kernel_.InitTimer("test/a", nullptr);
  EXPECT_EQ(CountOps(buffer_.records(), TimerOp::kInit, t->id), 1u);
  EXPECT_FALSE(kernel_.TimerPending(t));
}

TEST_F(LinuxKernelTest, ModTimerFiresAtJiffyBoundary) {
  SimTime fired_at = -1;
  LinuxTimer* t = kernel_.InitTimer("test/a", [&] { fired_at = sim_.Now(); });
  kernel_.ModTimerRelative(t, 10 * kMillisecond);
  sim_.RunUntil(kSecond);
  // 10 ms rounds up to 3 jiffies = 12 ms.
  EXPECT_EQ(fired_at, 12 * kMillisecond);
  EXPECT_EQ(CountOps(buffer_.records(), TimerOp::kExpire, t->id), 1u);
}

TEST_F(LinuxKernelTest, TimerNeverFiresEarly) {
  SimTime fired_at = -1;
  LinuxTimer* t = kernel_.InitTimer("test/a", [&] { fired_at = sim_.Now(); });
  for (SimDuration d = kMillisecond; d < 40 * kMillisecond; d += 3 * kMillisecond) {
    fired_at = -1;
    kernel_.ModTimerRelative(t, d);
    sim_.RunUntil(sim_.Now() + kSecond);
    ASSERT_GE(fired_at, d) << "timeout " << d;
  }
}

TEST_F(LinuxKernelTest, DelTimerCancelsAndLogs) {
  bool fired = false;
  LinuxTimer* t = kernel_.InitTimer("test/a", [&] { fired = true; });
  kernel_.ModTimerRelative(t, 100 * kMillisecond);
  EXPECT_TRUE(kernel_.DelTimer(t));
  sim_.RunUntil(kSecond);
  EXPECT_FALSE(fired);
  EXPECT_EQ(CountOps(buffer_.records(), TimerOp::kCancel, t->id), 1u);
}

TEST_F(LinuxKernelTest, RepeatedDeleteIsNoopButCounted) {
  LinuxTimer* t = kernel_.InitTimer("test/a", nullptr);
  kernel_.ModTimerRelative(t, 100 * kMillisecond);
  EXPECT_TRUE(kernel_.DelTimer(t));
  EXPECT_FALSE(kernel_.DelTimer(t));  // the paper saw these in traces
  EXPECT_FALSE(kernel_.DelTimer(t));
  EXPECT_EQ(kernel_.noop_deletes(), 2u);
  EXPECT_EQ(CountOps(buffer_.records(), TimerOp::kCancel, t->id), 1u);
}

TEST_F(LinuxKernelTest, ModTimerWhilePendingReArmsWithoutCancelRecord) {
  LinuxTimer* t = kernel_.InitTimer("test/a", nullptr);
  kernel_.ModTimerRelative(t, 100 * kMillisecond);
  kernel_.ModTimerRelative(t, 200 * kMillisecond);  // re-arm in place
  EXPECT_EQ(CountOps(buffer_.records(), TimerOp::kSet, t->id), 2u);
  EXPECT_EQ(CountOps(buffer_.records(), TimerOp::kCancel, t->id), 0u);
  sim_.RunUntil(kSecond);
  EXPECT_EQ(CountOps(buffer_.records(), TimerOp::kExpire, t->id), 1u);
}

TEST_F(LinuxKernelTest, ExpiredTimerCanBeReused) {
  int fired = 0;
  LinuxTimer* t = kernel_.InitTimer("test/a", [&] { ++fired; });
  kernel_.ModTimerRelative(t, 10 * kMillisecond);
  sim_.RunUntil(kSecond);
  kernel_.ModTimerRelative(t, 10 * kMillisecond);
  sim_.RunUntil(2 * kSecond);
  EXPECT_EQ(fired, 2);
}

TEST_F(LinuxKernelTest, CallbackMayReArmItself) {
  int fired = 0;
  LinuxTimer* t = kernel_.InitTimer("test/periodic", nullptr);
  t->function = [&] {
    ++fired;
    if (fired < 5) {
      kernel_.ModTimerRelative(t, 100 * kMillisecond);
    }
  };
  kernel_.ModTimerRelative(t, 100 * kMillisecond);
  sim_.RunUntil(10 * kSecond);
  EXPECT_EQ(fired, 5);
}

TEST_F(LinuxKernelTest, RoundJiffiesBatchesExpiry) {
  SimTime fired_at = -1;
  LinuxTimer* t = kernel_.InitTimer("test/a", [&] { fired_at = sim_.Now(); });
  sim_.RunUntil(100 * kMillisecond);  // now mid-second
  kernel_.ModTimerRelative(t, 300 * kMillisecond, /*round=*/true);
  sim_.RunUntil(3 * kSecond);
  // 0.1 s + 0.3 s = 0.4 s, rounded up to the whole second.
  EXPECT_EQ(fired_at, kSecond);
  // The record carries the rounded flag.
  bool saw_rounded = false;
  for (const auto& r : buffer_.records()) {
    if (r.op == TimerOp::kSet && r.timer == t->id) {
      saw_rounded = (r.flags & kFlagRounded) != 0;
    }
  }
  EXPECT_TRUE(saw_rounded);
}

TEST_F(LinuxKernelTest, ObservedTimeoutMatchesJiffyDelta) {
  LinuxTimer* t = kernel_.InitTimer("test/a", nullptr);
  sim_.RunUntil(5 * kMillisecond);
  kernel_.ModTimerRelative(t, 204 * kMillisecond);
  const TraceRecord* set = nullptr;
  for (const auto& r : buffer_.records()) {
    if (r.op == TimerOp::kSet && r.timer == t->id) {
      set = &r;
    }
  }
  ASSERT_NE(set, nullptr);
  // 204 ms = 51 jiffies exactly; expiry-timestamp jiffy delta must be 51.
  EXPECT_EQ(TimeToJiffies(set->expiry) - TimeToJiffies(set->timestamp), 51u);
  EXPECT_NE(set->flags & kFlagJiffyWheel, 0);
}

TEST(LinuxKernelJitterTest, JitterOnlyShrinksObservedValueWithinBound) {
  Simulator sim(7);
  RelayBuffer buffer;
  LinuxKernel::Options options;
  options.max_set_jitter = 2 * kMillisecond;
  options.jitter_probability = 1.0;
  LinuxKernel kernel(&sim, &buffer, options);
  kernel.Boot();
  LinuxTimer* t = kernel.InitTimer("test/a", nullptr);
  for (int i = 0; i < 50; ++i) {
    kernel.ModTimerRelative(t, 204 * kMillisecond);
  }
  for (const auto& r : buffer.records()) {
    if (r.op != TimerOp::kSet) {
      continue;
    }
    ASSERT_LE(r.timeout, 204 * kMillisecond);
    ASSERT_GE(r.timeout, 204 * kMillisecond - 2 * kMillisecond - static_cast<SimDuration>(kJiffy));
  }
}

TEST_F(LinuxKernelTest, PeriodicTickCountsInterrupts) {
  sim_.RunUntil(kSecond);
  // HZ=250: one second of ticking.
  EXPECT_EQ(kernel_.ticks_serviced(), 250u);
  EXPECT_GE(sim_.cpu().timer_interrupts(), 250u);
}

TEST(LinuxDynticksTest, IdleSkipsTicks) {
  Simulator sim(1);
  RelayBuffer buffer;
  LinuxKernel::Options options;
  options.dynticks = true;
  options.max_set_jitter = 0;
  LinuxKernel kernel(&sim, &buffer, options);
  kernel.Boot();
  LinuxTimer* t = kernel.InitTimer("test/slow", nullptr);
  kernel.ModTimerRelative(t, 10 * kSecond);
  sim.RunUntil(10 * kSecond);
  // Without dynticks this would be 2500 ticks.
  EXPECT_LT(kernel.ticks_serviced(), 10u);
  EXPECT_GT(kernel.ticks_skipped(), 2400u);
}

TEST(LinuxDynticksTest, NewNearTimerReprogramsParkedTick) {
  Simulator sim(1);
  RelayBuffer buffer;
  LinuxKernel::Options options;
  options.dynticks = true;
  options.max_set_jitter = 0;
  LinuxKernel kernel(&sim, &buffer, options);
  kernel.Boot();
  LinuxTimer* slow = kernel.InitTimer("test/slow", nullptr);
  kernel.ModTimerRelative(slow, 10 * kSecond);
  sim.RunUntil(kSecond);
  SimTime fired_at = -1;
  LinuxTimer* fast = kernel.InitTimer("test/fast", [&] { fired_at = sim.Now(); });
  kernel.ModTimerRelative(fast, 20 * kMillisecond);
  sim.RunUntil(2 * kSecond);
  EXPECT_EQ(fired_at, kSecond + 20 * kMillisecond);
}

TEST(LinuxDeferrableTest, DeferrableDoesNotWakeIdleCpu) {
  Simulator sim(1);
  RelayBuffer buffer;
  LinuxKernel::Options options;
  options.dynticks = true;
  options.max_set_jitter = 0;
  LinuxKernel kernel(&sim, &buffer, options);
  kernel.Boot();
  bool deferrable_fired = false;
  LinuxTimer* d = kernel.InitTimer("test/deferrable", [&] { deferrable_fired = true; },
                                   kKernelPid, 0, /*deferrable=*/true);
  kernel.ModTimerRelative(d, 100 * kMillisecond);
  LinuxTimer* hard = kernel.InitTimer("test/hard", nullptr);
  kernel.ModTimerRelative(hard, 5 * kSecond);
  sim.RunUntil(4 * kSecond);
  // The deferrable timer alone must not have woken the CPU...
  EXPECT_FALSE(deferrable_fired);
  sim.RunUntil(6 * kSecond);
  // ...but it runs when the hard timer's wakeup services the wheel.
  EXPECT_TRUE(deferrable_fired);
}

// --- hrtimers ---

TEST_F(LinuxKernelTest, HrTimerFiresAtExactNanosecond) {
  SimTime fired_at = -1;
  LinuxHrTimer* t = kernel_.InitHrTimer("test/hr", [&] { fired_at = sim_.Now(); });
  kernel_.StartHrTimer(t, 1234567);
  sim_.RunUntil(kSecond);
  EXPECT_EQ(fired_at, 1234567);
  // hrtimer records are flagged high-res.
  bool flagged = false;
  for (const auto& r : buffer_.records()) {
    if (r.timer == t->id && r.op == TimerOp::kSet) {
      flagged = (r.flags & kFlagHighRes) != 0;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST_F(LinuxKernelTest, HrTimerCancelAndRestart) {
  int fired = 0;
  LinuxHrTimer* t = kernel_.InitHrTimer("test/hr", [&] { ++fired; });
  kernel_.StartHrTimer(t, 10 * kMillisecond);
  EXPECT_TRUE(kernel_.CancelHrTimer(t));
  EXPECT_FALSE(kernel_.CancelHrTimer(t));
  sim_.RunUntil(kSecond);
  EXPECT_EQ(fired, 0);
  kernel_.StartHrTimer(t, 10 * kMillisecond);
  sim_.RunUntil(2 * kSecond);
  EXPECT_EQ(fired, 1);
}

// --- syscalls ---

class LinuxSyscallTest : public ::testing::Test {
 protected:
  LinuxSyscallTest() : kernel_(&sim_, &buffer_, NoJitter()), syscalls_(&kernel_) {
    kernel_.Boot();
    pid_ = sim_.processes().AddProcess("app");
    tid_ = sim_.processes().AddThread(pid_);
  }

  Simulator sim_{1};
  RelayBuffer buffer_;
  LinuxKernel kernel_;
  LinuxSyscalls syscalls_;
  Pid pid_ = 0;
  Tid tid_ = 0;
};

TEST_F(LinuxSyscallTest, SelectTimesOutWithZeroRemaining) {
  SelectChannel* ch = syscalls_.Channel(pid_, tid_, "app/select");
  SimDuration remaining = -1;
  bool timed_out = false;
  ch->Select(100 * kMillisecond, [&](SimDuration r, bool t) {
    remaining = r;
    timed_out = t;
  });
  EXPECT_TRUE(ch->blocked());
  sim_.RunUntil(kSecond);
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(remaining, 0);
  EXPECT_FALSE(ch->blocked());
}

TEST_F(LinuxSyscallTest, WakeWritesBackRemainingTime) {
  SelectChannel* ch = syscalls_.Channel(pid_, tid_, "app/select");
  SimDuration remaining = -1;
  bool timed_out = true;
  ch->Select(100 * kMillisecond, [&](SimDuration r, bool t) {
    remaining = r;
    timed_out = t;
  });
  sim_.ScheduleAt(30 * kMillisecond, [&] { ch->Wake(); });
  sim_.RunUntil(kSecond);
  EXPECT_FALSE(timed_out);
  // The kernel wrote back ~70 ms (the countdown semantics of Figure 4).
  EXPECT_EQ(remaining, 70 * kMillisecond);
}

TEST_F(LinuxSyscallTest, SelectRecordsAreUserFlaggedAndExact) {
  SelectChannel* ch = syscalls_.Channel(pid_, tid_, "app/select");
  ch->Select(FromMilliseconds(499.9), [](SimDuration, bool) {});
  const TraceRecord* set = nullptr;
  for (const auto& r : buffer_.records()) {
    if (r.op == TimerOp::kSet) {
      set = &r;
    }
  }
  ASSERT_NE(set, nullptr);
  EXPECT_TRUE(set->is_user());
  EXPECT_EQ(set->pid, pid_);
  // Syscall values are logged exactly as supplied, no jitter (Section 3.1).
  EXPECT_EQ(set->timeout, FromMilliseconds(499.9));
}

TEST_F(LinuxSyscallTest, InfiniteSelectArmsNoTimer) {
  SelectChannel* ch = syscalls_.Channel(pid_, tid_, "app/select");
  const size_t sets_before = CountOps(buffer_.records(), TimerOp::kSet);
  bool woke = false;
  ch->Select(kNeverTime, [&](SimDuration, bool timed_out) {
    EXPECT_FALSE(timed_out);
    woke = true;
  });
  EXPECT_EQ(CountOps(buffer_.records(), TimerOp::kSet), sets_before);
  sim_.ScheduleAt(kSecond, [&] { ch->Wake(); });
  sim_.RunUntil(2 * kSecond);
  EXPECT_TRUE(woke);
}

TEST_F(LinuxSyscallTest, WakeWithoutBlockFails) {
  SelectChannel* ch = syscalls_.Channel(pid_, tid_, "app/select");
  EXPECT_FALSE(ch->Wake());
}

TEST_F(LinuxSyscallTest, ChannelIsStablePerThread) {
  SelectChannel* a = syscalls_.Channel(pid_, tid_, "app/select");
  SelectChannel* b = syscalls_.Channel(pid_, tid_, "app/select");
  EXPECT_EQ(a, b);
  const Tid other = sim_.processes().AddThread(pid_);
  EXPECT_NE(a, syscalls_.Channel(pid_, other, "app/select"));
}

TEST_F(LinuxSyscallTest, NanosleepCompletesAfterDuration) {
  SimTime done_at = -1;
  syscalls_.Nanosleep(pid_, tid_, "app/sleep", 50 * kMillisecond,
                      [&] { done_at = sim_.Now(); });
  sim_.RunUntil(kSecond);
  EXPECT_GE(done_at, 50 * kMillisecond);
  EXPECT_LE(done_at, 50 * kMillisecond + kJiffy);
}

TEST_F(LinuxSyscallTest, AlarmDeliversAndZeroCancels) {
  int signals = 0;
  syscalls_.Alarm(pid_, "app/alarm", 2 * kSecond, [&] { ++signals; });
  sim_.RunUntil(3 * kSecond);
  EXPECT_EQ(signals, 1);
  syscalls_.Alarm(pid_, "app/alarm", 2 * kSecond, [&] { ++signals; });
  sim_.RunUntil(4 * kSecond);
  syscalls_.Alarm(pid_, "app/alarm", 0, nullptr);  // alarm(0) cancels
  sim_.RunUntil(10 * kSecond);
  EXPECT_EQ(signals, 1);
}

TEST_F(LinuxSyscallTest, PosixIntervalTimerRepeats) {
  int fired = 0;
  PosixTimer* t = syscalls_.TimerCreate(pid_, "app/posix", [&] { ++fired; });
  t->Settime(100 * kMillisecond, 200 * kMillisecond);
  sim_.RunUntil(kSecond + 50 * kMillisecond);
  // Fires at 0.1, 0.3, 0.5, 0.7, 0.9.
  EXPECT_EQ(fired, 5);
  t->Settime(0, 0);  // disarm
  sim_.RunUntil(3 * kSecond);
  EXPECT_EQ(fired, 5);
}

// --- subsystems ---

TEST(LinuxSubsystemsTest, PeriodicTimersProduceExpectedCallsites) {
  Simulator sim(1);
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer, NoJitter());
  KernelSubsystemsOptions options;
  options.block_io_rate = 2.0;
  KernelSubsystems subsystems(&kernel, options);
  kernel.Boot();
  subsystems.Start();
  sim.RunUntil(30 * kSecond);

  std::set<std::string> seen;
  for (const auto& r : buffer.records()) {
    if (r.op == TimerOp::kSet) {
      seen.insert(kernel.callsites().Name(r.callsite));
    }
  }
  for (const char* expected :
       {"kernel/workqueue_timer", "kernel/workqueue", "mm/writeback", "usb/hc_status_poll",
        "time/clocksource_watchdog", "net/e1000_watchdog", "net/arp_periodic",
        "net/arp_cache_flush", "tty/console_blank", "block/unplug_timeout",
        "ide/command_timeout"}) {
    EXPECT_TRUE(seen.count(expected)) << "missing " << expected;
  }
}

TEST(LinuxSubsystemsTest, UsbPollRunsAt248ms) {
  Simulator sim(1);
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer, NoJitter());
  KernelSubsystemsOptions options;
  options.lan_event_rate = 0;
  options.console_activity_rate = 0;
  KernelSubsystems subsystems(&kernel, options);
  kernel.Boot();
  subsystems.Start();
  sim.RunUntil(62 * kSecond);
  size_t usb_expiries = 0;
  for (const auto& r : buffer.records()) {
    if (r.op == TimerOp::kExpire &&
        kernel.callsites().Name(r.callsite) == "usb/hc_status_poll") {
      ++usb_expiries;
    }
  }
  // 62 s / 0.248 s = 250 expiries.
  EXPECT_NEAR(static_cast<double>(usb_expiries), 250.0, 2.0);
}

TEST(LinuxSubsystemsTest, BlockIoArmsAndCancelsUnplugTimer) {
  Simulator sim(1);
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer, NoJitter());
  KernelSubsystemsOptions options;
  options.workqueue_1s = options.workqueue_2s = options.writeback_5s = false;
  options.usb_poll = options.clocksource_watchdog = options.e1000_watchdog = false;
  options.arp = options.console_blank = false;
  options.lan_event_rate = 0;
  KernelSubsystems subsystems(&kernel, options);
  kernel.Boot();
  subsystems.Start();
  for (int i = 0; i < 20; ++i) {
    // Mid-jiffy submission: the 1-jiffy unplug timeout then races the
    // queue-unplug completion, as it does on a live system.
    sim.ScheduleAt(i * kSecond + kMillisecond, [&] { subsystems.SubmitBlockIo(); });
  }
  sim.RunUntil(30 * kSecond);
  size_t sets = 0;
  size_t cancels = 0;
  for (const auto& r : buffer.records()) {
    if (kernel.callsites().Name(r.callsite) == "block/unplug_timeout") {
      sets += r.op == TimerOp::kSet ? 1 : 0;
      cancels += r.op == TimerOp::kCancel ? 1 : 0;
    }
  }
  EXPECT_EQ(sets, 20u);
  EXPECT_GT(cancels, 0u);
}

}  // namespace
}  // namespace tempo

namespace tempo {
namespace {

TEST(TimerStatsTest, CountsArmingOperationsPerOrigin) {
  Simulator sim(1);
  TimerStatsCollector stats;
  RelayBuffer buffer;
  TeeSink tee;
  tee.Add(&buffer);
  tee.Add(&stats);
  LinuxKernel::Options opts;
  opts.max_set_jitter = 0;
  LinuxKernel kernel(&sim, &tee, opts);
  kernel.Boot();
  stats.Enable(sim.Now());

  LinuxTimer* fast = kernel.InitTimer("net/busy", nullptr);
  fast->function = [&] { kernel.ModTimerRelative(fast, 100 * kMillisecond); };
  kernel.ModTimerRelative(fast, 100 * kMillisecond);
  LinuxTimer* slow = kernel.InitTimer("mm/slow", nullptr);
  slow->function = [&] { kernel.ModTimerRelative(slow, kSecond); };
  kernel.ModTimerRelative(slow, kSecond);
  sim.RunUntil(10 * kSecond);
  stats.Disable(sim.Now());

  const auto rows = stats.Rows();
  ASSERT_EQ(rows.size(), 2u);
  // Sorted by count, descending: the 100 ms timer first.
  EXPECT_EQ(kernel.callsites().Name(rows[0].callsite), "net/busy");
  EXPECT_NEAR(static_cast<double>(rows[0].count), 100.0, 2.0);
  EXPECT_NEAR(static_cast<double>(rows[1].count), 10.0, 1.0);
  // The classic report format mentions origin and totals.
  const std::string report = stats.Report(kernel.callsites());
  EXPECT_NE(report.find("net/busy"), std::string::npos);
  EXPECT_NE(report.find("Sample period"), std::string::npos);
  // And the full trace still reached the study's buffer through the tee.
  EXPECT_GT(buffer.records().size(), 200u);
}

TEST(TimerStatsTest, DisabledCollectorCountsNothing) {
  Simulator sim(1);
  TimerStatsCollector stats;
  LinuxKernel kernel(&sim, &stats);
  kernel.Boot();
  LinuxTimer* t = kernel.InitTimer("a/b", nullptr);
  kernel.ModTimerRelative(t, kSecond);
  sim.RunUntil(2 * kSecond);
  EXPECT_EQ(stats.total_events(), 0u);
  EXPECT_TRUE(stats.Rows().empty());
}

TEST(TimerStatsTest, CannotObserveDurationsOrCancellations) {
  // The paper's point: timer_stats sees arming frequency only. A timer
  // that is always canceled instantly and one that always expires look
  // identical in the report.
  Simulator sim(1);
  TimerStatsCollector stats;
  LinuxKernel kernel(&sim, &stats);
  kernel.Boot();
  stats.Enable(sim.Now());
  LinuxTimer* canceled = kernel.InitTimer("x/canceled", nullptr);
  LinuxTimer* expires = kernel.InitTimer("x/expires", nullptr);
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(i * kSecond, [&] {
      kernel.ModTimerRelative(canceled, 30 * kSecond);
      kernel.DelTimer(canceled);
      kernel.ModTimerRelative(expires, 100 * kMillisecond);
    });
  }
  sim.RunUntil(kMinute);
  const auto rows = stats.Rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].count, rows[1].count);  // indistinguishable
}

}  // namespace
}  // namespace tempo
