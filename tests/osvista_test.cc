// Tests for the Vista timer model: KTIMER semantics, clock-interrupt
// quantisation, thread waits, and the user-level timer stack.

#include <gtest/gtest.h>

#include <set>

#include "src/osvista/kernel.h"
#include "src/osvista/userapi.h"
#include "src/sim/simulator.h"
#include "src/trace/buffer.h"

namespace tempo {
namespace {

size_t CountOps(const std::vector<TraceRecord>& records, TimerOp op) {
  size_t n = 0;
  for (const auto& r : records) {
    if (r.op == op) {
      ++n;
    }
  }
  return n;
}

class VistaKernelTest : public ::testing::Test {
 protected:
  VistaKernelTest() : kernel_(&sim_, &session_) { kernel_.Boot(); }

  Simulator sim_{1};
  EtwSession session_;
  VistaKernel kernel_;
};

TEST_F(VistaKernelTest, TimerFiresOnClockInterrupt) {
  SimTime fired_at = -1;
  KTimer* t = kernel_.AllocateTimer("test/a", kKernelPid, 0, [&] { fired_at = sim_.Now(); });
  kernel_.KeSetTimer(t, 20 * kMillisecond);
  sim_.RunUntil(kSecond);
  // Delivered on the first clock interrupt at/after the due time: the tick
  // grid is 15.625 ms, so 20 ms is processed at 31.25 ms.
  EXPECT_EQ(fired_at, 31250 * kMicrosecond);
}

TEST_F(VistaKernelTest, SubTickTimeoutDeliveredLate) {
  // The paper's point about sub-millisecond Vista timers: a 1 ms timeout is
  // delivered at the next 15.6 ms interrupt — over 1500% of its duration.
  SimTime fired_at = -1;
  KTimer* t = kernel_.AllocateTimer("test/a", kKernelPid, 0, [&] { fired_at = sim_.Now(); });
  kernel_.KeSetTimer(t, kMillisecond);
  sim_.RunUntil(kSecond);
  EXPECT_EQ(fired_at, 15625 * kMicrosecond);
}

TEST_F(VistaKernelTest, CancelBeforeExpiry) {
  bool fired = false;
  KTimer* t = kernel_.AllocateTimer("test/a", kKernelPid, 0, [&] { fired = true; });
  kernel_.KeSetTimer(t, 100 * kMillisecond);
  EXPECT_TRUE(kernel_.KeCancelTimer(t));
  EXPECT_FALSE(kernel_.KeCancelTimer(t));  // already canceled
  sim_.RunUntil(kSecond);
  EXPECT_FALSE(fired);
  EXPECT_EQ(CountOps(session_.records(), TimerOp::kCancel), 1u);
}

TEST_F(VistaKernelTest, ReSetWhilePendingProducesNoCancelRecord) {
  KTimer* t = kernel_.AllocateTimer("test/a", kKernelPid, 0, nullptr);
  kernel_.KeSetTimer(t, 100 * kMillisecond);
  kernel_.KeSetTimer(t, 200 * kMillisecond);
  EXPECT_EQ(CountOps(session_.records(), TimerOp::kSet), 2u);
  EXPECT_EQ(CountOps(session_.records(), TimerOp::kCancel), 0u);
  sim_.RunUntil(kSecond);
  EXPECT_EQ(CountOps(session_.records(), TimerOp::kExpire), 1u);
}

TEST_F(VistaKernelTest, DynamicAllocationAliasesRecycledIdentity) {
  // Trace identity is the storage address: freed KTIMERs are recycled, so
  // sequential logical timeouts alias one identity — while two LIVE timers
  // never share one. This is the instrumentation headache of Section 3.3;
  // kFlagDynamicAlloc marks the records so analysis clusters by call-site.
  std::set<TimerId> sequential_ids;
  for (int i = 0; i < 5; ++i) {
    KTimer* t = kernel_.AllocateTimer("afd/select", 1, 1, nullptr, /*dynamic=*/true);
    kernel_.KeSetTimer(t, 10 * kMillisecond);
    sequential_ids.insert(t->id);
    kernel_.KeCancelTimer(t);
    kernel_.FreeTimer(t);
  }
  EXPECT_EQ(sequential_ids.size(), 1u);  // storage (= identity) reused

  std::set<TimerId> live_ids;
  std::vector<KTimer*> live;
  for (int i = 0; i < 5; ++i) {
    KTimer* t = kernel_.AllocateTimer("afd/select", 1, 1, nullptr, /*dynamic=*/true);
    live.push_back(t);
    live_ids.insert(t->id);
  }
  EXPECT_EQ(live_ids.size(), 5u);  // concurrent timers are distinct
  for (KTimer* t : live) {
    kernel_.FreeTimer(t);
  }
  for (const auto& r : session_.records()) {
    EXPECT_NE(r.flags & kFlagDynamicAlloc, 0);
  }
}

TEST_F(VistaKernelTest, FreeTimerCancelsSilently) {
  bool fired = false;
  KTimer* t = kernel_.AllocateTimer("test/a", kKernelPid, 0, [&] { fired = true; });
  kernel_.KeSetTimer(t, 100 * kMillisecond);
  const size_t cancels = CountOps(session_.records(), TimerOp::kCancel);
  kernel_.FreeTimer(t);
  sim_.RunUntil(kSecond);
  EXPECT_FALSE(fired);
  EXPECT_EQ(CountOps(session_.records(), TimerOp::kCancel), cancels);
}

TEST_F(VistaKernelTest, WaitTimesOutAndLogsBlockUnblock) {
  bool satisfied = true;
  kernel_.BlockThread(1, 1, "app/wait", 50 * kMillisecond, [&](bool s) { satisfied = s; });
  sim_.RunUntil(kSecond);
  EXPECT_FALSE(satisfied);
  ASSERT_EQ(CountOps(session_.records(), TimerOp::kBlock), 1u);
  ASSERT_EQ(CountOps(session_.records(), TimerOp::kUnblock), 1u);
  for (const auto& r : session_.records()) {
    if (r.op == TimerOp::kUnblock) {
      EXPECT_EQ(r.flags & kFlagWaitSatisfied, 0);
      EXPECT_EQ(r.timeout, 50 * kMillisecond);
    }
  }
}

TEST_F(VistaKernelTest, SignaledWaitIsSatisfied) {
  bool satisfied = false;
  SimTime woke_at = -1;
  VistaKernel::Wait* wait =
      kernel_.BlockThread(1, 1, "app/wait", 500 * kMillisecond, [&](bool s) {
        satisfied = s;
        woke_at = sim_.Now();
      });
  sim_.ScheduleAt(100 * kMillisecond, [&] { EXPECT_TRUE(kernel_.Signal(wait)); });
  sim_.RunUntil(kSecond);
  EXPECT_TRUE(satisfied);
  EXPECT_EQ(woke_at, 100 * kMillisecond);
  EXPECT_FALSE(kernel_.Signal(wait));  // already complete
  bool flagged = false;
  for (const auto& r : session_.records()) {
    if (r.op == TimerOp::kUnblock) {
      flagged = (r.flags & kFlagWaitSatisfied) != 0;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST_F(VistaKernelTest, InfiniteWaitOnlySignalable) {
  bool woke = false;
  VistaKernel::Wait* wait =
      kernel_.BlockThread(1, 1, "app/wait", kNeverTime, [&](bool) { woke = true; });
  sim_.RunUntil(10 * kSecond);
  EXPECT_FALSE(woke);
  kernel_.Signal(wait);
  EXPECT_TRUE(woke);
}

TEST_F(VistaKernelTest, WaitTimerIdentityIsStablePerThread) {
  // The per-thread wait KTIMER is the stable exception to Vista's dynamic
  // allocation.
  kernel_.BlockThread(1, 1, "app/wait", 10 * kMillisecond, nullptr);
  sim_.RunUntil(kSecond);
  kernel_.BlockThread(1, 1, "app/wait", 10 * kMillisecond, nullptr);
  sim_.RunUntil(2 * kSecond);
  std::set<TimerId> ids;
  for (const auto& r : session_.records()) {
    if (r.op == TimerOp::kBlock) {
      ids.insert(r.timer);
    }
  }
  EXPECT_EQ(ids.size(), 1u);
}

TEST(VistaCoalescingTest, IdleTicksAreSkipped) {
  Simulator sim(1);
  EtwSession session;
  VistaKernel::Options options;
  options.coalesce_ticks = true;
  VistaKernel kernel(&sim, &session, options);
  kernel.Boot();
  sim.RunUntil(10 * kSecond);
  const uint64_t idle_interrupts = kernel.clock_interrupts();
  // Uncoalesced would be 640 interrupts over 10 s.
  EXPECT_LT(idle_interrupts, 100u);
  EXPECT_GT(kernel.ticks_coalesced(), 0u);
}

TEST(VistaCoalescingTest, NearTimerPullsInterruptForward) {
  Simulator sim(1);
  EtwSession session;
  VistaKernel::Options options;
  options.coalesce_ticks = true;
  VistaKernel kernel(&sim, &session, options);
  kernel.Boot();
  sim.RunUntil(kSecond);
  SimTime fired_at = -1;
  KTimer* t = kernel.AllocateTimer("test/a", kKernelPid, 0, [&] { fired_at = sim.Now(); });
  kernel.KeSetTimer(t, 30 * kMillisecond);
  sim.RunUntil(2 * kSecond);
  ASSERT_GE(fired_at, kSecond + 30 * kMillisecond);
  EXPECT_LE(fired_at, kSecond + 30 * kMillisecond + 2 * kVistaClockTick);
}

// --- user API ---

class VistaUserApiTest : public ::testing::Test {
 protected:
  VistaUserApiTest() : kernel_(&sim_, &session_), api_(&kernel_) { kernel_.Boot(); }

  Simulator sim_{1};
  EtwSession session_;
  VistaKernel kernel_;
  VistaUserApi api_;
};

TEST_F(VistaUserApiTest, NtTimerPeriodicFiresRepeatedly) {
  int fired = 0;
  NtTimer* t = api_.NtCreateTimer(1, 1, "app/nt_timer", [&] { ++fired; });
  t->Set(100 * kMillisecond, 100 * kMillisecond);
  sim_.RunUntil(kSecond);
  EXPECT_GE(fired, 8);
  t->Cancel();
  const int at_cancel = fired;
  sim_.RunUntil(2 * kSecond);
  EXPECT_EQ(fired, at_cancel);
}

TEST_F(VistaUserApiTest, ThreadpoolMultiplexesOverOneKernelTimer) {
  ThreadpoolPool* pool = api_.CreatePool(1, 1, "app");
  int a = 0;
  int b = 0;
  pool->CreateTimer([&] { ++a; })->Set(50 * kMillisecond);
  pool->CreateTimer([&] { ++b; })->Set(120 * kMillisecond);
  sim_.RunUntil(kSecond);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  // All kernel sets came from the single pool timer.
  std::set<TimerId> set_ids;
  for (const auto& r : session_.records()) {
    if (r.op == TimerOp::kSet) {
      set_ids.insert(r.timer);
    }
  }
  EXPECT_EQ(set_ids.size(), 1u);
}

TEST_F(VistaUserApiTest, ThreadpoolPeriodicTimer) {
  ThreadpoolPool* pool = api_.CreatePool(1, 1, "app");
  int fired = 0;
  ThreadpoolTimer* t = pool->CreateTimer([&] { ++fired; });
  t->Set(100 * kMillisecond, 100 * kMillisecond);
  sim_.RunUntil(kSecond);
  EXPECT_GE(fired, 8);
  t->Cancel();
  const int at_cancel = fired;
  sim_.RunUntil(2 * kSecond);
  EXPECT_EQ(fired, at_cancel);
}

TEST_F(VistaUserApiTest, GuiTimerIsPeriodicWithDispatchLatency) {
  MessageQueue* queue = api_.CreateMessageQueue(1, 1, "app");
  std::vector<SimTime> fires;
  const uint32_t id = queue->SetTimer(100 * kMillisecond,
                                      [&] { fires.push_back(sim_.Now()); });
  sim_.RunUntil(kSecond);
  EXPECT_GE(fires.size(), 7u);
  // WM_TIMER dispatch adds latency beyond the kernel expiry.
  for (size_t i = 0; i < fires.size(); ++i) {
    EXPECT_GT(fires[i], static_cast<SimTime>(i + 1) * 100 * kMillisecond);
  }
  EXPECT_TRUE(queue->KillTimer(id));
  EXPECT_FALSE(queue->KillTimer(id));
  const size_t at_kill = fires.size();
  sim_.RunUntil(2 * kSecond);
  EXPECT_LE(fires.size(), at_kill + 1);  // at most one already-queued message
}

TEST_F(VistaUserApiTest, GuiTimerClampsToUserTimerMinimum) {
  MessageQueue* queue = api_.CreateMessageQueue(1, 1, "app");
  int fired = 0;
  queue->SetTimer(kMillisecond, [&] { ++fired; });  // clamped to 10 ms
  sim_.RunUntil(kSecond);
  // At 1 ms this would approach 1000 fires; clamped + tick-quantised it is
  // bounded by 1s / 15.6ms = 64.
  EXPECT_LE(fired, 70);
  EXPECT_GE(fired, 30);
}

TEST_F(VistaUserApiTest, AfdSelectTimesOut) {
  bool timed_out = false;
  api_.Select(1, 1, "app/select", 50 * kMillisecond, [&](bool t) { timed_out = t; });
  sim_.RunUntil(kSecond);
  EXPECT_TRUE(timed_out);
}

TEST_F(VistaUserApiTest, AfdSelectCompleteCancelsTimer) {
  bool timed_out = true;
  AfdSelect* select =
      api_.Select(1, 1, "app/select", 500 * kMillisecond, [&](bool t) { timed_out = t; });
  sim_.ScheduleAt(10 * kMillisecond, [&] { EXPECT_TRUE(select->Complete()); });
  sim_.RunUntil(kSecond);
  EXPECT_FALSE(timed_out);
  EXPECT_EQ(CountOps(session_.records(), TimerOp::kCancel), 1u);
}

TEST_F(VistaUserApiTest, AfdSelectsAreDynamicAllocRecords) {
  for (int i = 0; i < 4; ++i) {
    api_.Select(1, 1, "app/select", 10 * kMillisecond, nullptr);
    sim_.RunUntil(sim_.Now() + 100 * kMillisecond);
  }
  // Every afd select timer record is flagged as dynamically allocated, so
  // the analysis never trusts its identity.
  size_t sets = 0;
  for (const auto& r : session_.records()) {
    if (r.op == TimerOp::kSet) {
      ++sets;
      EXPECT_NE(r.flags & kFlagDynamicAlloc, 0);
    }
  }
  EXPECT_EQ(sets, 4u);
}

TEST_F(VistaUserApiTest, SleepCompletes) {
  SimTime woke = -1;
  api_.Sleep(1, 1, "app/sleep", 100 * kMillisecond, [&] { woke = sim_.Now(); });
  sim_.RunUntil(kSecond);
  EXPECT_GE(woke, 100 * kMillisecond);
  EXPECT_LE(woke, 100 * kMillisecond + 2 * kVistaClockTick);
}

}  // namespace
}  // namespace tempo

namespace tempo {
namespace {

TEST(VistaResolutionTest, BeginTimerResolutionRaisesTickRate) {
  Simulator sim(1);
  EtwSession session;
  VistaKernel kernel(&sim, &session);
  kernel.Boot();
  EXPECT_EQ(kernel.effective_tick(), kVistaClockTick);
  // A multimedia app requests 1 ms resolution (timeBeginPeriod(1)).
  kernel.BeginTimerResolution(kMillisecond);
  EXPECT_EQ(kernel.effective_tick(), kMillisecond);
  SimTime fired_at = -1;
  KTimer* t = kernel.AllocateTimer("mm/frame", 1, 1, [&] { fired_at = sim.Now(); });
  sim.RunUntil(100 * kMillisecond);
  kernel.KeSetTimer(t, 2 * kMillisecond);
  sim.RunUntil(kSecond);
  // Delivered on the 1 ms grid instead of waiting for a 15.6 ms interrupt.
  ASSERT_GE(fired_at, 102 * kMillisecond);
  EXPECT_LE(fired_at, 103 * kMillisecond + kMillisecond);
}

TEST(VistaResolutionTest, EndTimerResolutionRestoresDefault) {
  Simulator sim(1);
  EtwSession session;
  VistaKernel kernel(&sim, &session);
  kernel.Boot();
  kernel.BeginTimerResolution(kMillisecond);
  kernel.BeginTimerResolution(4 * kMillisecond);
  EXPECT_EQ(kernel.effective_tick(), kMillisecond);
  kernel.EndTimerResolution(kMillisecond);
  EXPECT_EQ(kernel.effective_tick(), 4 * kMillisecond);
  kernel.EndTimerResolution(4 * kMillisecond);
  EXPECT_EQ(kernel.effective_tick(), kVistaClockTick);
}

TEST(VistaResolutionTest, FloorAtOneMillisecond) {
  Simulator sim(1);
  EtwSession session;
  VistaKernel kernel(&sim, &session);
  kernel.BeginTimerResolution(10 * kMicrosecond);
  EXPECT_EQ(kernel.effective_tick(), kMillisecond);
}

TEST(VistaResolutionTest, BoostCostsInterrupts) {
  // The price of timeBeginPeriod(1): ~16x the clock interrupts — the CPU
  // overhead the paper attributes to timer facilities under multimedia
  // load.
  auto interrupts_with = [](bool boost) {
    Simulator sim(1);
    EtwSession session;
    VistaKernel kernel(&sim, &session);
    kernel.Boot();
    if (boost) {
      kernel.BeginTimerResolution(kMillisecond);
    }
    sim.RunUntil(10 * kSecond);
    return kernel.clock_interrupts();
  };
  const uint64_t base = interrupts_with(false);
  const uint64_t boosted = interrupts_with(true);
  EXPECT_GT(boosted, 10 * base);
}

}  // namespace
}  // namespace tempo

namespace tempo {
namespace {

class MultiWaitTest : public ::testing::Test {
 protected:
  MultiWaitTest() : kernel_(&sim_, &session_), api_(&kernel_) { kernel_.Boot(); }

  Simulator sim_{1};
  EtwSession session_;
  VistaKernel kernel_;
  VistaUserApi api_;
};

TEST_F(MultiWaitTest, SignalledObjectIndexReturned) {
  int result = -99;
  MultiWait* wait = api_.WaitForMultipleObjects(1, 1, "app/wfmo", 4, kSecond,
                                                [&](int index) { result = index; });
  sim_.ScheduleAt(100 * kMillisecond, [&] { EXPECT_TRUE(wait->Signal(2)); });
  sim_.RunUntil(10 * kSecond);
  EXPECT_EQ(result, 2);
  EXPECT_TRUE(wait->done());
}

TEST_F(MultiWaitTest, TimeoutReturnsMinusOne) {
  int result = -99;
  api_.WaitForMultipleObjects(1, 1, "app/wfmo", 4, 50 * kMillisecond,
                              [&](int index) { result = index; });
  sim_.RunUntil(kSecond);
  EXPECT_EQ(result, -1);  // WAIT_TIMEOUT
}

TEST_F(MultiWaitTest, SecondSignalRejected) {
  MultiWait* wait = api_.WaitForMultipleObjects(1, 1, "app/wfmo", 2, kSecond, nullptr);
  EXPECT_TRUE(wait->Signal(0));
  EXPECT_FALSE(wait->Signal(1));  // already complete
}

TEST_F(MultiWaitTest, OutOfRangeIndexRejected) {
  MultiWait* wait = api_.WaitForMultipleObjects(1, 1, "app/wfmo", 2, kSecond, nullptr);
  EXPECT_FALSE(wait->Signal(2));
  EXPECT_FALSE(wait->done());
  EXPECT_TRUE(wait->Signal(1));
}

TEST_F(MultiWaitTest, UsesOnePerThreadTimerRegardlessOfObjectCount) {
  // The wait fast path: one dedicated KTIMER per thread, not per object.
  for (int round = 0; round < 3; ++round) {
    api_.WaitForMultipleObjects(1, 1, "app/wfmo", 64, 10 * kMillisecond, nullptr);
    sim_.RunUntil(sim_.Now() + kSecond);
  }
  std::set<TimerId> block_timers;
  for (const auto& r : session_.records()) {
    if (r.op == TimerOp::kBlock) {
      block_timers.insert(r.timer);
    }
  }
  EXPECT_EQ(block_timers.size(), 1u);
}

TEST_F(MultiWaitTest, InfiniteWaitOnlyCompletesOnSignal) {
  int result = -99;
  MultiWait* wait = api_.WaitForMultipleObjects(1, 1, "app/wfmo", 3, kNeverTime,
                                                [&](int index) { result = index; });
  sim_.RunUntil(kMinute);
  EXPECT_EQ(result, -99);
  wait->Signal(1);
  EXPECT_EQ(result, 1);
}

}  // namespace
}  // namespace tempo
