// Tests for the phi-accrual failure detector.

#include <gtest/gtest.h>

#include "src/adaptive/phi_accrual.h"
#include "src/sim/random.h"

namespace tempo {
namespace {

TEST(PhiAccrualTest, ZeroBeforeAnyHeartbeat) {
  PhiAccrualDetector detector;
  EXPECT_DOUBLE_EQ(detector.Phi(kSecond), 0.0);
  EXPECT_FALSE(detector.Suspect(kSecond, 1.0));
}

TEST(PhiAccrualTest, PhiRisesMonotonicallyWithSilence) {
  PhiAccrualDetector detector;
  SimTime now = 0;
  for (int i = 0; i < 50; ++i) {
    now += 100 * kMillisecond;
    detector.Heartbeat(now);
  }
  double prev = detector.Phi(now);
  for (SimDuration wait = 50 * kMillisecond; wait <= 2 * kSecond;
       wait += 50 * kMillisecond) {
    const double phi = detector.Phi(now + wait);
    EXPECT_GE(phi, prev);
    prev = phi;
  }
  EXPECT_GT(prev, 3.0);  // two full seconds of silence on a 100 ms stream
}

TEST(PhiAccrualTest, RegularStreamStaysUnsuspectedAtItsOwnCadence) {
  PhiAccrualDetector detector;
  SimTime now = 0;
  for (int i = 0; i < 200; ++i) {
    now += kSecond;
    detector.Heartbeat(now);
    EXPECT_LT(detector.Phi(now + 900 * kMillisecond), 2.0)
        << "regular arrival marked suspect";
  }
}

TEST(PhiAccrualTest, AdaptsTimeoutToHeartbeatRate) {
  // A 10 ms stream should yield a far shorter 99% timeout than a 1 s
  // stream — the whole point versus a fixed 30 s constant.
  PhiAccrualDetector fast;
  PhiAccrualDetector slow;
  SimTime now = 0;
  for (int i = 0; i < 100; ++i) {
    now += 10 * kMillisecond;
    fast.Heartbeat(now);
  }
  now = 0;
  for (int i = 0; i < 100; ++i) {
    now += kSecond;
    slow.Heartbeat(now);
  }
  const SimDuration fast_timeout = fast.TimeoutForThreshold(2.0);
  const SimDuration slow_timeout = slow.TimeoutForThreshold(2.0);
  EXPECT_LT(fast_timeout, 200 * kMillisecond);
  EXPECT_GT(slow_timeout, kSecond);
  EXPECT_LT(slow_timeout, 10 * kSecond);
  EXPECT_LT(fast_timeout, slow_timeout);
}

TEST(PhiAccrualTest, JitteryStreamGetsWiderTimeout) {
  Rng rng(5);
  PhiAccrualDetector regular;
  PhiAccrualDetector jittery;
  SimTime now_r = 0;
  SimTime now_j = 0;
  for (int i = 0; i < 200; ++i) {
    now_r += 100 * kMillisecond;
    regular.Heartbeat(now_r);
    now_j += static_cast<SimDuration>(rng.Uniform(0.02, 0.25) * kSecond);
    jittery.Heartbeat(now_j);
  }
  EXPECT_GT(jittery.TimeoutForThreshold(2.0), regular.TimeoutForThreshold(2.0));
}

TEST(PhiAccrualTest, TimeoutForThresholdInvertsPhi) {
  PhiAccrualDetector detector;
  SimTime now = 0;
  Rng rng(11);
  for (int i = 0; i < 150; ++i) {
    now += static_cast<SimDuration>(rng.Uniform(0.08, 0.12) * kSecond);
    detector.Heartbeat(now);
  }
  for (double threshold : {1.0, 2.0, 3.0}) {
    const SimDuration timeout = detector.TimeoutForThreshold(threshold);
    EXPECT_GE(detector.Phi(now + timeout), threshold);
    EXPECT_LT(detector.Phi(now + timeout - 2 * kMillisecond), threshold + 0.5);
    EXPECT_TRUE(detector.Suspect(now + timeout, threshold));
  }
  // Higher confidence => longer wait.
  EXPECT_LT(detector.TimeoutForThreshold(1.0), detector.TimeoutForThreshold(3.0));
}

TEST(PhiAccrualTest, WindowSlidesToNewRegime) {
  PhiAccrualDetector::Options options;
  options.window_size = 50;
  PhiAccrualDetector detector(options);
  SimTime now = 0;
  for (int i = 0; i < 100; ++i) {
    now += 10 * kMillisecond;
    detector.Heartbeat(now);
  }
  const SimDuration lan_timeout = detector.TimeoutForThreshold(2.0);
  // The peer moves to a WAN: 200 ms heartbeats. After the window refills,
  // the implied timeout follows.
  for (int i = 0; i < 60; ++i) {
    now += 200 * kMillisecond;
    detector.Heartbeat(now);
  }
  const SimDuration wan_timeout = detector.TimeoutForThreshold(2.0);
  EXPECT_GT(wan_timeout, 4 * lan_timeout);
  EXPECT_EQ(detector.samples(), 50u);
}

TEST(PhiAccrualTest, MinStddevPreventsInfiniteConfidence) {
  PhiAccrualDetector detector;
  SimTime now = 0;
  for (int i = 0; i < 100; ++i) {
    now += 100 * kMillisecond;  // perfectly regular
    detector.Heartbeat(now);
  }
  // Even with zero observed variance, one slightly-late heartbeat must not
  // push phi to infinity.
  const double phi = detector.Phi(now + 120 * kMillisecond);
  EXPECT_LT(phi, 10.0);
  EXPECT_GE(detector.stddev_interval(), 20 * kMillisecond);
}

}  // namespace
}  // namespace tempo
