// Tests for the parallel streaming analysis pipeline: for any chunking and
// any worker count, the trace-order merge of partial pass states must
// reproduce the serial analyses byte for byte, and the chunk reader must
// reject damaged files with the right TraceReadError.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/classify.h"
#include "src/analysis/histogram.h"
#include "src/analysis/origins.h"
#include "src/analysis/pipeline.h"
#include "src/analysis/provenance.h"
#include "src/analysis/rates.h"
#include "src/analysis/scatter.h"
#include "src/analysis/summary.h"
#include "src/trace/chunked.h"
#include "src/trace/file.h"

namespace tempo {
namespace {

// Collects rendered sections for comparison.
class StringSink : public RenderSink {
 public:
  void Section(const std::string& key, const std::string& text) override {
    sections_.emplace_back(key, text);
  }
  const std::vector<std::pair<std::string, std::string>>& sections() const {
    return sections_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

std::vector<CallsiteId> MakeSites(CallsiteRegistry* callsites) {
  const CallsiteId ip = callsites->Intern("net/ip");
  const CallsiteId tcp = callsites->Intern("net/tcp", ip);
  std::vector<CallsiteId> sites;
  sites.push_back(callsites->Intern("app/select"));
  sites.push_back(tcp);
  sites.push_back(callsites->Intern("net/tcp_retransmit", tcp));
  sites.push_back(callsites->Intern("kernel/watchdog"));
  sites.push_back(callsites->Intern("app/poll"));
  return sites;
}

// A deterministic synthetic trace with the shapes that stress every pass:
// overlapping episodes that straddle any chunk boundary, re-arms, timed-out
// and satisfied unblocks, repeated timestamps (ties at the derived trace
// end), user and kernel records, jiffy-wheel flags, and a spread of
// timeout values from milliseconds to minutes.
std::vector<TraceRecord> GenerateTrace(uint64_t seed, size_t count,
                                       const std::vector<CallsiteId>& sites) {
  uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 0x2545F4914F6CDD1DULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  constexpr size_t kTimers = 40;
  bool open[kTimers + 1] = {};
  SimTime now = 0;
  std::vector<TraceRecord> records;
  records.reserve(count);
  while (records.size() < count) {
    now += static_cast<SimTime>(next() % 3) * kMillisecond;  // ties allowed
    TraceRecord r;
    r.timestamp = now;
    r.timer = 1 + next() % kTimers;
    r.callsite = sites[next() % sites.size()];
    r.pid = static_cast<Pid>(next() % 4);  // 0 is kKernelPid
    if (r.pid != kKernelPid) {
      r.flags |= kFlagUser;
    }
    if (!open[r.timer]) {
      if (next() % 8 == 0) {
        r.op = TimerOp::kInit;
      } else {
        r.op = next() % 4 == 0 ? TimerOp::kBlock : TimerOp::kSet;
        open[r.timer] = true;
      }
    } else {
      switch (next() % 6) {
        case 0:
        case 1:
          r.op = TimerOp::kCancel;
          open[r.timer] = false;
          break;
        case 2:
          r.op = TimerOp::kExpire;
          open[r.timer] = false;
          break;
        case 3:
          r.op = TimerOp::kUnblock;
          if (next() % 2 == 0) {
            r.flags |= kFlagWaitSatisfied;
          }
          open[r.timer] = false;
          break;
        default:
          r.op = TimerOp::kSet;  // re-arm
          break;
      }
    }
    if (r.op == TimerOp::kSet || r.op == TimerOp::kBlock) {
      r.timeout = next() % 16 == 0
                      ? static_cast<SimDuration>(7 + next() % 90) * kSecond
                      : static_cast<SimDuration>(1 + next() % 500) * kMillisecond;
      r.expiry = r.timestamp + r.timeout;
      if (!r.is_user() && next() % 2 == 0) {
        r.flags |= kFlagJiffyWheel;
      }
    }
    records.push_back(r);
  }
  return records;
}

// The full tracestat-style pass set plus the passes tracestat doesn't run
// (rates, scatter, a countdown-filtered histogram) so every merge path is
// covered.
std::vector<std::unique_ptr<AnalysisPass>> MakePasses(const CallsiteRegistry& callsites) {
  std::vector<std::unique_ptr<AnalysisPass>> passes;
  passes.push_back(std::make_unique<SummaryPass>("t"));
  passes.push_back(std::make_unique<ClassifyPass>());
  passes.push_back(std::make_unique<HistogramPass>());
  HistogramOptions filtered;
  filtered.exclude_countdowns = true;
  filtered.min_percent = 0.5;
  passes.push_back(std::make_unique<HistogramPass>(filtered, true));
  OriginOptions origin_options;
  origin_options.min_percent = 0.5;
  passes.push_back(std::make_unique<OriginsPass>(&callsites, origin_options));
  passes.push_back(std::make_unique<ProvenancePass>(&callsites));
  passes.push_back(std::make_unique<BlamePass>(&callsites, 2 * kSecond, 20 * kSecond));
  RateGrouping grouping;
  grouping.pid_labels[1] = "App";
  passes.push_back(std::make_unique<RatesPass>(grouping, RateOptions{}));
  passes.push_back(std::make_unique<ScatterPass>());
  return passes;
}

std::vector<std::pair<std::string, std::string>> RenderAll(
    const std::vector<std::unique_ptr<AnalysisPass>>& passes) {
  StringSink sink;
  for (const auto& pass : passes) {
    pass->Render(sink);
  }
  return sink.sections();
}

// Serial reference: every record folded into fresh passes in one call.
std::vector<std::pair<std::string, std::string>> SerialReference(
    const std::vector<TraceRecord>& records, const CallsiteRegistry& callsites) {
  auto passes = MakePasses(callsites);
  for (const auto& pass : passes) {
    pass->Accumulate(std::span<const TraceRecord>(records.data(), records.size()));
  }
  return RenderAll(passes);
}

void ExpectSameSections(const std::vector<std::pair<std::string, std::string>>& expected,
                        const std::vector<std::pair<std::string, std::string>>& actual,
                        const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].first, actual[i].first) << context;
    EXPECT_EQ(expected[i].second, actual[i].second)
        << context << ", section " << expected[i].first;
  }
}

TEST(PipelineTest, ParallelMatchesSerialForAnyChunkingAndWorkerCount) {
  for (const uint64_t seed : {uint64_t{1}, uint64_t{2008}}) {
    CallsiteRegistry callsites;
    const auto sites = MakeSites(&callsites);
    const auto records = GenerateTrace(seed, 6000, sites);
    const auto expected = SerialReference(records, callsites);

    const struct {
      size_t jobs;
      uint32_t chunk_records;
    } cases[] = {{1, 64}, {2, 97}, {3, 1}, {4, 1000}, {7, 33}, {8, 251}};
    for (const auto& c : cases) {
      auto passes = MakePasses(callsites);
      PipelineOptions options;
      options.jobs = c.jobs;
      PipelineRunner runner(options);
      runner.Run(std::span<const TraceRecord>(records.data(), records.size()), passes,
                 c.chunk_records);
      ExpectSameSections(expected, RenderAll(passes),
                         "seed " + std::to_string(seed) + ", jobs " +
                             std::to_string(c.jobs) + ", chunk " +
                             std::to_string(c.chunk_records));
    }
  }
}

TEST(PipelineTest, SummaryConcurrencyExactAcrossChunkBoundaries) {
  // Five timers armed before any completes: the concurrency maximum spans
  // several chunk boundaries when chunk_records is tiny.
  CallsiteRegistry callsites;
  const CallsiteId site = callsites.Intern("x");
  std::vector<TraceRecord> records;
  for (TimerId t = 1; t <= 5; ++t) {
    TraceRecord r;
    r.timestamp = static_cast<SimTime>(t) * kSecond;
    r.timer = t;
    r.callsite = site;
    r.op = TimerOp::kSet;
    r.timeout = kMinute;
    r.expiry = r.timestamp + r.timeout;
    records.push_back(r);
  }
  for (TimerId t = 1; t <= 5; ++t) {
    TraceRecord r;
    r.timestamp = (10 + static_cast<SimTime>(t)) * kSecond;
    r.timer = t;
    r.callsite = site;
    r.op = TimerOp::kCancel;
    records.push_back(r);
  }
  const TraceSummary serial = Summarize(records, "t");
  EXPECT_EQ(serial.concurrency, 5u);

  for (const size_t jobs : {size_t{2}, size_t{3}, size_t{5}}) {
    std::vector<std::unique_ptr<AnalysisPass>> passes;
    passes.push_back(std::make_unique<SummaryPass>("t"));
    PipelineOptions options;
    options.jobs = jobs;
    PipelineRunner runner(options);
    runner.Run(std::span<const TraceRecord>(records.data(), records.size()), passes, 2);
    const TraceSummary merged =
        static_cast<SummaryPass&>(*passes.front()).Result();
    EXPECT_EQ(merged.concurrency, serial.concurrency) << "jobs " << jobs;
    EXPECT_EQ(merged.timers, serial.timers);
    EXPECT_EQ(merged.accesses, serial.accesses);
    EXPECT_EQ(merged.set, serial.set);
    EXPECT_EQ(merged.canceled, serial.canceled);
    EXPECT_EQ(merged.expired, serial.expired);
  }
}

TEST(PipelineTest, EmptyTraceRunsCleanly) {
  CallsiteRegistry callsites;
  const auto expected = SerialReference({}, callsites);
  auto passes = MakePasses(callsites);
  PipelineOptions options;
  options.jobs = 4;
  PipelineRunner runner(options);
  runner.Run(std::span<const TraceRecord>(), passes);
  ExpectSameSections(expected, RenderAll(passes), "empty trace");
  EXPECT_EQ(runner.stats().records, 0u);
}

class PipelineFileTest : public ::testing::Test {
 protected:
  std::string WriteTempTrace(const std::vector<TraceRecord>& records,
                             const CallsiteRegistry& callsites,
                             const TraceWriteOptions& options, const char* tag) {
    const std::string path =
        ::testing::TempDir() + "/tempo_pipeline_" + tag + ".trc";
    EXPECT_TRUE(WriteTraceFile(path, records, callsites, options));
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : paths_) {
      std::remove(path.c_str());
    }
  }

  std::vector<std::string> paths_;
};

TEST_F(PipelineFileTest, StreamedFileMatchesSerialReadOfTheSameFile) {
  CallsiteRegistry callsites;
  const auto sites = MakeSites(&callsites);
  const auto records = GenerateTrace(7, 5000, sites);

  TraceWriteOptions v2;
  v2.chunk_records = 173;  // uneven final chunk
  const std::string v2_path = WriteTempTrace(records, callsites, v2, "v2");
  TraceWriteOptions v1;
  v1.version = kTraceFileVersion;
  const std::string v1_path = WriteTempTrace(records, callsites, v1, "v1");

  for (const std::string& path : {v2_path, v1_path}) {
    // The reference is a serial pass over the records as decoded from this
    // very file (the codec quantises the redundant expiry field on disk,
    // so comparing against the pre-serialisation records would conflate
    // codec precision with pipeline correctness).
    TraceReadError error = TraceReadError::kIo;
    const auto loaded = ReadTraceFile(path, &error);
    ASSERT_TRUE(loaded.has_value()) << path << ": " << TraceReadErrorName(error);
    const auto expected = SerialReference(loaded->records, loaded->callsites);

    const auto reader = TraceChunkReader::Open(path, &error);
    ASSERT_TRUE(reader.has_value()) << path << ": " << TraceReadErrorName(error);
    EXPECT_EQ(reader->record_count(), records.size());
    auto passes = MakePasses(reader->callsites());
    PipelineOptions options;
    options.jobs = 4;
    PipelineRunner runner(options);
    ASSERT_TRUE(runner.Run(*reader, passes, &error))
        << path << ": " << TraceReadErrorName(error);
    ExpectSameSections(expected, RenderAll(passes), path);
    EXPECT_EQ(runner.stats().records, records.size());
    // v2 has 173-record chunks (parallel); the v1 fallback synthesizes
    // kDefaultChunkRecords-sized chunks, so 5000 records fit in one.
    EXPECT_EQ(runner.stats().jobs, path == v2_path ? 4u : 1u);
  }
}

TEST_F(PipelineFileTest, CursorsServeChunksInAnyOrder) {
  CallsiteRegistry callsites;
  const auto sites = MakeSites(&callsites);
  const auto records = GenerateTrace(11, 1000, sites);
  TraceWriteOptions options;
  options.chunk_records = 64;
  const std::string path = WriteTempTrace(records, callsites, options, "order");
  const auto reader = TraceChunkReader::Open(path);
  ASSERT_TRUE(reader.has_value());
  auto cursor = reader->MakeCursor();
  // Read the last chunk first, then sweep forward: offsets are absolute.
  size_t total = 0;
  const auto last = cursor.Read(reader->chunk_count() - 1);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(last.size(), records.size() % 64 == 0 ? 64 : records.size() % 64);
  for (size_t i = 0; i < reader->chunk_count(); ++i) {
    const auto chunk = cursor.Read(i);
    ASSERT_TRUE(cursor.ok());
    for (const TraceRecord& r : chunk) {
      EXPECT_EQ(r.timestamp, records[total].timestamp);
      EXPECT_EQ(r.timer, records[total].timer);
      ++total;
    }
  }
  EXPECT_EQ(total, records.size());
}

std::vector<uint8_t> SerializedV2(const std::vector<TraceRecord>& records,
                                  const CallsiteRegistry& callsites) {
  TraceWriteOptions options;
  options.chunk_records = 100;
  return SerializeTrace(records, callsites, options);
}

void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST_F(PipelineFileTest, OpenReportsTheRightErrorForEachDamage) {
  CallsiteRegistry callsites;
  const auto sites = MakeSites(&callsites);
  const auto records = GenerateTrace(3, 1000, sites);
  const auto bytes = SerializedV2(records, callsites);
  const std::string path = ::testing::TempDir() + "/tempo_pipeline_damage.trc";
  paths_.push_back(path);

  TraceReadError error = TraceReadError::kIo;
  EXPECT_FALSE(TraceChunkReader::Open("/nonexistent/nope.trc", &error).has_value());
  EXPECT_EQ(error, TraceReadError::kIo);

  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  WriteBytes(path, bad_magic);
  EXPECT_FALSE(TraceChunkReader::Open(path, &error).has_value());
  EXPECT_EQ(error, TraceReadError::kMagic);

  auto bad_version = bytes;
  bad_version[8] = 99;
  WriteBytes(path, bad_version);
  EXPECT_FALSE(TraceChunkReader::Open(path, &error).has_value());
  EXPECT_EQ(error, TraceReadError::kVersion);

  auto truncated = bytes;
  truncated.resize(truncated.size() - 17);
  WriteBytes(path, truncated);
  EXPECT_FALSE(TraceChunkReader::Open(path, &error).has_value());
  EXPECT_EQ(error, TraceReadError::kTruncated);

  auto bad_trailer = bytes;
  bad_trailer[bad_trailer.size() - 8] ^= 0xff;  // index trailer magic
  WriteBytes(path, bad_trailer);
  EXPECT_FALSE(TraceChunkReader::Open(path, &error).has_value());
  EXPECT_EQ(error, TraceReadError::kCorrupt);

  // The undamaged bytes still open, so the damage above is what failed.
  WriteBytes(path, bytes);
  EXPECT_TRUE(TraceChunkReader::Open(path, &error).has_value());
}

TEST_F(PipelineFileTest, DeserializeRejectsCorruptChunkIndex) {
  CallsiteRegistry callsites;
  const auto sites = MakeSites(&callsites);
  const auto records = GenerateTrace(5, 500, sites);
  const auto bytes = SerializedV2(records, callsites);
  ASSERT_TRUE(DeserializeTrace(bytes).has_value());

  // Flip a byte inside the index footer (between the stated index offset
  // and the trailer): the per-chunk offsets no longer match the layout.
  auto corrupt = bytes;
  corrupt[corrupt.size() - 20] ^= 0x01;
  TraceReadError error = TraceReadError::kIo;
  EXPECT_FALSE(DeserializeTrace(corrupt, &error).has_value());
  EXPECT_EQ(error, TraceReadError::kCorrupt);
}

TEST(PipelineRoundTripTest, V1AndV2EncodeTheSameTrace) {
  CallsiteRegistry callsites;
  const auto sites = MakeSites(&callsites);
  const auto records = GenerateTrace(13, 2000, sites);

  TraceWriteOptions v1;
  v1.version = kTraceFileVersion;
  const auto v1_loaded = DeserializeTrace(SerializeTrace(records, callsites, v1));
  TraceWriteOptions v2;
  v2.chunk_records = 77;
  const auto v2_loaded = DeserializeTrace(SerializeTrace(records, callsites, v2));
  ASSERT_TRUE(v1_loaded.has_value());
  ASSERT_TRUE(v2_loaded.has_value());
  ASSERT_EQ(v1_loaded->records.size(), records.size());
  ASSERT_EQ(v2_loaded->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(v1_loaded->records[i].timestamp, v2_loaded->records[i].timestamp);
    EXPECT_EQ(v1_loaded->records[i].timer, v2_loaded->records[i].timer);
    EXPECT_EQ(v1_loaded->records[i].timeout, v2_loaded->records[i].timeout);
    EXPECT_EQ(v1_loaded->records[i].expiry, v2_loaded->records[i].expiry);
    EXPECT_EQ(v1_loaded->records[i].callsite, v2_loaded->records[i].callsite);
    EXPECT_EQ(v1_loaded->records[i].pid, v2_loaded->records[i].pid);
    EXPECT_EQ(static_cast<int>(v1_loaded->records[i].op),
              static_cast<int>(v2_loaded->records[i].op));
    EXPECT_EQ(v1_loaded->records[i].flags, v2_loaded->records[i].flags);
  }
  for (CallsiteId id = 0; id < callsites.size(); ++id) {
    EXPECT_EQ(v1_loaded->callsites.Name(id), v2_loaded->callsites.Name(id));
    EXPECT_EQ(v1_loaded->callsites.Parent(id), v2_loaded->callsites.Parent(id));
  }
}

}  // namespace
}  // namespace tempo
