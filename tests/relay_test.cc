// Relay channels, drainer merge, and the streaming v2 writer.
//
// The recording path's contracts, from relay.h:
//   * SPSC channels: plain-store logging, release publication, drop-new
//     overflow with per-channel counting (relayfs no-overwrite semantics).
//   * The drainer's merge is stable and globally timestamp-ordered, and
//     lossless below capacity — including under real multi-producer
//     interleaving (these tests run under the TSan CI job).
//   * TraceStreamWriter output is byte-identical to the buffered
//     SerializeTrace path for the same record sequence.
//   * TimerService shards log kSet/kCancel/kExpire through per-shard
//     channels; Simulator::SchedulePeriodic drives a drainer from the
//     event loop.

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/timer/timer_service.h"
#include "src/trace/buffer.h"
#include "src/trace/file.h"
#include "src/trace/relay.h"
#include "src/trace/stream_writer.h"

namespace tempo {
namespace {

TraceRecord Rec(SimTime ts, uint64_t timer = 1, TimerOp op = TimerOp::kSet) {
  TraceRecord r;
  r.timestamp = ts;
  r.timer = timer;
  r.op = op;
  return r;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::vector<uint8_t> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return bytes;
  }
  uint8_t buf[1 << 14];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

// --- RelayChannel ---

TEST(RelayChannelTest, PublishesFullSubBuffersInOrder) {
  RelayChannelConfig config;
  config.sub_buffer_records = 4;
  config.sub_buffer_count = 3;
  RelayChannel channel("t", config);
  std::vector<TraceRecord> out;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(channel.TryLog(Rec(i)));
  }
  // One full sub-buffer (4 records) is published; the fifth is still open.
  EXPECT_EQ(channel.Harvest(&out), 4u);
  channel.FlushOpen();
  EXPECT_EQ(channel.Harvest(&out), 1u);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)].timestamp, i);
  }
  EXPECT_EQ(channel.accepted(), 5u);
  EXPECT_EQ(channel.dropped(), 0u);
}

TEST(RelayChannelTest, OverflowDropsNewNeverOverwrites) {
  RelayChannelConfig config;
  config.sub_buffer_records = 2;
  config.sub_buffer_count = 2;
  RelayChannel channel("t", config);
  // Ring holds 4 records with no consumer; everything beyond is dropped.
  for (int i = 0; i < 10; ++i) {
    channel.TryLog(Rec(i));
  }
  EXPECT_EQ(channel.accepted(), 4u);
  EXPECT_EQ(channel.dropped(), 6u);
  std::vector<TraceRecord> out;
  channel.Harvest(&out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front().timestamp, 0);
  EXPECT_EQ(out.back().timestamp, 3);  // the old records, not the new ones
  // A freed sub-buffer accepts again.
  EXPECT_TRUE(channel.TryLog(Rec(10)));
}

TEST(RelayChannelTest, DefaultCapacityDerivedFromPaperBufferSize) {
  // The 512 MiB relayfs budget expressed in records, derived in one place
  // from sizeof(TraceRecord) — not a hard-coded count.
  EXPECT_EQ(kRelayDefaultCapacity, (size_t{512} << 20) / sizeof(TraceRecord));
  EXPECT_EQ(RelayBuffer().capacity(), kRelayDefaultCapacity);
  // ForCapacity covers at least the asked-for records.
  for (const size_t records : {1u, 5u, 4096u, 10000u}) {
    EXPECT_GE(RelayChannelConfig::ForCapacity(records).capacity_records(), records);
  }
}

TEST(ChannelSinkTest, AdaptsTraceSinkCallersToAChannel) {
  RelayChannel channel("t");
  ChannelSink sink(&channel);
  Cpu cpu;
  sink.AttachCpu(&cpu, 100);
  TraceSink* legacy = &sink;  // the virtual interface legacy callers hold
  legacy->Log(Rec(7));
  EXPECT_EQ(cpu.charged_cycles(), 100u);
  channel.FlushOpen();
  std::vector<TraceRecord> out;
  channel.Harvest(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].timestamp, 7);
}

// --- RelayDrainer ---

TEST(RelayDrainerTest, MergesChannelsInTimestampOrder) {
  RelayChannelSet channels;
  RelayChannel* a = channels.Register("a");
  RelayChannel* b = channels.Register("b");
  std::vector<TraceRecord> merged;
  RelayDrainer drainer(&channels, [&](const TraceRecord& r) { merged.push_back(r); });
  for (const SimTime ts : {1, 4, 5}) {
    a->TryLog(Rec(ts, 100));
  }
  for (const SimTime ts : {2, 3, 6}) {
    b->TryLog(Rec(ts, 200));
  }
  channels.CloseAll();
  drainer.Finish();
  ASSERT_EQ(merged.size(), 6u);
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].timestamp, static_cast<SimTime>(i + 1));
  }
}

TEST(RelayDrainerTest, PollHoldsBackRecordsAboveTheWatermark) {
  RelayChannelConfig config;
  config.sub_buffer_records = 1;  // publish every record immediately
  RelayChannelSet channels;
  RelayChannel* a = channels.Register("a", config);
  RelayChannel* b = channels.Register("b", config);
  std::vector<TraceRecord> merged;
  RelayDrainer drainer(&channels, [&](const TraceRecord& r) { merged.push_back(r); });

  a->TryLog(Rec(10));
  // b has produced nothing: no record is provably orderable yet.
  drainer.Poll();
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(drainer.staged(), 1u);

  b->TryLog(Rec(5));
  // Watermarks are now a=10, b=5: only records below min(10, 5) may go.
  drainer.Poll();
  EXPECT_TRUE(merged.empty());

  b->TryLog(Rec(20));
  drainer.Poll();  // bound = min(10, 20): b's 5 is emittable, a's 10 is not
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].timestamp, 5);

  // A closed channel stops holding the merge back.
  a->Close();
  drainer.Poll();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[1].timestamp, 10);

  channels.CloseAll();
  drainer.Finish();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[2].timestamp, 20);
  EXPECT_EQ(drainer.emitted(), 3u);
}

TEST(RelayDrainerTest, StableForEqualTimestamps) {
  RelayChannelSet channels;
  RelayChannel* a = channels.Register("a");
  RelayChannel* b = channels.Register("b");
  std::vector<TraceRecord> merged;
  RelayDrainer drainer(&channels, [&](const TraceRecord& r) { merged.push_back(r); });
  a->TryLog(Rec(5, 100));
  a->TryLog(Rec(5, 101));
  b->TryLog(Rec(5, 200));
  channels.CloseAll();
  drainer.Finish();
  ASSERT_EQ(merged.size(), 3u);
  // Ties break by registration order, FIFO within a channel.
  EXPECT_EQ(merged[0].timer, 100u);
  EXPECT_EQ(merged[1].timer, 101u);
  EXPECT_EQ(merged[2].timer, 200u);
}

// --- TraceStreamWriter ---

class StreamWriterTest : public ::testing::Test {
 protected:
  std::string Path() const {
    return testing::TempDir() + "/stream_writer_test.trc";
  }
  void TearDown() override { std::remove(Path().c_str()); }
};

TEST_F(StreamWriterTest, ByteIdenticalToBufferedSerialization) {
  CallsiteRegistry callsites;
  const CallsiteId cs = callsites.Intern("mod_timer");
  std::vector<TraceRecord> records;
  for (int i = 0; i < 1000; ++i) {
    TraceRecord r = Rec(i, static_cast<uint64_t>(i % 17));
    r.callsite = cs;
    records.push_back(r);
  }
  TraceWriteOptions options;
  options.chunk_records = 64;  // several full chunks plus a partial tail

  TraceStreamWriter writer(Path(), &callsites, options);
  for (const TraceRecord& r : records) {
    ASSERT_TRUE(writer.Append(r));
  }
  ASSERT_TRUE(writer.Close());
  EXPECT_EQ(writer.records_written(), records.size());

  EXPECT_EQ(ReadAll(Path()), SerializeTrace(records, callsites, options));
  // No spill file left behind.
  EXPECT_EQ(std::fopen((Path() + ".spill").c_str(), "rb"), nullptr);
}

TEST_F(StreamWriterTest, EmptyTraceMatchesBufferedPath) {
  CallsiteRegistry callsites;
  TraceStreamWriter writer(Path(), &callsites);
  ASSERT_TRUE(writer.Close());
  EXPECT_EQ(ReadAll(Path()), SerializeTrace({}, callsites));
}

TEST_F(StreamWriterTest, StreamedFileRoundTripsThroughReader) {
  CallsiteRegistry callsites;
  callsites.Intern("a");
  TraceWriteOptions options;
  options.chunk_records = 8;
  TraceStreamWriter writer(Path(), &callsites, options);
  for (int i = 0; i < 20; ++i) {
    writer.Append(Rec(i));
  }
  ASSERT_TRUE(writer.Close());
  TraceReadError error;
  auto loaded = ReadTraceFile(Path(), &error);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->records.size(), 20u);
  EXPECT_EQ(loaded->records[19].timestamp, 19);
  EXPECT_EQ(loaded->callsites.size(), callsites.size());
}

TEST_F(StreamWriterTest, RejectsV1) {
  CallsiteRegistry callsites;
  TraceWriteOptions options;
  options.version = kTraceFileVersion;
  TraceStreamWriter writer(Path(), &callsites, options);
  EXPECT_FALSE(writer.ok());
  EXPECT_FALSE(writer.Append(Rec(1)));
  EXPECT_FALSE(writer.Close());
}

// --- multi-producer concurrency (runs under the TSan CI job) ---

TEST(RelayConcurrencyTest, InterleavedProducersMergeOrderedAndLossless) {
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 5000;
  RelayChannelSet channels;
  std::vector<RelayChannel*> lanes;
  for (int p = 0; p < kProducers; ++p) {
    lanes.push_back(channels.Register("p" + std::to_string(p),
                                      RelayChannelConfig::ForCapacity(kPerProducer)));
  }
  std::vector<TraceRecord> merged;
  RelayDrainer drainer(&channels, [&](const TraceRecord& r) { merged.push_back(r); });

  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        // Unique, per-channel-increasing timestamps: ts = i*kProducers + p.
        lanes[p]->TryLog(Rec(static_cast<SimTime>(i * kProducers + p),
                             static_cast<uint64_t>(p)));
      }
    });
  }
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (drainer.Poll() == 0) {
        std::this_thread::yield();
      }
    }
  });
  for (auto& t : producers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  channels.CloseAll();
  drainer.Finish();

  ASSERT_EQ(merged.size(), kProducers * kPerProducer);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(lanes[p]->dropped(), 0u) << "channel " << p;
  }
  for (size_t i = 0; i < merged.size(); ++i) {
    // The unique-timestamp construction makes the full merge order exact.
    EXPECT_EQ(merged[i].timestamp, static_cast<SimTime>(i));
  }
}

TEST(RelayConcurrencyTest, OverflowDropsAreCountedPerChannel) {
  RelayChannelConfig tiny;
  tiny.sub_buffer_records = 8;
  tiny.sub_buffer_count = 2;
  RelayChannelSet channels;
  RelayChannel* small = channels.Register("small", tiny);
  RelayChannel* big = channels.Register("big");
  constexpr uint64_t kRecords = 10000;

  std::thread writer_small([&] {
    for (uint64_t i = 0; i < kRecords; ++i) {
      small->TryLog(Rec(static_cast<SimTime>(i)));
    }
  });
  std::thread writer_big([&] {
    for (uint64_t i = 0; i < kRecords; ++i) {
      big->TryLog(Rec(static_cast<SimTime>(i)));
    }
  });
  writer_small.join();
  writer_big.join();
  channels.CloseAll();

  std::vector<TraceRecord> merged;
  RelayDrainer drainer(&channels, [&](const TraceRecord& r) { merged.push_back(r); });
  drainer.Finish();

  // The tiny unharvested ring must have dropped; the big one must not, and
  // the counts are independent.
  EXPECT_GT(small->dropped(), 0u);
  EXPECT_EQ(big->dropped(), 0u);
  EXPECT_EQ(small->accepted() + small->dropped(), kRecords);
  EXPECT_EQ(merged.size(), small->accepted() + big->accepted());
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end(),
                             [](const TraceRecord& a, const TraceRecord& b) {
                               return a.timestamp < b.timestamp;
                             }));
}

// --- TimerService per-shard tracing ---

TEST(TimerServiceTraceTest, ShardsLogSetCancelExpireThroughChannels) {
  RelayChannelSet channels;
  TimerService::Options options;
  options.shards = 2;
  options.queue = "heap";
  options.stats_label = "trace_test_svc";
  options.trace = &channels;
  TimerService service(options);
  EXPECT_EQ(channels.size(), 2u);

  service.SetTraceTime(100);
  int fired = 0;
  const TimerHandle expiring =
      service.ScheduleOn(0, 500, [&](TimerHandle) { ++fired; });
  const TimerHandle canceled =
      service.ScheduleOn(1, 900, [&](TimerHandle) { ++fired; });
  EXPECT_TRUE(service.Cancel(canceled));
  service.AdvanceAll(600);
  EXPECT_EQ(fired, 1);

  channels.CloseAll();
  std::vector<TraceRecord> merged;
  RelayDrainer drainer(&channels, [&](const TraceRecord& r) { merged.push_back(r); });
  drainer.Finish();

  ASSERT_EQ(merged.size(), 4u);  // set, set, cancel, expire
  int sets = 0, cancels = 0, expires = 0;
  for (const TraceRecord& r : merged) {
    switch (r.op) {
      case TimerOp::kSet:
        ++sets;
        EXPECT_EQ(r.timestamp, 100);
        EXPECT_EQ(r.timeout, r.expiry - 100);
        break;
      case TimerOp::kCancel:
        ++cancels;
        EXPECT_EQ(r.timer, canceled);
        break;
      case TimerOp::kExpire:
        ++expires;
        EXPECT_EQ(r.timer, expiring);  // service handle, reconstructed
        EXPECT_EQ(r.expiry, 500);
        EXPECT_EQ(r.timestamp, 600);   // stamped with AdvanceAll's now
        break;
      default:
        ADD_FAILURE() << "unexpected op";
    }
  }
  EXPECT_EQ(sets, 2);
  EXPECT_EQ(cancels, 1);
  EXPECT_EQ(expires, 1);
  // Global merge is timestamp-ordered.
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end(),
                             [](const TraceRecord& a, const TraceRecord& b) {
                               return a.timestamp < b.timestamp;
                             }));
}

TEST(TimerServiceTraceTest, TracingOffLogsNothingAndCostsNoChannels) {
  TimerService::Options options;
  options.shards = 2;
  options.stats_label = "trace_test_svc_off";
  TimerService service(options);
  service.ScheduleOn(0, 500, [](TimerHandle) {});
  service.AdvanceAll(600);  // no trace set: must not crash, nothing to check
}

// --- Simulator::SchedulePeriodic driving a drainer ---

TEST(SchedulePeriodicTest, FiresEveryPeriodWhileTokenHeld) {
  Simulator sim;
  int fires = 0;
  auto token = sim.SchedulePeriodic(10, [&] { ++fires; });
  sim.RunUntil(35);
  EXPECT_EQ(fires, 3);  // t = 10, 20, 30
  token.reset();        // cancel
  sim.RunUntil(100);
  EXPECT_EQ(fires, 3);
}

TEST(SchedulePeriodicTest, DrainerPollsFromTheEventLoop) {
  Simulator sim;
  RelayChannelSet channels;
  RelayChannelConfig config;
  config.sub_buffer_records = 1;  // publish immediately so Poll sees records
  RelayChannel* channel = channels.Register("sim", config);
  std::vector<TraceRecord> merged;
  RelayDrainer drainer(&channels, [&](const TraceRecord& r) { merged.push_back(r); });

  // A producer event every 5 ticks; the drainer polls every 7.
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(i * 5, [&, i] { channel->TryLog(Rec(sim.Now(), i)); });
  }
  auto token = sim.SchedulePeriodic(7, [&] { drainer.Poll(); });
  sim.RunUntil(60);
  // Mid-run the drainer has already emitted the watermark-safe prefix.
  EXPECT_GT(drainer.emitted(), 0u);
  token.reset();
  channels.CloseAll();
  drainer.Finish();
  ASSERT_EQ(merged.size(), 10u);
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end(),
                             [](const TraceRecord& a, const TraceRecord& b) {
                               return a.timestamp < b.timestamp;
                             }));
}

// --- obs plumbing ---

TEST(RelayObsTest, ChannelCountersSyncThroughDrainer) {
  RelayChannelConfig tiny;
  tiny.sub_buffer_records = 2;
  tiny.sub_buffer_count = 2;
  RelayChannelSet channels;
  RelayChannel* channel = channels.Register("obs_sync_test", tiny);
  for (int i = 0; i < 10; ++i) {
    channel->TryLog(Rec(i));  // ring holds 4; 6 dropped
  }
  channels.CloseAll();
  RelayDrainer drainer(&channels, [](const TraceRecord&) {});
  drainer.Finish();

  const auto snapshot = obs::Registry::Global().TakeSnapshot();
  const obs::Labels labels = {{"channel", "obs_sync_test"}};
  const auto* records = snapshot.Find("trace_relay_records", labels);
  const auto* dropped = snapshot.Find("trace_relay_dropped", labels);
  ASSERT_NE(records, nullptr);
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(records->value, 4);
  EXPECT_EQ(dropped->value, 6);
}

TEST(RelayObsTest, CounterAdvanceToIsMonotonic) {
  obs::Counter* c = obs::Registry::Global().GetCounter("relay_test_advance_to");
  c->AdvanceTo(10);
  EXPECT_EQ(c->value(), 10u);
  c->AdvanceTo(7);  // never lowers
  EXPECT_EQ(c->value(), 10u);
  c->AdvanceTo(12);
  EXPECT_EQ(c->value(), 12u);
}

}  // namespace
}  // namespace tempo
