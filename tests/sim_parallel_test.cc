// Tests for per-CPU clock domains and the windowed parallel drivers.
//
// The load-bearing property is determinism: a threaded run must be
// byte-identical to the serial run of the same seed, including RNG draws,
// cross-domain deliveries, per-domain relay traces and TimerService expiry
// schedules. Everything here is asserted as exact equality of recorded
// event logs, never "approximately the same".

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/clock_domain.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"
#include "src/timer/timer_service.h"
#include "src/trace/record.h"
#include "src/trace/relay.h"

namespace tempo {
namespace {

// One observed event: which domain, when, which RNG draw, local or a
// cross-domain delivery.
struct LogEntry {
  size_t domain = 0;
  SimTime at = 0;
  uint64_t draw = 0;
  int kind = 0;  // 0 = local step, 1 = cross-domain delivery

  bool operator==(const LogEntry& other) const {
    return domain == other.domain && at == other.at && draw == other.draw &&
           kind == other.kind;
  }
};

using DomainLogs = std::vector<std::vector<LogEntry>>;

// Seeds every domain with a self-rescheduling chain of `hops` events. Each
// step draws from the domain's RNG (so any divergence in execution order
// shows up as diverging draws), sometimes posts a cross-domain delivery,
// and reschedules itself at an RNG-dependent offset. Appends only to the
// domain's own log, so the workload is safe under the threaded drivers.
using StepFn = std::function<void(int)>;
using Keepalive = std::vector<std::shared_ptr<void>>;

// Reschedules `*step` without the lambda owning it (that would be a
// shared_ptr cycle); the test scope's keepalive owns the chain instead.
void Reschedule(ClockDomain& dom, SimDuration delay,
                const std::weak_ptr<StepFn>& weak, int remaining) {
  dom.ScheduleAfter(delay, [weak, remaining] {
    if (const std::shared_ptr<StepFn> step = weak.lock()) {
      (*step)(remaining);
    }
  });
}

void BuildWorkload(Simulator* sim, DomainLogs* logs, Keepalive* keepalive, int hops) {
  const size_t n = sim->cpu_count();
  logs->assign(n, {});
  for (size_t d = 0; d < n; ++d) {
    auto step = std::make_shared<StepFn>();
    keepalive->push_back(step);
    const std::weak_ptr<StepFn> weak = step;
    *step = [sim, logs, d, weak](int remaining) {
      ClockDomain& dom = sim->domain(d);
      const uint64_t draw = dom.rng().NextU64();
      (*logs)[d].push_back(LogEntry{d, dom.Now(), draw, 0});
      if (remaining <= 0) {
        return;
      }
      if (draw % 4 == 0 && sim->cpu_count() > 1) {
        const size_t target =
            (d + 1 + draw % (sim->cpu_count() - 1)) % sim->cpu_count();
        dom.Post(target, static_cast<SimDuration>(draw % 5000),
                 [sim, logs, target, draw] {
                   (*logs)[target].push_back(
                       LogEntry{target, sim->domain(target).Now(), draw, 1});
                 });
      }
      Reschedule(dom, static_cast<SimDuration>(1 + draw % 7919), weak, remaining - 1);
    };
    Reschedule(sim->domain(d), static_cast<SimDuration>((d + 1) * 10), weak, hops);
  }
}

Simulator::Options MultiCpuOptions(uint64_t seed, size_t cpus) {
  Simulator::Options options;
  options.seed = seed;
  options.cpus = cpus;
  options.stats_label = "";  // keep registry state out of determinism checks
  return options;
}

TEST(ClockDomainTest, SingleCpuOptionsMatchLegacySimulator) {
  Simulator legacy(42);
  Simulator split(MultiCpuOptions(42, 4));
  // Domain 0 must keep the master seed verbatim: every pre-existing trace
  // depends on its exact stream.
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(legacy.rng().NextU64(), split.domain(0).rng().NextU64());
  }
  // The other domains get independent streams.
  EXPECT_NE(split.domain(1).rng().NextU64(), split.domain(2).rng().NextU64());
}

TEST(ClockDomainTest, PostClampsLatencyToLookahead) {
  Simulator sim(MultiCpuOptions(1, 2));
  std::vector<SimTime> delivered;
  const SimTime at =
      sim.domain(0).Post(1, 0, [&delivered, &sim] { delivered.push_back(sim.domain(1).Now()); });
  EXPECT_EQ(at, sim.lookahead());  // latency 0 clamps up to the lookahead
  sim.Run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], sim.lookahead());
}

TEST(ClockDomainTest, PostTargetWrapsModuloCpuCount) {
  Simulator sim(MultiCpuOptions(1, 3));
  size_t fired_on = 99;
  sim.domain(0).Post(4, kMicrosecond, [&sim, &fired_on] {
    // 4 % 3 == 1: the delivery runs at domain 1's clock.
    fired_on = 1;
    EXPECT_EQ(sim.domain(1).Now(), kMicrosecond);
  });
  sim.Run();
  EXPECT_EQ(fired_on, 1u);
}

TEST(ClockDomainTest, CrossDomainFifoTiebreakIsSenderThenSendOrder) {
  // Four posts landing on domain 0 at the same virtual instant: delivery
  // order must be (sender 1, post 0), (sender 1, post 1), (sender 2,
  // post 0), (sender 2, post 1) — never thread- or heap-order.
  Simulator sim(MultiCpuOptions(9, 3));
  std::vector<std::pair<size_t, int>> order;
  for (size_t sender : {size_t{2}, size_t{1}}) {  // schedule in reverse on purpose
    ClockDomain& dom = sim.domain(sender);
    dom.ScheduleAt(0, [&sim, &order, sender] {
      ClockDomain& d = sim.domain(sender);
      d.Post(0, kMicrosecond, [&order, sender] { order.push_back({sender, 0}); });
      d.Post(0, kMicrosecond, [&order, sender] { order.push_back({sender, 1}); });
    });
  }
  sim.Run();
  const std::vector<std::pair<size_t, int>> want = {
      {1, 0}, {1, 1}, {2, 0}, {2, 1}};
  EXPECT_EQ(order, want);
}

TEST(ClockDomainTest, RunUntilAdvancesEveryDomainClock) {
  Simulator sim(MultiCpuOptions(5, 3));
  sim.domain(1).ScheduleAt(3 * kMicrosecond, [] {});
  sim.RunUntil(kMillisecond);
  for (size_t d = 0; d < sim.cpu_count(); ++d) {
    EXPECT_EQ(sim.domain(d).Now(), kMillisecond) << "domain " << d;
  }
  EXPECT_EQ(sim.Now(), kMillisecond);
}

TEST(ClockDomainTest, PerDomainCpuAccountingIsIndependent) {
  Simulator sim(MultiCpuOptions(5, 2));
  sim.domain(1).ScheduleAt(0, [&sim] {
    sim.domain(1).cpu().EnterIdle(sim.domain(1).Now());
  });
  sim.RunUntil(20 * kMicrosecond);
  // Idle accounting is finalized per domain at its own clock on every exit
  // path, and domain 0 is untouched by domain 1's idle period.
  EXPECT_EQ(sim.domain(1).cpu().idle_time(), 20 * kMicrosecond);
  EXPECT_EQ(sim.domain(0).cpu().idle_time(), 0);
}

TEST(ClockDomainTest, EventsExecutedAggregatesAcrossDomains) {
  Simulator sim(MultiCpuOptions(3, 3));
  for (size_t d = 0; d < 3; ++d) {
    sim.domain(d).ScheduleAfter(kMicrosecond, [] {});
    sim.domain(d).ScheduleAfter(2 * kMicrosecond, [] {});
  }
  EXPECT_EQ(sim.PendingEvents(), 6u);
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 6u);
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_EQ(sim.domain(d).events_executed(), 2u);
  }
}

// The tentpole guarantee: serial and threaded drivers produce identical
// event-by-event histories for the same seed.
TEST(ParallelIdentityTest, ThreadedRunMatchesSerialByteForByte) {
  constexpr uint64_t kSeed = 20080419;
  constexpr size_t kCpus = 4;
  constexpr int kHops = 400;

  Simulator serial(MultiCpuOptions(kSeed, kCpus));
  DomainLogs serial_logs;
  Keepalive serial_keep;
  BuildWorkload(&serial, &serial_logs, &serial_keep, kHops);
  serial.Run();

  Simulator threaded(MultiCpuOptions(kSeed, kCpus));
  DomainLogs threaded_logs;
  Keepalive threaded_keep;
  BuildWorkload(&threaded, &threaded_logs, &threaded_keep, kHops);
  threaded.RunParallel(kCpus);

  EXPECT_EQ(serial.events_executed(), threaded.events_executed());
  ASSERT_EQ(serial_logs.size(), threaded_logs.size());
  for (size_t d = 0; d < serial_logs.size(); ++d) {
    ASSERT_EQ(serial_logs[d].size(), threaded_logs[d].size()) << "domain " << d;
    for (size_t i = 0; i < serial_logs[d].size(); ++i) {
      ASSERT_TRUE(serial_logs[d][i] == threaded_logs[d][i])
          << "domain " << d << " entry " << i;
    }
  }
}

TEST(ParallelIdentityTest, DeadlineRunsMatchAndOversubscriptionIsSafe) {
  constexpr uint64_t kSeed = 77;
  constexpr size_t kCpus = 3;
  constexpr SimTime kDeadline = 40 * kMillisecond;

  Simulator serial(MultiCpuOptions(kSeed, kCpus));
  DomainLogs serial_logs;
  Keepalive serial_keep;
  BuildWorkload(&serial, &serial_logs, &serial_keep, 1 << 20);  // more hops than fit
  serial.RunUntil(kDeadline);

  // More worker threads than domains: the pool clamps, results unchanged.
  Simulator threaded(MultiCpuOptions(kSeed, kCpus));
  DomainLogs threaded_logs;
  Keepalive threaded_keep;
  BuildWorkload(&threaded, &threaded_logs, &threaded_keep, 1 << 20);
  threaded.RunUntilParallel(kDeadline, 8);

  EXPECT_EQ(serial.Now(), threaded.Now());
  EXPECT_EQ(serial_logs, threaded_logs);
  for (size_t d = 0; d < kCpus; ++d) {
    EXPECT_EQ(serial.domain(d).Now(), threaded.domain(d).Now());
  }
}

TEST(ParallelIdentityTest, StopAtWindowBarrierIsDeterministic) {
  const auto run = [](bool threaded) {
    Simulator sim(MultiCpuOptions(13, 2));
    DomainLogs logs;
    Keepalive keep;
    BuildWorkload(&sim, &logs, &keep, 1 << 20);
    sim.domain(1).ScheduleAt(5 * kMillisecond, [&sim] { sim.Stop(); });
    if (threaded) {
      sim.RunParallel(2);
    } else {
      sim.Run();
    }
    return std::make_pair(sim.events_executed(), logs);
  };
  const auto serial = run(false);
  const auto parallel = run(true);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_GT(serial.first, 0u);
}

// Per-domain relay channels: each domain owns one SPSC channel (pinned at
// this layer, not inside the sim), logs every step to it, and the k-way
// drainer merge of the threaded run must equal the serial one.
TEST(ParallelIdentityTest, PerDomainRelayChannelsMergeIdentically) {
  const auto run = [](bool threaded) {
    Simulator sim(MultiCpuOptions(4242, 4));
    RelayChannelSet channels;
    std::vector<RelayChannel*> lanes;
    for (size_t d = 0; d < sim.cpu_count(); ++d) {
      lanes.push_back(channels.Register(
          "simdom/" + std::to_string(d),
          RelayChannelConfig::ForCapacity(1 << 16)));
    }
    Keepalive keep;
    for (size_t d = 0; d < sim.cpu_count(); ++d) {
      auto step = std::make_shared<StepFn>();
      keep.push_back(step);
      const std::weak_ptr<StepFn> weak = step;
      *step = [&sim, lanes, d, weak](int remaining) {
        ClockDomain& dom = sim.domain(d);
        TraceRecord r;
        r.timestamp = dom.Now();
        r.timer = static_cast<TimerId>(d + 1);
        r.timeout = static_cast<SimDuration>(dom.rng().NextU64() % kMillisecond);
        r.op = TimerOp::kExpire;
        lanes[d]->TryLog(r);
        if (remaining > 0) {
          Reschedule(dom, 1 + static_cast<SimDuration>(r.timeout % 997), weak,
                     remaining - 1);
        }
      };
      Reschedule(sim.domain(d), static_cast<SimDuration>(d + 1), weak, 300);
    }
    if (threaded) {
      sim.RunParallel();
    } else {
      sim.Run();
    }
    channels.CloseAll();
    std::vector<TraceRecord> merged;
    RelayDrainer drainer(&channels,
                         [&merged](const TraceRecord& r) { merged.push_back(r); });
    drainer.Finish();
    return merged;
  };
  const std::vector<TraceRecord> serial = run(false);
  const std::vector<TraceRecord> parallel = run(true);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_GT(serial.size(), 0u);
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].timestamp, parallel[i].timestamp) << "record " << i;
    ASSERT_EQ(serial[i].timer, parallel[i].timer) << "record " << i;
    ASSERT_EQ(serial[i].timeout, parallel[i].timeout) << "record " << i;
  }
}

// TimerService shards pinned one-per-domain: each domain drives only its
// own shard (AdvanceShard), so the sharded service advances truly in
// parallel, and the expiry schedule stays deterministic.
TEST(ParallelIdentityTest, TimerServiceShardPerDomainIsDeterministic) {
  const auto run = [](bool threaded) {
    Simulator sim(MultiCpuOptions(1234, 4));
    TimerService::Options service_options;
    service_options.shards = 4;
    service_options.stats_label = threaded ? "simpin_threaded" : "simpin_serial";
    TimerService service(service_options);
    DomainLogs fired(4);
    Keepalive keep;
    for (size_t d = 0; d < sim.cpu_count(); ++d) {
      auto step = std::make_shared<StepFn>();
      keep.push_back(step);
      const std::weak_ptr<StepFn> weak = step;
      *step = [&sim, &service, &fired, d, weak](int remaining) {
        ClockDomain& dom = sim.domain(d);
        const SimDuration delay =
            1 + static_cast<SimDuration>(dom.rng().NextU64() % (50 * kMicrosecond));
        service.ScheduleOn(d, dom.Now() + delay, [&sim, &fired, d](TimerHandle) {
          fired[d].push_back(LogEntry{d, sim.domain(d).Now(), 0, 1});
        });
        // Drain this domain's shard at the domain's own clock.
        const size_t n = service.AdvanceShard(d, dom.Now());
        fired[d].push_back(LogEntry{d, dom.Now(), n, 0});
        if (remaining > 0) {
          Reschedule(dom, delay, weak, remaining - 1);
        } else {
          service.AdvanceShard(d, dom.Now() + kSecond);  // flush the tail
        }
      };
      Reschedule(sim.domain(d), static_cast<SimDuration>(d + 1), weak, 200);
    }
    sim.RunUntilParallel(2 * kSecond, threaded ? 4 : 1);
    return std::make_pair(service.expire_count(), fired);
  };
  const auto serial = run(false);
  const auto parallel = run(true);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_GT(serial.first, 0u);
  EXPECT_EQ(serial.second, parallel.second);
}

TEST(ParallelIdentityTest, WorkerPoolSurvivesManyWindows) {
  // Shake out barrier bugs (missed wakeups, generation races): thousands of
  // tiny windows through the same pool.
  Simulator sim(MultiCpuOptions(6, 2));
  uint64_t ticks[2] = {0, 0};  // domain-local: windows may run concurrently
  Keepalive keep;
  for (size_t d = 0; d < 2; ++d) {
    auto step = std::make_shared<StepFn>();
    keep.push_back(step);
    const std::weak_ptr<StepFn> weak = step;
    *step = [&sim, &ticks, d, weak](int remaining) {
      ++ticks[d];
      if (remaining > 0) {
        Reschedule(sim.domain(d), 10 * kMicrosecond, weak, remaining - 1);
      }
    };
    Reschedule(sim.domain(d), static_cast<SimDuration>(d + 1), weak, 2000);
  }
  sim.RunParallel(2);
  EXPECT_EQ(ticks[0], 2001u);
  EXPECT_EQ(ticks[1], 2001u);
}

}  // namespace
}  // namespace tempo
