// Unit tests for the simulation core: time, RNG, event queue, simulator,
// CPU accounting, process table.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/probe.h"
#include "src/sim/cpu.h"
#include "src/sim/event_queue.h"
#include "src/sim/process.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace tempo {
namespace {

// --- time.h ---

TEST(TimeTest, ConversionRoundTrips) {
  EXPECT_EQ(FromSeconds(1.0), kSecond);
  EXPECT_EQ(FromSeconds(0.5), 500 * kMillisecond);
  EXPECT_EQ(FromMilliseconds(1.0), kMillisecond);
  EXPECT_EQ(FromMicroseconds(1.0), kMicrosecond);
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(kMillisecond), 1.0);
}

TEST(TimeTest, UnitRelationships) {
  EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
}

TEST(TimeTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(2 * kSecond), "2s");
  EXPECT_EQ(FormatDuration(FromMilliseconds(1.5)), "1.5ms");
  EXPECT_EQ(FormatDuration(25 * kMicrosecond), "25us");
  EXPECT_EQ(FormatDuration(12), "12ns");
  EXPECT_EQ(FormatDuration(-2 * kSecond), "-2s");
  EXPECT_EQ(FormatDuration(7200 * kSecond), "7200s");
}

// --- random.h ---

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    differing += a.NextU64() != b.NextU64() ? 1 : 0;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(1);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
  EXPECT_EQ(rng.UniformInt(5, 4), 5);  // hi < lo clamps to lo
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.Exponential(2.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0;
  double sq = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.Normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.Pareto(1.5, 2.0), 1.5);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng fork = a.Fork();
  // The fork and the parent should not produce identical streams.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == fork.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

// --- event_queue.h ---

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(30, [&] { order.push_back(3); });
  queue.Schedule(10, [&] { order.push_back(1); });
  queue.Schedule(20, [&] { order.push_back(2); });
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  const EventId id = queue.Schedule(10, [&] { ran = true; });
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_TRUE(queue.Empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue queue;
  const EventId id = queue.Schedule(10, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, CancelAfterPopFails) {
  EventQueue queue;
  const EventId id = queue.Schedule(10, [] {});
  queue.Pop();
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, CancelUnknownIdFails) {
  EventQueue queue;
  EXPECT_FALSE(queue.Cancel(42));
}

TEST(EventQueueTest, NextTimeSkipsCanceled) {
  EventQueue queue;
  const EventId early = queue.Schedule(10, [] {});
  queue.Schedule(20, [] {});
  EXPECT_EQ(queue.NextTime(), 10);
  queue.Cancel(early);
  EXPECT_EQ(queue.NextTime(), 20);
}

TEST(EventQueueTest, EmptyQueueNextTimeIsNever) {
  EventQueue queue;
  EXPECT_EQ(queue.NextTime(), kNeverTime);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue queue;
  const EventId a = queue.Schedule(1, [] {});
  queue.Schedule(2, [] {});
  EXPECT_EQ(queue.Size(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.Size(), 1u);
  queue.Pop();
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(EventQueueTest, ManyInterleavedOperations) {
  EventQueue queue;
  Rng rng(3);
  std::vector<EventId> live;
  int scheduled = 0;
  int fired = 0;
  int canceled = 0;
  for (int i = 0; i < 5000; ++i) {
    const double roll = rng.NextDouble();
    if (roll < 0.5 || live.empty()) {
      ++scheduled;
      live.push_back(queue.Schedule(rng.UniformInt(0, 1000), [&fired] { ++fired; }));
    } else if (roll < 0.75) {
      const size_t idx = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      if (queue.Cancel(live[idx])) {
        ++canceled;
      }
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    } else if (!queue.Empty()) {
      queue.Pop().fn();
    }
  }
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  // Every scheduled event either fired or was (successfully) canceled.
  EXPECT_EQ(fired + canceled, scheduled);
  EXPECT_GT(fired, 0);
  EXPECT_GT(canceled, 0);
}

// --- simulator.h ---

TEST(SimulatorTest, TimeAdvancesToEventTimes) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.ScheduleAt(100, [&] { seen.push_back(sim.Now()); });
  sim.ScheduleAt(50, [&] { seen.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(seen, (std::vector<SimTime>{50, 100}));
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, ScheduleInPastClampsToNow) {
  Simulator sim;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAt(10, [&] { EXPECT_EQ(sim.Now(), 100); });
  });
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(2000, [&] { ++fired; });
  sim.RunUntil(1000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 1000);
  sim.RunUntil(3000);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventExactlyAtDeadlineRuns) {
  Simulator sim;
  bool ran = false;
  sim.ScheduleAt(1000, [&] { ran = true; });
  sim.RunUntil(1000);
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, StopInterruptsRun) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.ScheduleAt(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CancelPendingEvent) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.ScheduleAfter(10, [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, NegativeDelayClampsToZero) {
  Simulator sim;
  SimTime at = -1;
  sim.ScheduleAfter(-50, [&] { at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(at, 0);
}

// --- cpu.h ---

TEST(CpuTest, WakeupCountedOnExitIdle) {
  Cpu cpu;
  cpu.EnterIdle(0);
  cpu.ExitIdle(100);
  EXPECT_EQ(cpu.wakeups(), 1u);
  EXPECT_EQ(cpu.idle_time(), 100);
}

TEST(CpuTest, InterruptWhileIdleWakes) {
  Cpu cpu;
  cpu.EnterIdle(0);
  cpu.OnInterrupt(50, /*timer=*/true);
  EXPECT_EQ(cpu.wakeups(), 1u);
  EXPECT_EQ(cpu.interrupts(), 1u);
  EXPECT_EQ(cpu.timer_interrupts(), 1u);
  EXPECT_FALSE(cpu.idle());
}

TEST(CpuTest, RedundantIdleTransitionsIgnored) {
  Cpu cpu;
  cpu.EnterIdle(0);
  cpu.EnterIdle(10);
  cpu.ExitIdle(20);
  cpu.ExitIdle(30);
  EXPECT_EQ(cpu.wakeups(), 1u);
  EXPECT_EQ(cpu.idle_time(), 20);
}

TEST(CpuTest, FinishFlushesOpenIdlePeriod) {
  Cpu cpu;
  cpu.EnterIdle(0);
  cpu.Finish(500);
  EXPECT_EQ(cpu.idle_time(), 500);
}

TEST(CpuTest, CyclesToDurationUsesFrequency) {
  Cpu cpu(1.0);  // 1 GHz: 1 cycle = 1 ns
  EXPECT_EQ(cpu.CyclesToDuration(1000), 1000);
  Cpu fast(2.0);
  EXPECT_EQ(fast.CyclesToDuration(1000), 500);
}

TEST(CpuTest, ChargeCyclesAccumulates) {
  Cpu cpu;
  cpu.ChargeCycles(236);
  cpu.ChargeCycles(236);
  EXPECT_EQ(cpu.charged_cycles(), 472u);
}

// --- process.h ---

TEST(ProcessTableTest, KernelIsPidZero) {
  ProcessTable table;
  EXPECT_EQ(table.Get(kKernelPid).name, "kernel");
  EXPECT_TRUE(table.Get(kKernelPid).is_kernel);
}

TEST(ProcessTableTest, AddProcessAssignsSequentialPids) {
  ProcessTable table;
  const Pid a = table.AddProcess("a");
  const Pid b = table.AddProcess("b");
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(table.Get(a).name, "a");
  EXPECT_FALSE(table.Get(a).is_kernel);
}

TEST(ProcessTableTest, ThreadsBelongToProcesses) {
  ProcessTable table;
  const Pid p = table.AddProcess("p");
  const Tid t1 = table.AddThread(p);
  const Tid t2 = table.AddThread(p);
  EXPECT_NE(t1, t2);
  EXPECT_EQ(table.ThreadProcess(t1), p);
  EXPECT_EQ(table.ThreadProcess(t2), p);
}

// --- event_queue.h lazy-deletion edges ---

TEST(EventQueueTest, CancelThenPopSameTimestampKeepsFifo) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(5, [&order] { order.push_back(1); });
  const EventId middle = q.Schedule(5, [&order] { order.push_back(2); });
  q.Schedule(5, [&order] { order.push_back(3); });
  EXPECT_TRUE(q.Cancel(middle));
  // The canceled entry still holds a heap slot at the same timestamp; Pop
  // must skip it without disturbing the FIFO order of its neighbours.
  while (!q.Empty()) {
    EventQueue::Fired fired = q.Pop();
    fired.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeOnAllCanceledHeapIsNever) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(q.Schedule(10 + i, [] {}));
  }
  for (const EventId id : ids) {
    EXPECT_TRUE(q.Cancel(id));
  }
  // Every heap entry is a tombstone: NextTime must drain them all and
  // report empty rather than a canceled entry's timestamp.
  EXPECT_EQ(q.NextTime(), kNeverTime);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
  // Draining also reset the id index; the queue is fully reusable.
  const EventId fresh = q.Schedule(42, [] {});
  EXPECT_EQ(q.NextTime(), 42);
  EXPECT_TRUE(q.Cancel(fresh));
  EXPECT_EQ(q.NextTime(), kNeverTime);
}

TEST(EventQueueTest, IndexCompactionThresholdCrossing) {
  // The id index compacts its dead prefix once it exceeds 4096 entries and
  // outweighs the live remainder. Drive well past that threshold and check
  // Cancel still resolves ids correctly on both sides of the compaction.
  EventQueue q;
  constexpr int kCount = 10000;
  std::vector<EventId> ids;
  ids.reserve(kCount);
  int fired = 0;
  for (int i = 0; i < kCount; ++i) {
    ids.push_back(q.Schedule(i, [&fired] { ++fired; }));
  }
  int canceled = 0;
  for (int i = 0; i < kCount; i += 3) {
    ASSERT_TRUE(q.Cancel(ids[i]));
    ++canceled;
  }
  SimTime last = -1;
  while (q.Size() > 100) {
    EventQueue::Fired f = q.Pop();
    EXPECT_GE(f.at, last);
    last = f.at;
    f.fn();
  }
  // Ids consumed before the compaction point are gone for good.
  EXPECT_FALSE(q.Cancel(ids[1]));
  EXPECT_FALSE(q.Cancel(ids[3]));  // canceled earlier, not cancelable twice
  // A still-live tail id resolves through the compacted index.
  ASSERT_NE(0, (kCount - 2) % 3);
  EXPECT_TRUE(q.Cancel(ids[kCount - 2]));
  while (!q.Empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(fired, kCount - canceled - 1);
}

// --- simulator accounting regressions ---

TEST(SimulatorTest, RunFinalizesIdleAccountingLikeRunUntil) {
  const auto build = [](Simulator& sim) {
    sim.ScheduleAt(0, [&sim] { sim.cpu().EnterIdle(sim.Now()); });
    sim.ScheduleAt(10 * kMicrosecond, [] {});
  };
  Simulator a(1);
  build(a);
  a.Run();
  Simulator b(1);
  build(b);
  b.RunUntil(10 * kMicrosecond);
  // Run() used to exit without Cpu::Finish, silently dropping the open
  // idle period that RunUntil() accounted for.
  EXPECT_EQ(a.cpu().idle_time(), 10 * kMicrosecond);
  EXPECT_EQ(a.cpu().idle_time(), b.cpu().idle_time());
}

TEST(SimulatorTest, ProbeClockAutoUninstallsOnDestruction) {
  {
    Simulator sim(7);
    InstallSimProbeClock(&sim);
    sim.ScheduleAfter(5, [] {});
    sim.Run();
    EXPECT_EQ(obs::ProbeClockNow(), 5u);
  }
  // The destructor must restore the default clock; before the fix the
  // probe clock kept reading the destroyed simulator (a use-after-free
  // under ASan).
  EXPECT_EQ(obs::internal::g_probe_clock, &obs::WallCycleClock);
  (void)obs::ProbeClockNow();
}

TEST(SimulatorObsTest, QueueDepthHwmIsPerInstance) {
  Simulator::Options a;
  a.stats_label = "hwm_test_a";
  Simulator sa(a);
  sa.ScheduleAfter(1, [] {});
  sa.ScheduleAfter(2, [] {});
  sa.ScheduleAfter(3, [] {});
  Simulator::Options b;
  b.stats_label = "hwm_test_b";
  Simulator sb(b);
  sb.ScheduleAfter(1, [] {});
  const obs::MetricsSnapshot snap = obs::Registry::Global().TakeSnapshot();
  const obs::SnapshotEntry* ga =
      snap.Find("sim_event_queue_depth_hwm", {{"cpu", "0"}, {"sim", "hwm_test_a"}});
  const obs::SnapshotEntry* gb =
      snap.Find("sim_event_queue_depth_hwm", {{"cpu", "0"}, {"sim", "hwm_test_b"}});
  ASSERT_NE(ga, nullptr);
  ASSERT_NE(gb, nullptr);
  // One process-global high-water mark would report max(3, 1) for both.
  EXPECT_EQ(ga->value, 3);
  EXPECT_EQ(gb->value, 1);
}

TEST(SimulatorObsTest, QueueDepthHwmRebaselinesAcrossInstances) {
  Simulator::Options options;
  options.stats_label = "hwm_test_rebase";
  {
    Simulator deep(options);
    for (int i = 1; i <= 5; ++i) {
      deep.ScheduleAfter(i, [] {});
    }
    deep.Run();
  }
  Simulator shallow(options);
  shallow.ScheduleAfter(1, [] {});
  shallow.ScheduleAfter(2, [] {});
  const obs::MetricsSnapshot snap = obs::Registry::Global().TakeSnapshot();
  const obs::SnapshotEntry* gauge = snap.Find(
      "sim_event_queue_depth_hwm", {{"cpu", "0"}, {"sim", "hwm_test_rebase"}});
  ASSERT_NE(gauge, nullptr);
  // A Max-only process gauge would still read the first simulator's 5.
  EXPECT_EQ(gauge->value, 2);
}

TEST(SimulatorObsTest, EmptyStatsLabelSuppressesInstruments) {
  Simulator::Options options;
  options.seed = 3;
  options.stats_label = "";
  Simulator sim(options);
  sim.ScheduleAfter(1, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 1u);
  const obs::MetricsSnapshot snap = obs::Registry::Global().TakeSnapshot();
  EXPECT_EQ(snap.Find("sim_events_executed", {{"cpu", "0"}, {"sim", ""}}), nullptr);
}

}  // namespace
}  // namespace tempo
