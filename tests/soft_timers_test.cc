// Tests for the soft-timer facility (Aron & Druschel).

#include <gtest/gtest.h>

#include "src/timer/soft_timers.h"

namespace tempo {
namespace {

class SoftTimersTest : public ::testing::Test {
 protected:
  SoftTimersTest() { facility_.Start(); }

  Simulator sim_{1};
  SoftTimerFacility facility_{&sim_};
};

TEST_F(SoftTimersTest, FallbackTickDeliversWithoutTriggerStates) {
  SimTime fired_at = -1;
  facility_.Schedule(3 * kMillisecond, [&] { fired_at = sim_.Now(); });
  sim_.RunUntil(kSecond);
  // No trigger states: delivery waits for the 10 ms fallback tick.
  EXPECT_EQ(fired_at, 10 * kMillisecond);
  EXPECT_GT(facility_.fallback_ticks(), 0u);
}

TEST_F(SoftTimersTest, TriggerStateDeliversEarlyAndPrecisely) {
  SimTime fired_at = -1;
  facility_.Schedule(3 * kMillisecond, [&] { fired_at = sim_.Now(); });
  // The kernel passes a trigger state shortly after expiry.
  sim_.ScheduleAt(FromMilliseconds(3.2), [&] { facility_.TriggerState(); });
  sim_.RunUntil(kSecond);
  EXPECT_EQ(fired_at, FromMilliseconds(3.2));
  EXPECT_EQ(facility_.fired(), 1u);
  EXPECT_EQ(facility_.max_delay(), FromMilliseconds(0.2));
}

TEST_F(SoftTimersTest, TriggerStateBeforeExpiryFiresNothing) {
  bool fired = false;
  facility_.Schedule(5 * kMillisecond, [&] { fired = true; });
  sim_.ScheduleAt(kMillisecond, [&] { EXPECT_EQ(facility_.TriggerState(), 0u); });
  sim_.RunUntil(2 * kMillisecond);
  EXPECT_FALSE(fired);
}

TEST_F(SoftTimersTest, CancelPreventsDelivery) {
  const TimerHandle handle = facility_.Schedule(kMillisecond, [] { FAIL(); });
  EXPECT_TRUE(facility_.Cancel(handle));
  EXPECT_FALSE(facility_.Cancel(handle));
  sim_.RunUntil(kSecond);
  EXPECT_EQ(facility_.fired(), 0u);
}

TEST_F(SoftTimersTest, DenseTriggerStatesGiveMicrosecondPrecision) {
  // Trigger states every 50 us (a busy networking box): delivery delay is
  // bounded by the trigger spacing, far below the fallback period.
  for (int i = 0; i < 20000; ++i) {
    sim_.ScheduleAt(i * 50 * kMicrosecond, [&] { facility_.TriggerState(); });
  }
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    facility_.Schedule(rng.UniformInt(kMillisecond, 900 * kMillisecond), [] {});
  }
  sim_.RunUntil(kSecond);
  EXPECT_EQ(facility_.fired(), 200u);
  EXPECT_LE(facility_.max_delay(), 50 * kMicrosecond);
}

TEST_F(SoftTimersTest, ChecksChargeCycles) {
  const uint64_t before = sim_.cpu().charged_cycles();
  for (int i = 0; i < 100; ++i) {
    facility_.TriggerState();
  }
  EXPECT_EQ(sim_.cpu().charged_cycles() - before, 100u * 15u);
  EXPECT_EQ(facility_.checks(), 100u);
}

TEST_F(SoftTimersTest, MeanDelayAccounting) {
  facility_.Schedule(kMillisecond, [] {});
  sim_.ScheduleAt(2 * kMillisecond, [&] { facility_.TriggerState(); });
  sim_.RunUntil(5 * kMillisecond);
  EXPECT_DOUBLE_EQ(facility_.mean_delay_us(), 1000.0);
}

}  // namespace
}  // namespace tempo
