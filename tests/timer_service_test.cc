// Tests for the sharded TimerService: routing, the lock-free published
// deadlines, AdvanceAll's due-shard filtering, and multi-threaded
// schedule/cancel consistency (the TSan CI job runs this binary).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/random.h"
#include "src/timer/queue.h"
#include "src/timer/timer_service.h"

namespace tempo {
namespace {

TimerService::Options MakeOptions(const std::string& queue, size_t shards,
                                  const std::string& label) {
  TimerService::Options options;
  options.queue = queue;
  options.shards = shards;
  options.stats_label = label;
  return options;
}

class TimerServiceTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<TimerService> Make(size_t shards, const std::string& label) {
    return std::make_unique<TimerService>(MakeOptions(GetParam(), shards, label));
  }
  // The quantising structures (both wheels and the lawn) run at the default
  // 1 ms tick; the exact structures have none.
  SimDuration Granularity() const {
    const std::string& name = GetParam();
    if (name == "heap" || name == "tree") {
      return 0;
    }
    return kMillisecond;
  }
};

TEST_P(TimerServiceTest, SchedulesAndFiresAcrossShards) {
  auto service = Make(4, GetParam() + "-fire");
  EXPECT_EQ(service->shard_count(), 4u);
  std::atomic<int> fired{0};
  for (size_t i = 0; i < 100; ++i) {
    service->ScheduleOn(i, (10 + static_cast<SimTime>(i)) * kMillisecond,
                        [&fired](TimerHandle) { fired.fetch_add(1); });
  }
  EXPECT_EQ(service->Size(), 100u);
  EXPECT_EQ(service->AdvanceAll(kSecond), 100u);
  EXPECT_EQ(fired.load(), 100);
  EXPECT_EQ(service->Size(), 0u);
  EXPECT_EQ(service->GlobalNextExpiry(), kNeverTime);
}

TEST_P(TimerServiceTest, CancelRoutesToOwningShard) {
  auto service = Make(4, GetParam() + "-cancel");
  bool fired = false;
  std::vector<TimerHandle> handles;
  for (size_t i = 0; i < 8; ++i) {
    handles.push_back(
        service->ScheduleOn(i, 20 * kMillisecond, [&fired](TimerHandle) { fired = true; }));
  }
  for (TimerHandle h : handles) {
    EXPECT_TRUE(service->Cancel(h));
    EXPECT_FALSE(service->Cancel(h));  // second cancel must fail
  }
  EXPECT_EQ(service->AdvanceAll(kSecond), 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(service->cancel_count(), 8u);
}

TEST_P(TimerServiceTest, CancelRejectsForeignHandles) {
  auto service = Make(2, GetParam() + "-foreign");
  EXPECT_FALSE(service->Cancel(kInvalidTimerHandle));
  EXPECT_FALSE(service->Cancel(12345));              // bare queue-style handle
  EXPECT_FALSE(service->Cancel(uint64_t{9} << 48));  // shard index out of range
}

TEST_P(TimerServiceTest, GlobalNextExpiryTracksMinimumAcrossShards) {
  auto service = Make(4, GetParam() + "-next");
  EXPECT_EQ(service->GlobalNextExpiry(), kNeverTime);
  service->ScheduleOn(0, 500 * kMillisecond, [](TimerHandle) {});
  const TimerHandle early =
      service->ScheduleOn(2, 100 * kMillisecond, [](TimerHandle) {});
  service->ScheduleOn(3, 300 * kMillisecond, [](TimerHandle) {});
  SimTime next = service->GlobalNextExpiry();
  EXPECT_GE(next, 100 * kMillisecond - Granularity());
  EXPECT_LE(next, 100 * kMillisecond + Granularity());
  // Canceling the earliest timer must republish the owning shard's deadline.
  EXPECT_TRUE(service->Cancel(early));
  next = service->GlobalNextExpiry();
  EXPECT_GE(next, 300 * kMillisecond - Granularity());
  EXPECT_LE(next, 300 * kMillisecond + Granularity());
}

TEST_P(TimerServiceTest, AdvanceAllSkipsShardsNotDue) {
  auto service = Make(4, GetParam() + "-skip");
  std::atomic<int> fired{0};
  service->ScheduleOn(0, 10 * kMillisecond, [&fired](TimerHandle) { fired.fetch_add(1); });
  service->ScheduleOn(1, 10 * kSecond, [&fired](TimerHandle) { fired.fetch_add(1); });
  // Shards 2 and 3 are empty; shard 1 is not due: only shard 0 may be locked.
  EXPECT_EQ(service->AdvanceAll(100 * kMillisecond), 1u);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(service->advance_calls(), 1u);
  EXPECT_EQ(service->shards_advanced(), 1u);
  EXPECT_EQ(service->shards_skipped(), 3u);
  EXPECT_EQ(service->Size(), 1u);
}

TEST_P(TimerServiceTest, ScheduleLaterThanDeadlineIsACacheHit) {
  auto service = Make(1, GetParam() + "-cachehit");
  service->ScheduleOn(0, 10 * kMillisecond, [](TimerHandle) {});
  const uint64_t hits_before = service->deadline_cache_hits();
  // Strictly later than the published deadline: the fast path, no requery.
  service->ScheduleOn(0, kSecond, [](TimerHandle) {});
  service->ScheduleOn(0, 2 * kSecond, [](TimerHandle) {});
  EXPECT_EQ(service->deadline_cache_hits(), hits_before + 2);
  // Earlier than the published deadline: must republish (a miss).
  const uint64_t misses_before = service->deadline_cache_misses();
  service->ScheduleOn(0, 5 * kMillisecond, [](TimerHandle) {});
  EXPECT_EQ(service->deadline_cache_misses(), misses_before + 1);
}

TEST_P(TimerServiceTest, ThreadAffineScheduleUsesConsistentShard) {
  auto service = Make(4, GetParam() + "-affine");
  // All Schedule calls from this thread land on one shard, so a due sweep
  // advances exactly one shard.
  for (int i = 0; i < 10; ++i) {
    service->Schedule((10 + i) * kMillisecond, [](TimerHandle) {});
  }
  EXPECT_EQ(service->Size(), 10u);
  EXPECT_EQ(service->AdvanceAll(kSecond), 10u);
  EXPECT_EQ(service->shards_advanced(), 1u);
  EXPECT_EQ(service->shards_skipped(), 3u);
}

TEST_P(TimerServiceTest, ConcurrentScheduleCancelAdvanceStaysConsistent) {
  constexpr size_t kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  auto service = Make(kThreads, GetParam() + "-mt");
  std::atomic<uint64_t> fired{0};
  std::atomic<uint64_t> canceled{0};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(t + 1);
      std::vector<TimerHandle> live;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const SimTime expiry = rng.UniformInt(kMillisecond, 2 * kSecond);
        live.push_back(service->ScheduleOn(t, expiry,
                                           [&fired](TimerHandle) { fired.fetch_add(1); }));
        if (i % 3 == 0) {
          const size_t victim =
              static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
          if (live[victim] != kInvalidTimerHandle &&
              service->Cancel(live[victim])) {
            canceled.fetch_add(1);
          }
          live[victim] = kInvalidTimerHandle;
        }
        if (i % 128 == 0) {
          service->AdvanceAll(rng.UniformInt(0, kSecond));
          service->GlobalNextExpiry();  // concurrent lock-free reads
        }
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  service->AdvanceAll(3 * kSecond);  // past every scheduled expiry
  EXPECT_EQ(service->Size(), 0u);
  EXPECT_EQ(fired.load() + canceled.load(), kThreads * kOpsPerThread);
  EXPECT_EQ(service->set_count(), kThreads * kOpsPerThread);
  EXPECT_EQ(service->expire_count(), fired.load());
  EXPECT_EQ(service->cancel_count(), canceled.load());
}

TEST_P(TimerServiceTest, RescheduleRoutesToOwningShard) {
  auto service = Make(4, GetParam() + "-resched");
  std::atomic<int> fired{0};
  std::vector<TimerHandle> handles;
  for (size_t i = 0; i < 8; ++i) {
    handles.push_back(service->ScheduleOn(i % 4, 10 * kMillisecond,
                                          [&fired](TimerHandle) { fired.fetch_add(1); }));
  }
  // Push everything out past the first sweep; handles stay stable.
  for (TimerHandle h : handles) {
    EXPECT_EQ(service->Reschedule(h, 500 * kMillisecond), h);
  }
  EXPECT_EQ(service->AdvanceAll(100 * kMillisecond), 0u);
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(service->AdvanceAll(kSecond), 8u);
  EXPECT_EQ(fired.load(), 8);
  EXPECT_EQ(service->reschedule_count(), 8u);
  // Dead and foreign handles are rejected.
  EXPECT_EQ(service->Reschedule(handles[0], 2 * kSecond), kInvalidTimerHandle);
  EXPECT_EQ(service->Reschedule(kInvalidTimerHandle, kSecond), kInvalidTimerHandle);
  EXPECT_EQ(service->Reschedule(uint64_t{9} << 48, kSecond), kInvalidTimerHandle);
}

TEST_P(TimerServiceTest, RescheduleEarlierRepublishesDeadline) {
  auto service = Make(2, GetParam() + "-resched-deadline");
  const TimerHandle h = service->ScheduleOn(0, kSecond, [](TimerHandle) {});
  ASSERT_EQ(service->Reschedule(h, 50 * kMillisecond), h);
  const SimTime next = service->GlobalNextExpiry();
  EXPECT_GE(next, 50 * kMillisecond - Granularity());
  EXPECT_LE(next, 50 * kMillisecond + Granularity());
}

TEST_P(TimerServiceTest, ScheduleBatchOnMintsRoutableHandles) {
  auto service = Make(4, GetParam() + "-batch");
  std::atomic<int> fired{0};
  std::vector<TimerBatchEntry> entries(64);
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].expiry = (10 + static_cast<SimTime>(i)) * kMillisecond;
  }
  service->ScheduleBatchOn(2, entries, [&fired](TimerHandle) { fired.fetch_add(1); });
  EXPECT_EQ(service->Size(), entries.size());
  EXPECT_EQ(service->set_count(), entries.size());
  // Every minted handle must route back to its shard for cancel/reschedule.
  EXPECT_TRUE(service->Cancel(entries[0].handle));
  EXPECT_EQ(service->Reschedule(entries[1].handle, 2 * kSecond), entries[1].handle);
  service->AdvanceAll(3 * kSecond);
  EXPECT_EQ(fired.load(), static_cast<int>(entries.size()) - 1);
  EXPECT_EQ(service->Size(), 0u);
}

TEST_P(TimerServiceTest, CancelBatchGroupsByShard) {
  auto service = Make(4, GetParam() + "-cancelbatch");
  bool fired = false;
  std::vector<TimerHandle> handles;
  for (size_t i = 0; i < 32; ++i) {
    handles.push_back(service->ScheduleOn(i % 4, kSecond,
                                          [&fired](TimerHandle) { fired = true; }));
  }
  handles.push_back(kInvalidTimerHandle);   // skipped
  handles.push_back(uint64_t{9} << 48);     // foreign shard: skipped
  handles.push_back(handles[0]);            // duplicate: dead on second visit
  EXPECT_EQ(service->CancelBatch(handles), 32u);
  EXPECT_EQ(service->Size(), 0u);
  EXPECT_EQ(service->AdvanceAll(kMinute), 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(service->CancelBatch(handles), 0u);
}

TEST_P(TimerServiceTest, MemoryBytesSumsShards) {
  auto service = Make(4, GetParam() + "-membytes");
  const size_t empty_bytes = service->MemoryBytes();
  for (size_t i = 0; i < 400; ++i) {
    service->ScheduleOn(i % 4, kSecond + static_cast<SimTime>(i) * kMillisecond,
                        [](TimerHandle) {});
  }
  EXPECT_GT(service->MemoryBytes(), empty_bytes);
  service->AdvanceAll(kMinute);
}

INSTANTIATE_TEST_SUITE_P(AllImpls, TimerServiceTest,
                         ::testing::ValuesIn(TimerQueueNames()));

TEST(TimerServiceDefaultsTest, DefaultShardCountIsHardwareConcurrency) {
  TimerService service;
  const size_t expected = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(service.shard_count(), expected);
  EXPECT_EQ(service.queue_name(), "hierarchical_wheel");
}

TEST(TimerServiceDefaultsTest, UnknownQueueFallsBackToHierarchicalWheel) {
  TimerService service(
      [] {
        TimerService::Options options;
        options.queue = "no_such_queue";
        options.shards = 2;
        options.stats_label = "fallback";
        return options;
      }());
  EXPECT_EQ(service.queue_name(), "hierarchical_wheel");
  bool fired = false;
  service.ScheduleOn(0, kMillisecond, [&fired](TimerHandle) { fired = true; });
  service.AdvanceAll(kSecond);
  EXPECT_TRUE(fired);
}

TEST(TimerServiceStatsTest, PublishStatsExportsGauges) {
  TimerService service(MakeOptions("tree", 2, "publish"));
  service.ScheduleOn(0, kMillisecond, [](TimerHandle) {});
  service.AdvanceAll(kSecond);
  service.PublishStats();
  const obs::MetricsSnapshot snapshot = obs::Registry::Global().TakeSnapshot();
  const obs::SnapshotEntry* calls = snapshot.Find(
      "timer_service_advance_calls", obs::Labels{{"service", "publish"}});
  ASSERT_NE(calls, nullptr);
  EXPECT_EQ(calls->value, 1);
  const obs::SnapshotEntry* shards = snapshot.Find(
      "timer_service_shards", obs::Labels{{"service", "publish"}});
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->value, 2);
}

}  // namespace
}  // namespace tempo
