// Tests for the timer-queue data structures, including cross-implementation
// equivalence property tests (every implementation must fire the same
// timers, up to its tick granularity).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/sim/random.h"
#include "src/timer/hashed_wheel.h"
#include "src/timer/heap_queue.h"
#include "src/timer/hierarchical_wheel.h"
#include "src/timer/lawn.h"
#include "src/timer/queue.h"
#include "src/timer/tree_queue.h"

namespace tempo {
namespace {

// Default 1 ms granularity for the quantising structures (both wheels and
// the lawn); the exact structures (heap, tree) have none.
SimDuration GranularityOf(const std::string& name) {
  if (name == "heap" || name == "tree") {
    return 0;
  }
  return kMillisecond;
}

class TimerQueueTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<TimerQueue> Make() {
    TimerQueueOptions options;
    options.name = GetParam();
    return MakeTimerQueue(options);
  }
  SimDuration Granularity() const { return GranularityOf(GetParam()); }
};

TEST_P(TimerQueueTest, FactoryProducesCorrectName) {
  auto queue = Make();
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->Name(), GetParam());
}

TEST_P(TimerQueueTest, FiresAtOrAfterExpiry) {
  auto queue = Make();
  SimTime fired_at = -1;
  queue->Schedule(10 * kMillisecond, [&](TimerHandle) { fired_at = 10 * kMillisecond; });
  EXPECT_EQ(queue->Advance(9 * kMillisecond), 0u);
  EXPECT_EQ(queue->Advance(20 * kMillisecond), 1u);
  EXPECT_EQ(fired_at, 10 * kMillisecond);
}

TEST_P(TimerQueueTest, NeverFiresEarly) {
  auto queue = Make();
  bool fired = false;
  queue->Schedule(10 * kMillisecond, [&](TimerHandle) { fired = true; });
  queue->Advance(10 * kMillisecond - 1 - Granularity());
  EXPECT_FALSE(fired);
}

TEST_P(TimerQueueTest, CancelPreventsFiring) {
  auto queue = Make();
  bool fired = false;
  const TimerHandle h = queue->Schedule(5 * kMillisecond, [&](TimerHandle) { fired = true; });
  EXPECT_TRUE(queue->Cancel(h));
  EXPECT_EQ(queue->Advance(kSecond), 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(queue->Size(), 0u);
}

TEST_P(TimerQueueTest, CancelAfterFireFails) {
  auto queue = Make();
  const TimerHandle h = queue->Schedule(kMillisecond, [](TimerHandle) {});
  queue->Advance(kSecond);
  EXPECT_FALSE(queue->Cancel(h));
}

TEST_P(TimerQueueTest, CancelUnknownFails) {
  auto queue = Make();
  EXPECT_FALSE(queue->Cancel(12345));
}

TEST_P(TimerQueueTest, PastExpiryFiresOnNextAdvance) {
  auto queue = Make();
  queue->Advance(kSecond);
  bool fired = false;
  queue->Schedule(kMillisecond, [&](TimerHandle) { fired = true; });  // in the past
  queue->Advance(kSecond + 10 * kMillisecond);
  EXPECT_TRUE(fired);
}

TEST_P(TimerQueueTest, SizeTracksPending) {
  auto queue = Make();
  queue->Schedule(kMillisecond, [](TimerHandle) {});
  const TimerHandle h = queue->Schedule(2 * kMillisecond, [](TimerHandle) {});
  queue->Schedule(kSecond, [](TimerHandle) {});
  EXPECT_EQ(queue->Size(), 3u);
  queue->Cancel(h);
  EXPECT_EQ(queue->Size(), 2u);
  queue->Advance(10 * kMillisecond);
  EXPECT_EQ(queue->Size(), 1u);
}

TEST_P(TimerQueueTest, NextExpiryReportsEarliestPending) {
  auto queue = Make();
  EXPECT_EQ(queue->NextExpiry(), kNeverTime);
  queue->Schedule(50 * kMillisecond, [](TimerHandle) {});
  const TimerHandle h = queue->Schedule(20 * kMillisecond, [](TimerHandle) {});
  SimTime next = queue->NextExpiry();
  EXPECT_GE(next, 20 * kMillisecond - Granularity());
  EXPECT_LE(next, 20 * kMillisecond + Granularity());
  queue->Cancel(h);
  next = queue->NextExpiry();
  EXPECT_GE(next, 50 * kMillisecond - Granularity());
  EXPECT_LE(next, 50 * kMillisecond + Granularity());
}

TEST_P(TimerQueueTest, CallbackReceivesOwnHandle) {
  auto queue = Make();
  TimerHandle seen = kInvalidTimerHandle;
  const TimerHandle h = queue->Schedule(kMillisecond, [&](TimerHandle fired) { seen = fired; });
  queue->Advance(kSecond);
  EXPECT_EQ(seen, h);
}

TEST_P(TimerQueueTest, CallbackMaySchedule) {
  auto queue = Make();
  int fired = 0;
  TimerQueue* q = queue.get();
  queue->Schedule(kMillisecond, [&fired, q](TimerHandle) {
    ++fired;
    q->Schedule(2 * kMillisecond, [&fired](TimerHandle) { ++fired; });
  });
  queue->Advance(10 * kMillisecond);
  // The nested expiry is already past; the contract guarantees it fires on
  // the next Advance (quantising backends may push it one tick ahead of
  // the advance that scheduled it).
  queue->Advance(10 * kMillisecond + Granularity());
  EXPECT_EQ(fired, 2);
}

TEST_P(TimerQueueTest, CallbackMayCancelSiblingDueSameInstant) {
  auto queue = Make();
  int fired = 0;
  TimerQueue* q = queue.get();
  TimerHandle sibling = kInvalidTimerHandle;
  queue->Schedule(kMillisecond, [&](TimerHandle) {
    ++fired;
    q->Cancel(sibling);  // may or may not succeed; must not corrupt
  });
  sibling = queue->Schedule(kMillisecond, [&](TimerHandle) { ++fired; });
  queue->Schedule(5 * kMillisecond, [&](TimerHandle) { ++fired; });
  queue->Advance(kSecond);
  // The sibling may already have been detached for firing; either way the
  // later timer must still fire and nothing may crash.
  EXPECT_GE(fired, 2);
  EXPECT_EQ(queue->Size(), 0u);
}

TEST_P(TimerQueueTest, LongDelaysSupported) {
  auto queue = Make();
  bool fired = false;
  queue->Schedule(7200 * kSecond, [&](TimerHandle) { fired = true; });
  queue->Advance(7199 * kSecond);
  EXPECT_FALSE(fired);
  queue->Advance(7201 * kSecond);
  EXPECT_TRUE(fired);
}

TEST_P(TimerQueueTest, ManyTimersSameExpiryAllFire) {
  auto queue = Make();
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    queue->Schedule(kMillisecond * 7, [&](TimerHandle) { ++fired; });
  }
  queue->Advance(kSecond);
  EXPECT_EQ(fired, 1000);
}

// Property test: randomized schedule/reschedule/cancel/advance against a
// reference model, seeded through the batch entry point. Every
// implementation must fire exactly the timers the model fires, within its
// granularity window of the requested expiry.
class TimerQueueFuzzTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(TimerQueueFuzzTest, MatchesReferenceModel) {
  const auto& [name, seed] = GetParam();
  TimerQueueOptions options;
  options.name = name;
  auto queue = MakeTimerQueue(options);
  const SimDuration granularity = GranularityOf(name);
  Rng rng(seed);

  struct ModelEntry {
    SimTime expiry;
    bool fired = false;
    bool canceled = false;
  };
  std::map<TimerHandle, ModelEntry> model;
  std::map<TimerHandle, SimTime> fired_at;
  SimTime now = 0;
  const auto record = [&fired_at, &now](TimerHandle handle) {
    fired_at[handle] = now;
  };

  // Seed the population through ScheduleBatch: the batch path must mint
  // handles indistinguishable from per-call Schedule.
  std::vector<TimerBatchEntry> batch(64);
  for (auto& entry : batch) {
    entry.expiry = now + rng.UniformInt(0, 200 * kMillisecond);
  }
  queue->ScheduleBatch(batch, record);
  for (const auto& entry : batch) {
    ASSERT_NE(entry.handle, kInvalidTimerHandle);
    model.emplace(entry.handle, ModelEntry{entry.expiry});
  }
  ASSERT_EQ(queue->Size(), batch.size());

  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.40) {
      const SimTime expiry = now + rng.UniformInt(0, 200 * kMillisecond);
      const TimerHandle h = queue->Schedule(expiry, record);
      model.emplace(h, ModelEntry{expiry});
    } else if (roll < 0.60 && !model.empty()) {
      // Reschedule a random entry; succeeds iff it is still pending, and
      // the handle must stay stable. Within the quantisation window
      // (expiry <= now < expiry + granularity) the queue may already have
      // fired an entry the model still counts live — either outcome is
      // legal there.
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int64_t>(model.size()) - 1));
      const bool live = !it->second.fired && !it->second.canceled;
      const bool grey = live && it->second.expiry <= now;
      const SimTime expiry = now + rng.UniformInt(0, 200 * kMillisecond);
      const TimerHandle got = queue->Reschedule(it->first, expiry);
      if (got != kInvalidTimerHandle) {
        EXPECT_TRUE(live) << "rescheduled a dead handle " << it->first;
        EXPECT_EQ(got, it->first) << "reschedule minted a new handle";
        it->second.expiry = expiry;
      } else if (live) {
        EXPECT_TRUE(grey) << "reschedule lost a live handle " << it->first;
        it->second.fired = true;
      }
    } else if (roll < 0.75 && !model.empty()) {
      // Cancel a random entry, with the same quantisation-window tolerance.
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int64_t>(model.size()) - 1));
      const bool live = !it->second.fired && !it->second.canceled;
      const bool grey = live && it->second.expiry <= now;
      const bool got = queue->Cancel(it->first);
      if (got) {
        EXPECT_TRUE(live) << "canceled a dead handle " << it->first;
        it->second.canceled = true;
      } else if (live) {
        EXPECT_TRUE(grey) << "cancel lost a live handle " << it->first;
        it->second.fired = true;
      }
    } else {
      now += rng.UniformInt(0, 50 * kMillisecond);
      queue->Advance(now);
      for (auto& [handle, entry] : model) {
        if (!entry.fired && !entry.canceled && entry.expiry + granularity <= now) {
          entry.fired = true;  // must have fired by now
        }
      }
    }
  }
  now += 200 * kMillisecond + kSecond;  // beyond every scheduled expiry
  queue->Advance(now);
  for (auto& [handle, entry] : model) {
    if (!entry.canceled) {
      entry.fired = true;
    }
  }

  // Verify: all model-fired handles actually fired, none of the canceled
  // ones did, and nothing fired before its expiry.
  size_t fired_count = 0;
  for (const auto& [handle, entry] : model) {
    if (entry.canceled) {
      EXPECT_EQ(fired_at.count(handle), 0u) << "canceled timer fired";
    } else {
      ASSERT_EQ(fired_at.count(handle), 1u) << "timer never fired";
      EXPECT_GE(fired_at[handle] + granularity, entry.expiry) << "fired early";
      ++fired_count;
    }
  }
  EXPECT_GT(fired_count, 0u);
  EXPECT_EQ(queue->Size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllImplsManySeeds, TimerQueueFuzzTest,
    ::testing::Combine(::testing::ValuesIn(TimerQueueNames()),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u)));

INSTANTIATE_TEST_SUITE_P(AllImpls, TimerQueueTest,
                         ::testing::ValuesIn(TimerQueueNames()));

TEST(TimerQueueFactoryTest, UnknownNameReturnsNull) {
  TimerQueueOptions options;
  options.name = "no_such_queue";
  EXPECT_EQ(MakeTimerQueue(options), nullptr);
}

TEST(TimerQueueFactoryTest, NamesListMatchesFactory) {
  for (const std::string& name : TimerQueueNames()) {
    TimerQueueOptions options;
    options.name = name;
    auto queue = MakeTimerQueue(options);
    ASSERT_NE(queue, nullptr) << name;
    EXPECT_EQ(queue->Name(), name);
  }
}

// The deprecated v1 overloads must keep forwarding until out-of-tree
// callers migrate.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(TimerQueueFactoryTest, DeprecatedOverloadsStillForward) {
  EXPECT_EQ(MakeTimerQueue("no_such_queue"), nullptr);
  auto by_name = MakeTimerQueue("lawn");
  ASSERT_NE(by_name, nullptr);
  EXPECT_EQ(by_name->Name(), "lawn");
  auto by_label = MakeTimerQueue("heap", "heap-compat-label");
  ASSERT_NE(by_label, nullptr);
  EXPECT_EQ(by_label->Name(), "heap");
}
#pragma GCC diagnostic pop

// --- v2 API surface, every backend ---

TEST_P(TimerQueueTest, ReschedulePushesExpiryOut) {
  auto queue = Make();
  SimTime fired_at = -1;
  SimTime now = 0;
  const TimerHandle h =
      queue->Schedule(10 * kMillisecond, [&](TimerHandle) { fired_at = now; });
  EXPECT_EQ(queue->Reschedule(h, 50 * kMillisecond), h);
  now = 20 * kMillisecond;
  queue->Advance(now);
  EXPECT_EQ(fired_at, -1) << "fired at the old expiry after reschedule";
  now = 60 * kMillisecond;
  queue->Advance(now);
  EXPECT_EQ(fired_at, 60 * kMillisecond);
  EXPECT_EQ(queue->Size(), 0u);
}

TEST_P(TimerQueueTest, ReschedulePullsExpiryIn) {
  auto queue = Make();
  bool fired = false;
  const TimerHandle h =
      queue->Schedule(kSecond, [&](TimerHandle) { fired = true; });
  EXPECT_EQ(queue->Reschedule(h, 5 * kMillisecond), h);
  queue->Advance(10 * kMillisecond);
  EXPECT_TRUE(fired);
}

TEST_P(TimerQueueTest, RescheduleDeadHandleFails) {
  auto queue = Make();
  const TimerHandle h = queue->Schedule(kMillisecond, [](TimerHandle) {});
  queue->Advance(kSecond);
  EXPECT_EQ(queue->Reschedule(h, 2 * kSecond), kInvalidTimerHandle);
  const TimerHandle h2 = queue->Schedule(kMillisecond, [](TimerHandle) {});
  ASSERT_TRUE(queue->Cancel(h2));
  EXPECT_EQ(queue->Reschedule(h2, 2 * kSecond), kInvalidTimerHandle);
  EXPECT_EQ(queue->Reschedule(kInvalidTimerHandle, kSecond), kInvalidTimerHandle);
  EXPECT_EQ(queue->Size(), 0u);
}

TEST_P(TimerQueueTest, RescheduleKeepsCallback) {
  auto queue = Make();
  int fired = 0;
  const TimerHandle h =
      queue->Schedule(5 * kMillisecond, [&](TimerHandle) { ++fired; });
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(queue->Reschedule(h, (10 + i) * kMillisecond), h);
  }
  queue->Advance(kSecond);
  EXPECT_EQ(fired, 1) << "callback lost or duplicated across reschedules";
}

TEST_P(TimerQueueTest, ScheduleBatchMintsLiveHandles) {
  auto queue = Make();
  int fired = 0;
  std::vector<TimerBatchEntry> entries(100);
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].expiry = static_cast<SimTime>(i + 1) * kMillisecond;
  }
  queue->ScheduleBatch(entries, [&](TimerHandle) { ++fired; });
  EXPECT_EQ(queue->Size(), entries.size());
  std::set<TimerHandle> unique;
  for (const auto& entry : entries) {
    EXPECT_NE(entry.handle, kInvalidTimerHandle);
    unique.insert(entry.handle);
  }
  EXPECT_EQ(unique.size(), entries.size()) << "batch minted duplicate handles";
  // Batch-minted handles cancel and reschedule like any other.
  EXPECT_TRUE(queue->Cancel(entries[0].handle));
  EXPECT_EQ(queue->Reschedule(entries[1].handle, kSecond), entries[1].handle);
  queue->Advance(2 * kSecond);
  EXPECT_EQ(fired, static_cast<int>(entries.size()) - 1);
  EXPECT_EQ(queue->Size(), 0u);
}

TEST_P(TimerQueueTest, CancelBatchCountsOnlyLive) {
  auto queue = Make();
  std::vector<TimerBatchEntry> entries(10);
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].expiry = kSecond + static_cast<SimTime>(i) * kMillisecond;
  }
  queue->ScheduleBatch(entries, [](TimerHandle) {});
  std::vector<TimerHandle> handles;
  for (const auto& entry : entries) {
    handles.push_back(entry.handle);
  }
  handles.push_back(kInvalidTimerHandle);  // skipped, not an error
  handles.push_back(entries[0].handle);    // duplicate: dead on second visit
  EXPECT_EQ(queue->CancelBatch(handles), entries.size());
  EXPECT_EQ(queue->Size(), 0u);
  EXPECT_EQ(queue->CancelBatch(handles), 0u);
}

TEST_P(TimerQueueTest, MemoryBytesTracksPopulation) {
  auto queue = Make();
  const size_t empty_bytes = queue->MemoryBytes();
  std::vector<TimerBatchEntry> entries(1000);
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].expiry = static_cast<SimTime>(i + 1) * kMillisecond;
  }
  queue->ScheduleBatch(entries, [](TimerHandle) {});
  const size_t loaded_bytes = queue->MemoryBytes();
  EXPECT_GT(loaded_bytes, empty_bytes);
  // At least a node's worth per pending timer, and not wildly more than a
  // few cache lines each.
  EXPECT_GE(loaded_bytes - empty_bytes, entries.size() * sizeof(SimTime));
  EXPECT_LE(loaded_bytes / entries.size(), 4096u);
}

// --- the monotonic Advance contract ---

TEST_P(TimerQueueTest, BackwardsAdvanceIsHandled) {
  auto queue = Make();
  bool fired = false;
  queue->Schedule(30 * kMillisecond, [&](TimerHandle) { fired = true; });
  EXPECT_EQ(queue->Advance(20 * kMillisecond), 0u);
  EXPECT_EQ(queue->advance_watermark(), 20 * kMillisecond);
  EXPECT_EQ(queue->backwards_advances(), 0u);
#ifndef NDEBUG
  // Debug builds abort: a backwards clock is a caller bug.
  EXPECT_DEATH(queue->Advance(10 * kMillisecond), "backwards");
#else
  // Release builds clamp to the high-water mark and count the violation;
  // the wheel state must stay intact and the timer must still fire on time.
  EXPECT_EQ(queue->Advance(10 * kMillisecond), 0u);
  EXPECT_EQ(queue->backwards_advances(), 1u);
  EXPECT_EQ(queue->advance_watermark(), 20 * kMillisecond);
  EXPECT_FALSE(fired);
  queue->Advance(40 * kMillisecond);
  EXPECT_TRUE(fired);
  EXPECT_EQ(queue->backwards_advances(), 1u);
#endif
}

// --- lawn-specific behaviour ---

TEST(LawnTest, BucketsPerDistinctTtl) {
  LawnTimerQueue lawn;
  EXPECT_EQ(lawn.ttl_buckets(), 0u);
  // The paper's observation: many timers, few distinct timeout values.
  for (int i = 0; i < 100; ++i) {
    lawn.Schedule(30 * kSecond, [](TimerHandle) {});
    lawn.Schedule(75 * kSecond, [](TimerHandle) {});
    lawn.Schedule(200 * kMillisecond, [](TimerHandle) {});
  }
  EXPECT_EQ(lawn.Size(), 300u);
  EXPECT_EQ(lawn.ttl_buckets(), 3u);
}

TEST(LawnTest, QuantisesToAtLeastOneTick) {
  LawnTimerQueue lawn(kMillisecond);
  bool fired = false;
  // Zero (and past) TTLs round up to one tick: never fire within this
  // Advance, always on the next tick boundary.
  lawn.Schedule(0, [&](TimerHandle) { fired = true; });
  EXPECT_EQ(lawn.NextExpiry(), kMillisecond);
  lawn.Advance(kMillisecond - 1);
  EXPECT_FALSE(fired);
  lawn.Advance(kMillisecond);
  EXPECT_TRUE(fired);
}

TEST(LawnTest, FifoWithinTtlFiresInScheduleOrder) {
  LawnTimerQueue lawn;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    lawn.Schedule(kSecond, [&order, i](TimerHandle) { order.push_back(i); });
  }
  lawn.Advance(2 * kSecond);
  ASSERT_EQ(order.size(), 10u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()))
      << "same-TTL timers must fire in schedule (FIFO) order";
}

// Implementation-specific behaviour.

TEST(HierarchicalWheelTest, CascadesLongTimers) {
  HierarchicalWheelTimerQueue wheel(kMillisecond);
  bool fired = false;
  // 300 ticks out: lives in level 1 and must cascade into level 0.
  wheel.Schedule(300 * kMillisecond, [&](TimerHandle) { fired = true; });
  wheel.Advance(299 * kMillisecond);
  EXPECT_FALSE(fired);
  EXPECT_GT(wheel.cascades(), 0u);
  wheel.Advance(301 * kMillisecond);
  EXPECT_TRUE(fired);
}

TEST(HierarchicalWheelTest, ClampsBeyondHorizon) {
  HierarchicalWheelTimerQueue wheel(kMillisecond);
  bool fired = false;
  // Far beyond level 3's 2^26-tick horizon: clamped, fires at the horizon.
  wheel.Schedule(static_cast<SimTime>(1) << 40, [&](TimerHandle) { fired = true; });
  wheel.Advance((1u << 26) * kMillisecond);
  EXPECT_TRUE(fired);
}

TEST(HashedWheelTest, SkipsOtherRevolutions) {
  HashedWheelTimerQueue wheel(kMillisecond, 16);
  int fired = 0;
  // Two timers in the same slot, one revolution apart.
  wheel.Schedule(5 * kMillisecond, [&](TimerHandle) { ++fired; });
  wheel.Schedule(21 * kMillisecond, [&](TimerHandle) { ++fired; });
  wheel.Advance(10 * kMillisecond);
  EXPECT_EQ(fired, 1);
  wheel.Advance(30 * kMillisecond);
  EXPECT_EQ(fired, 2);
  EXPECT_GT(wheel.entries_examined(), 0u);
}

// --- cached NextExpiry regression (vs the reference full scan) ---

// Randomized op sequence asserting the incrementally maintained minimum is
// always byte-identical to the naive scan the seed implementation used.
template <typename Wheel>
void RunNextExpiryCacheRegression(Wheel* wheel, uint64_t seed) {
  Rng rng(seed);
  std::vector<TimerHandle> live;
  SimTime now = 0;
  ASSERT_EQ(wheel->NextExpiry(), kNeverTime);
  for (int step = 0; step < 3000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.5) {
      live.push_back(wheel->Schedule(now + rng.UniformInt(0, 400 * kMillisecond),
                                     [](TimerHandle) {}));
    } else if (roll < 0.8 && !live.empty()) {
      const size_t victim =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      wheel->Cancel(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    } else {
      now += rng.UniformInt(0, 30 * kMillisecond);
      wheel->Advance(now);
    }
    ASSERT_EQ(wheel->NextExpiry(), wheel->NextExpiryScan()) << "step " << step;
  }
  // Cancel-of-minimum and fire-of-minimum paths must have forced rescans,
  // or the cache was never actually exercised.
  EXPECT_GT(wheel->next_expiry_scans(), 0u);
}

TEST(HierarchicalWheelTest, NextExpiryCacheMatchesReferenceScan) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    HierarchicalWheelTimerQueue wheel(kMillisecond);
    RunNextExpiryCacheRegression(&wheel, seed);
  }
}

TEST(HashedWheelTest, NextExpiryCacheMatchesReferenceScan) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    HashedWheelTimerQueue wheel(kMillisecond, 64);
    RunNextExpiryCacheRegression(&wheel, seed);
  }
}

TEST(HierarchicalWheelTest, NextExpiryCachedBetweenQueries) {
  HierarchicalWheelTimerQueue wheel(kMillisecond);
  for (int i = 0; i < 1000; ++i) {
    wheel.Schedule((10 + i) * kMillisecond, [](TimerHandle) {});
  }
  const SimTime first = wheel.NextExpiry();
  const uint64_t scans = wheel.next_expiry_scans();
  // Repeated queries (the dynticks reprogram pattern) and later-than-min
  // schedules must not rescan.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(wheel.NextExpiry(), first);
    wheel.Schedule(kSecond + i * kMillisecond, [](TimerHandle) {});
  }
  EXPECT_EQ(wheel.next_expiry_scans(), scans);
}

// --- cascade boundaries ---

// A timer landing exactly at a level horizon must sit in the next level up
// and still fire on time once cascaded down.
TEST(HierarchicalWheelTest, TimerAtExactLevelHorizonFiresOnTime) {
  // Horizons (in ticks) of levels 0..2, as laid out in the .cc tables.
  for (const uint64_t horizon : {uint64_t{1} << 8, uint64_t{1} << 14, uint64_t{1} << 20}) {
    HierarchicalWheelTimerQueue wheel(kMillisecond);
    const SimTime expiry = static_cast<SimTime>(horizon) * kMillisecond;
    SimTime fired_at = -1;
    SimTime now = 0;
    wheel.Schedule(expiry, [&](TimerHandle) { fired_at = now; });
    now = expiry - kMillisecond;
    wheel.Advance(now);
    EXPECT_EQ(fired_at, -1) << "fired early at horizon " << horizon;
    EXPECT_EQ(wheel.Size(), 1u);
    now = expiry;
    wheel.Advance(now);
    EXPECT_EQ(fired_at, expiry) << "late/no fire at horizon " << horizon;
    EXPECT_EQ(wheel.Size(), 0u);
    EXPECT_EQ(wheel.NextExpiry(), kNeverTime);
  }
}

// A timer whose slot cascades on the very tick it becomes due must fire on
// that same tick, not a revolution later.
TEST(HierarchicalWheelTest, CascadeOnDueTickFiresSameTick) {
  HierarchicalWheelTimerQueue wheel(kMillisecond);
  // Tick 512 = 2 * 256: level-0 hand wraps exactly when it becomes due, so
  // the entry cascades from level 1 and fires within the same RunTick.
  const SimTime expiry = 512 * kMillisecond;
  SimTime fired_at = -1;
  SimTime now = 0;
  wheel.Schedule(expiry, [&](TimerHandle) { fired_at = now; });
  now = expiry - kMillisecond;
  wheel.Advance(now);
  EXPECT_EQ(fired_at, -1);
  now = expiry;
  wheel.Advance(now);
  EXPECT_EQ(fired_at, expiry);
  EXPECT_GT(wheel.cascades(), 0u);
}

// After cascades and fires, the handle index must stay consistent with
// size_: every live handle cancels exactly once, then the wheel is empty.
TEST(HierarchicalWheelTest, IndexStaysConsistentWithSizeAcrossCascades) {
  HierarchicalWheelTimerQueue wheel(kMillisecond);
  Rng rng(17);
  std::map<TimerHandle, SimTime> live;
  int fired = 0;
  for (int i = 0; i < 500; ++i) {
    // Mix of horizons, deliberately including exact cascade boundaries.
    const SimTime expiry = (i % 7 == 0)
                               ? (256 + 256 * (i % 3)) * kMillisecond
                               : rng.UniformInt(kMillisecond, 3000 * kMillisecond);
    const TimerHandle h = wheel.Schedule(expiry, [&fired](TimerHandle) { ++fired; });
    live[h] = expiry;
  }
  wheel.Advance(700 * kMillisecond);  // past two cascade points
  EXPECT_EQ(wheel.Size(), live.size() - static_cast<size_t>(fired));
  size_t canceled = 0;
  for (const auto& [handle, expiry] : live) {
    if (expiry > 700 * kMillisecond + kMillisecond) {
      // Still pending: the index must know it, exactly once.
      EXPECT_TRUE(wheel.Cancel(handle)) << "live handle missing from index";
      EXPECT_FALSE(wheel.Cancel(handle));
      ++canceled;
    }
  }
  EXPECT_EQ(wheel.Size(), live.size() - static_cast<size_t>(fired) - canceled);
  wheel.Advance(4000 * kMillisecond);
  EXPECT_EQ(wheel.Size(), 0u);
  EXPECT_EQ(static_cast<size_t>(fired) + canceled, live.size());
  EXPECT_EQ(wheel.NextExpiry(), kNeverTime);
}

TEST(TreeQueueTest, ExactNanosecondResolution) {
  TreeTimerQueue tree;
  std::vector<SimTime> fired;
  tree.Schedule(1000, [&](TimerHandle) { fired.push_back(1000); });
  tree.Schedule(1001, [&](TimerHandle) { fired.push_back(1001); });
  tree.Advance(1000);
  ASSERT_EQ(fired.size(), 1u);
  tree.Advance(1001);
  ASSERT_EQ(fired.size(), 2u);
}

}  // namespace
}  // namespace tempo

namespace tempo {
namespace {

// Granularity sweep: both wheels must honour never-fire-early and
// fire-within-one-tick at any configured tick width.
class WheelGranularityTest
    : public ::testing::TestWithParam<std::tuple<bool, SimDuration>> {};

TEST_P(WheelGranularityTest, QuantisationBoundsHold) {
  const auto& [hierarchical, granularity] = GetParam();
  std::unique_ptr<TimerQueue> wheel;
  if (hierarchical) {
    wheel = std::make_unique<HierarchicalWheelTimerQueue>(granularity);
  } else {
    wheel = std::make_unique<HashedWheelTimerQueue>(granularity, 64);
  }
  Rng rng(13);
  struct Expect {
    SimTime expiry;
    SimTime fired_at = -1;
  };
  std::vector<Expect> expects;
  std::vector<Expect*> slots;
  SimTime now = 0;
  for (int i = 0; i < 300; ++i) {
    expects.push_back(Expect{rng.UniformInt(1, 400) * granularity / 2});
  }
  for (auto& e : expects) {
    wheel->Schedule(e.expiry, [&e, &now](TimerHandle) { e.fired_at = now; });
  }
  while (wheel->Size() > 0) {
    now += granularity;
    wheel->Advance(now);
  }
  for (const auto& e : expects) {
    ASSERT_GE(e.fired_at, e.expiry - granularity) << "fired early";
    EXPECT_LE(e.fired_at, e.expiry + 2 * granularity) << "fired too late";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Granularities, WheelGranularityTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(100 * kMicrosecond, kMillisecond,
                                         4 * kMillisecond, 100 * kMillisecond)));

}  // namespace
}  // namespace tempo
