// Unit tests for the tracing layer: call-site interning, buffers, codec.

#include <gtest/gtest.h>

#include "src/sim/cpu.h"
#include "src/trace/buffer.h"
#include "src/trace/callsite.h"
#include "src/trace/codec.h"
#include "src/trace/record.h"

namespace tempo {
namespace {

TraceRecord MakeRecord(SimTime at, TimerOp op, TimerId timer) {
  TraceRecord r;
  r.timestamp = at;
  r.op = op;
  r.timer = timer;
  return r;
}

// --- CallsiteRegistry ---

TEST(CallsiteTest, InternIsIdempotent) {
  CallsiteRegistry registry;
  const CallsiteId a = registry.Intern("tcp/retransmit");
  const CallsiteId b = registry.Intern("tcp/retransmit");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.Name(a), "tcp/retransmit");
}

TEST(CallsiteTest, UnknownIsSlotZero) {
  CallsiteRegistry registry;
  EXPECT_EQ(registry.Name(kUnknownCallsite), "?");
  EXPECT_EQ(registry.Parent(kUnknownCallsite), kUnknownCallsite);
}

TEST(CallsiteTest, DistinctNamesGetDistinctIds) {
  CallsiteRegistry registry;
  EXPECT_NE(registry.Intern("a"), registry.Intern("b"));
}

TEST(CallsiteTest, ProvenanceChainFollowsParents) {
  CallsiteRegistry registry;
  const CallsiteId ip = registry.Intern("net/ip");
  const CallsiteId tcp = registry.Intern("net/tcp", ip);
  const CallsiteId app = registry.Intern("app/rpc", tcp);
  const auto chain = registry.Chain(app);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], app);
  EXPECT_EQ(chain[1], tcp);
  EXPECT_EQ(chain[2], ip);
}

TEST(CallsiteTest, ReinternKeepsOriginalParent) {
  CallsiteRegistry registry;
  const CallsiteId parent = registry.Intern("parent");
  const CallsiteId child = registry.Intern("child", parent);
  registry.Intern("child", kUnknownCallsite);  // no-op
  EXPECT_EQ(registry.Parent(child), parent);
}

TEST(CallsiteTest, StackInterningDeduplicates) {
  CallsiteRegistry registry;
  const CallsiteId a = registry.Intern("a");
  const CallsiteId b = registry.Intern("b");
  const StackId s1 = registry.InternStack({a, b});
  const StackId s2 = registry.InternStack({a, b});
  const StackId s3 = registry.InternStack({b, a});
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, s3);
  EXPECT_EQ(registry.Stack(s1), (std::vector<CallsiteId>{a, b}));
}

TEST(CallsiteTest, EmptyStackIsSlotZero) {
  CallsiteRegistry registry;
  EXPECT_EQ(registry.InternStack({}), kEmptyStack);
  EXPECT_TRUE(registry.Stack(kEmptyStack).empty());
}

// --- RelayBuffer ---

TEST(RelayBufferTest, StoresRecordsInOrder) {
  RelayBuffer buffer(16);
  for (int i = 0; i < 5; ++i) {
    buffer.Log(MakeRecord(i, TimerOp::kSet, 1));
  }
  ASSERT_EQ(buffer.records().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(buffer.records()[static_cast<size_t>(i)].timestamp, i);
  }
}

TEST(RelayBufferTest, OverflowDropsNewKeepsOld) {
  // relayfs semantics: "new events cannot overwrite old logs".
  RelayBuffer buffer(3);
  for (int i = 0; i < 10; ++i) {
    buffer.Log(MakeRecord(i, TimerOp::kSet, 1));
  }
  ASSERT_EQ(buffer.records().size(), 3u);
  EXPECT_EQ(buffer.records()[0].timestamp, 0);
  EXPECT_EQ(buffer.records()[2].timestamp, 2);
  EXPECT_EQ(buffer.dropped(), 7u);
}

TEST(RelayBufferTest, ChargesCpuCyclesPerRecord) {
  Cpu cpu;
  RelayBuffer buffer(16);
  buffer.AttachCpu(&cpu);  // default: the paper's 236 cycles
  buffer.Log(MakeRecord(0, TimerOp::kSet, 1));
  buffer.Log(MakeRecord(1, TimerOp::kCancel, 1));
  EXPECT_EQ(cpu.charged_cycles(), 2 * kPaperLogCostCycles);
}

TEST(RelayBufferTest, DroppedRecordsStillChargeCycles) {
  Cpu cpu;
  RelayBuffer buffer(1);
  buffer.AttachCpu(&cpu, 100);
  buffer.Log(MakeRecord(0, TimerOp::kSet, 1));
  buffer.Log(MakeRecord(1, TimerOp::kSet, 1));
  EXPECT_EQ(cpu.charged_cycles(), 200u);
}

TEST(RelayBufferTest, TakeRecordsResets) {
  RelayBuffer buffer(2);
  buffer.Log(MakeRecord(0, TimerOp::kSet, 1));
  buffer.Log(MakeRecord(1, TimerOp::kSet, 1));
  buffer.Log(MakeRecord(2, TimerOp::kSet, 1));
  EXPECT_EQ(buffer.dropped(), 1u);
  auto records = buffer.TakeRecords();
  EXPECT_EQ(records.size(), 2u);
  EXPECT_TRUE(buffer.records().empty());
  EXPECT_EQ(buffer.dropped(), 0u);
  buffer.Log(MakeRecord(3, TimerOp::kSet, 1));
  EXPECT_EQ(buffer.records().size(), 1u);
}

TEST(NullSinkTest, CountsButDiscards) {
  NullSink sink;
  sink.Log(MakeRecord(0, TimerOp::kSet, 1));
  sink.Log(MakeRecord(1, TimerOp::kSet, 1));
  EXPECT_EQ(sink.discarded(), 2u);
}

// Pins the drop/charge contract across all three sinks:
//   * NullSink counts every record as discarded (by design, not overflow)
//     and never charges the CPU — it is the unmodified-kernel baseline.
//   * RelayBuffer charges per Log attempt (relayfs pays the instrumentation
//     cost before discovering the buffer is full) and drops only on
//     overflow, keeping old records.
//   * EtwSession charges per Log and never drops.
TEST(SinkAccountingTest, NullSinkNeverChargesCpu) {
  Cpu cpu;
  NullSink sink;  // no AttachCpu API: the baseline cannot charge by design
  sink.Log(MakeRecord(0, TimerOp::kSet, 1));
  EXPECT_EQ(sink.discarded(), 1u);
  EXPECT_EQ(cpu.charged_cycles(), 0u);
}

TEST(SinkAccountingTest, RelayBufferChargesEvenForDroppedRecords) {
  Cpu cpu;
  RelayBuffer buffer(2);
  buffer.AttachCpu(&cpu, 100);
  for (int i = 0; i < 5; ++i) {
    buffer.Log(MakeRecord(i, TimerOp::kSet, 1));
  }
  EXPECT_EQ(buffer.logged(), 2u);
  EXPECT_EQ(buffer.dropped(), 3u);
  EXPECT_EQ(cpu.charged_cycles(), 500u);  // all five attempts paid the cost
  // Old records survive; the dropped ones were the new arrivals.
  EXPECT_EQ(buffer.records()[0].timestamp, 0);
  EXPECT_EQ(buffer.records()[1].timestamp, 1);
}

TEST(SinkAccountingTest, EtwSessionChargesAndNeverDrops) {
  Cpu cpu;
  EtwSession session;
  session.AttachCpu(&cpu, kPaperLogCostCycles);
  for (int i = 0; i < 10; ++i) {
    session.Log(MakeRecord(i, TimerOp::kSet, 1));
  }
  EXPECT_EQ(session.records().size(), 10u);
  EXPECT_EQ(cpu.charged_cycles(), 10 * kPaperLogCostCycles);
}

TEST(EtwSessionTest, Unbounded) {
  EtwSession session;
  for (int i = 0; i < 1000; ++i) {
    session.Log(MakeRecord(i, TimerOp::kSet, 1));
  }
  EXPECT_EQ(session.records().size(), 1000u);
}

TEST(EtwSessionTest, GrowthBeyondInternalRingLosesNothing) {
  // The session is backed by a fixed relay ring (32Ki records by default)
  // that spills into the materialized vector when it fills; growth far past
  // the ring must stay lossless and ordered.
  EtwSession session;
  constexpr int kRecords = 100000;
  for (int i = 0; i < kRecords; ++i) {
    session.Log(MakeRecord(i, TimerOp::kSet, 1));
  }
  ASSERT_EQ(session.records().size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_EQ(session.records()[static_cast<size_t>(i)].timestamp, i);
  }
  // TakeRecords hands everything over and resets for the next run.
  auto taken = session.TakeRecords();
  EXPECT_EQ(taken.size(), static_cast<size_t>(kRecords));
  EXPECT_TRUE(session.records().empty());
  session.Log(MakeRecord(kRecords, TimerOp::kSet, 1));
  EXPECT_EQ(session.records().size(), 1u);
}

TEST(EtwSessionTest, AttachCpuChargesEveryRecordAcrossGrowth) {
  // Cycle charging must cover every Log, including the ones that trigger a
  // ring spill on their way in.
  Cpu cpu;
  EtwSession session;
  session.AttachCpu(&cpu, 10);
  constexpr int kRecords = 50000;  // > the 32Ki internal ring
  for (int i = 0; i < kRecords; ++i) {
    session.Log(MakeRecord(i, TimerOp::kSet, 1));
  }
  EXPECT_EQ(session.records().size(), static_cast<size_t>(kRecords));
  EXPECT_EQ(cpu.charged_cycles(), static_cast<uint64_t>(kRecords) * 10);
}

// --- codec ---

class CodecRoundTripTest : public ::testing::TestWithParam<TimerOp> {};

TEST_P(CodecRoundTripTest, RoundTripsAllFields) {
  TraceRecord r;
  r.timestamp = 123456789012345;
  r.timer = 0xdeadbeefcafeULL;
  r.timeout = 204 * kMillisecond;
  r.expiry = 123456789012345 + 204 * kMillisecond;
  r.callsite = 17;
  r.stack = 99;
  r.pid = 42;
  r.tid = 77;
  r.op = GetParam();
  r.flags = kFlagUser | kFlagDeferrable;

  std::vector<uint8_t> bytes;
  EncodeRecord(r, &bytes);
  ASSERT_EQ(bytes.size(), kEncodedRecordSize);
  auto decoded = DecodeRecord(bytes.data());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->timestamp, r.timestamp);
  EXPECT_EQ(decoded->timer, r.timer);
  EXPECT_EQ(decoded->timeout, r.timeout);
  // Expiry is quantised to 1.024 us in the binary encoding.
  EXPECT_NEAR(static_cast<double>(decoded->expiry), static_cast<double>(r.expiry), 1024.0);
  EXPECT_EQ(decoded->callsite, r.callsite);
  EXPECT_EQ(decoded->stack, r.stack);
  EXPECT_EQ(decoded->pid, r.pid);
  EXPECT_EQ(decoded->tid, r.tid);
  EXPECT_EQ(decoded->op, r.op);
  EXPECT_EQ(decoded->flags, r.flags);
}

INSTANTIATE_TEST_SUITE_P(AllOps, CodecRoundTripTest,
                         ::testing::Values(TimerOp::kInit, TimerOp::kSet, TimerOp::kCancel,
                                           TimerOp::kExpire, TimerOp::kBlock,
                                           TimerOp::kUnblock));

TEST(CodecTest, TraceRoundTrip) {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 100; ++i) {
    TraceRecord r = MakeRecord(i * kMillisecond, TimerOp::kSet, static_cast<TimerId>(i));
    r.timeout = i * kMicrosecond;
    records.push_back(r);
  }
  const auto bytes = EncodeTrace(records);
  EXPECT_EQ(bytes.size(), records.size() * kEncodedRecordSize);
  const auto decoded = DecodeTrace(bytes);
  ASSERT_EQ(decoded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].timestamp, records[i].timestamp);
    EXPECT_EQ(decoded[i].timer, records[i].timer);
  }
}

TEST(CodecTest, CorruptOpStopsDecoding) {
  std::vector<TraceRecord> records = {MakeRecord(0, TimerOp::kSet, 1),
                                      MakeRecord(1, TimerOp::kSet, 2)};
  auto bytes = EncodeTrace(records);
  bytes[40] = 0xff;  // corrupt the first record's op
  EXPECT_TRUE(DecodeTrace(bytes).empty());
}

TEST(CodecTest, TrailingPartialRecordIgnored) {
  std::vector<TraceRecord> records = {MakeRecord(0, TimerOp::kSet, 1)};
  auto bytes = EncodeTrace(records);
  bytes.resize(bytes.size() + 10, 0);  // garbage tail
  EXPECT_EQ(DecodeTrace(bytes).size(), 1u);
}

TEST(CodecTest, FormatRecordMentionsOpAndCallsite) {
  CallsiteRegistry registry;
  TraceRecord r = MakeRecord(kSecond, TimerOp::kCancel, 3);
  r.callsite = registry.Intern("ide/command_timeout");
  const std::string line = FormatRecord(r, registry);
  EXPECT_NE(line.find("cancel"), std::string::npos);
  EXPECT_NE(line.find("ide/command_timeout"), std::string::npos);
}

TEST(RecordTest, OpNames) {
  EXPECT_STREQ(TimerOpName(TimerOp::kInit), "init");
  EXPECT_STREQ(TimerOpName(TimerOp::kSet), "set");
  EXPECT_STREQ(TimerOpName(TimerOp::kCancel), "cancel");
  EXPECT_STREQ(TimerOpName(TimerOp::kExpire), "expire");
  EXPECT_STREQ(TimerOpName(TimerOp::kBlock), "block");
  EXPECT_STREQ(TimerOpName(TimerOp::kUnblock), "unblock");
}

}  // namespace
}  // namespace tempo
