// Tests for trace file serialisation and the provenance analysis.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/analysis/provenance.h"
#include "src/analysis/summary.h"
#include "src/trace/file.h"

namespace tempo {
namespace {

std::vector<TraceRecord> MakeTrace(CallsiteRegistry* callsites) {
  const CallsiteId select = callsites->Intern("app/select");
  const CallsiteId tcp = callsites->Intern("net/tcp");
  const CallsiteId rtx = callsites->Intern("net/tcp_retransmit", tcp);
  std::vector<TraceRecord> records;
  for (int i = 0; i < 50; ++i) {
    TraceRecord set;
    set.timestamp = i * kSecond;
    set.timer = static_cast<TimerId>(1 + i % 3);
    set.timeout = 204 * kMillisecond;
    set.expiry = set.timestamp + set.timeout;
    set.callsite = i % 2 == 0 ? select : rtx;
    set.pid = static_cast<Pid>(i % 2);
    set.op = TimerOp::kSet;
    set.flags = i % 2 == 0 ? kFlagUser : uint16_t{0};
    records.push_back(set);
    TraceRecord end = set;
    end.timestamp += 100 * kMillisecond;
    end.op = i % 3 == 0 ? TimerOp::kCancel : TimerOp::kExpire;
    records.push_back(end);
  }
  return records;
}

TEST(TraceFileTest, SerializeDeserializeRoundTrip) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites);
  const auto bytes = SerializeTrace(records, callsites);
  const auto loaded = DeserializeTrace(bytes);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded->records[i].timestamp, records[i].timestamp);
    EXPECT_EQ(loaded->records[i].timer, records[i].timer);
    EXPECT_EQ(loaded->records[i].callsite, records[i].callsite);
    EXPECT_EQ(static_cast<int>(loaded->records[i].op),
              static_cast<int>(records[i].op));
  }
  // The call-site table round-trips with identical ids, names and parents.
  ASSERT_EQ(loaded->callsites.size(), callsites.size());
  for (CallsiteId id = 0; id < callsites.size(); ++id) {
    EXPECT_EQ(loaded->callsites.Name(id), callsites.Name(id));
    EXPECT_EQ(loaded->callsites.Parent(id), callsites.Parent(id));
  }
}

TEST(TraceFileTest, AnalysisResultsIdenticalAfterRoundTrip) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites);
  const auto loaded = DeserializeTrace(SerializeTrace(records, callsites));
  ASSERT_TRUE(loaded.has_value());
  const TraceSummary original = Summarize(records, "t");
  const TraceSummary reloaded = Summarize(loaded->records, "t");
  EXPECT_EQ(original.accesses, reloaded.accesses);
  EXPECT_EQ(original.set, reloaded.set);
  EXPECT_EQ(original.expired, reloaded.expired);
  EXPECT_EQ(original.canceled, reloaded.canceled);
  EXPECT_EQ(original.timers, reloaded.timers);
  EXPECT_EQ(original.user_space, reloaded.user_space);
}

TEST(TraceFileTest, BadMagicRejected) {
  CallsiteRegistry callsites;
  auto bytes = SerializeTrace(MakeTrace(&callsites), callsites);
  bytes[0] = 'X';
  EXPECT_FALSE(DeserializeTrace(bytes).has_value());
}

TEST(TraceFileTest, WrongVersionRejected) {
  CallsiteRegistry callsites;
  auto bytes = SerializeTrace(MakeTrace(&callsites), callsites);
  bytes[8] = 99;
  EXPECT_FALSE(DeserializeTrace(bytes).has_value());
}

TEST(TraceFileTest, TruncationRejected) {
  CallsiteRegistry callsites;
  auto bytes = SerializeTrace(MakeTrace(&callsites), callsites);
  bytes.resize(bytes.size() - 17);
  EXPECT_FALSE(DeserializeTrace(bytes).has_value());
}

TEST(TraceFileTest, EmptyTraceRoundTrips) {
  CallsiteRegistry callsites;
  const auto loaded = DeserializeTrace(SerializeTrace({}, callsites));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->records.empty());
}

TEST(TraceFileTest, FileRoundTrip) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites);
  const std::string path = ::testing::TempDir() + "/tempo_trace_test.trc";
  ASSERT_TRUE(WriteTraceFile(path, records, callsites));
  const auto loaded = ReadTraceFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->records.size(), records.size());
  std::remove(path.c_str());
}

TEST(TraceFileTest, MissingFileFails) {
  EXPECT_FALSE(ReadTraceFile("/nonexistent/dir/nope.trc").has_value());
}

// --- provenance ---

TEST(ProvenanceTest, AggregatesAlongParentChains) {
  CallsiteRegistry callsites;
  const CallsiteId ip = callsites.Intern("net/ip");
  const CallsiteId tcp = callsites.Intern("net/tcp", ip);
  const CallsiteId rtx = callsites.Intern("net/tcp_retransmit", tcp);
  const CallsiteId app = callsites.Intern("app/standalone");

  std::vector<TraceRecord> records;
  auto add = [&](CallsiteId site, int count) {
    for (int i = 0; i < count; ++i) {
      TraceRecord r;
      r.timestamp = i;
      r.timer = site * 100ull;
      r.callsite = site;
      r.op = TimerOp::kSet;
      records.push_back(r);
    }
  };
  add(rtx, 10);
  add(tcp, 5);
  add(app, 3);

  const auto forest = BuildProvenanceForest(records, callsites);
  ASSERT_EQ(forest.size(), 2u);
  // net/ip subsumes everything below it: 15 ops.
  EXPECT_EQ(forest[0].name, "net/ip");
  EXPECT_EQ(forest[0].direct_ops, 0u);
  EXPECT_EQ(forest[0].subtree_ops, 15u);
  ASSERT_EQ(forest[0].children.size(), 1u);
  EXPECT_EQ(forest[0].children[0].name, "net/tcp");
  EXPECT_EQ(forest[0].children[0].direct_ops, 5u);
  EXPECT_EQ(forest[0].children[0].subtree_ops, 15u);
  EXPECT_EQ(forest[1].name, "app/standalone");
  EXPECT_EQ(forest[1].subtree_ops, 3u);
}

TEST(ProvenanceTest, BlameWindowMeasuresHeldTime) {
  CallsiteRegistry callsites;
  const CallsiteId slow = callsites.Intern("nfs/backoff");
  const CallsiteId fast = callsites.Intern("tcp/rtx");
  std::vector<TraceRecord> records;
  // slow: pending from 0 to 60 s; fast: pending 10-10.2 s.
  TraceRecord set;
  set.timer = 1;
  set.callsite = slow;
  set.op = TimerOp::kSet;
  set.timeout = 64 * kSecond;
  set.expiry = 64 * kSecond;
  records.push_back(set);
  TraceRecord fset;
  fset.timestamp = 10 * kSecond;
  fset.timer = 2;
  fset.callsite = fast;
  fset.op = TimerOp::kSet;
  fset.timeout = 200 * kMillisecond;
  fset.expiry = fset.timestamp + fset.timeout;
  records.push_back(fset);
  TraceRecord fend = fset;
  fend.timestamp += 200 * kMillisecond;
  fend.op = TimerOp::kExpire;
  records.push_back(fend);
  TraceRecord send;
  send.timestamp = 60 * kSecond;
  send.timer = 1;
  send.op = TimerOp::kCancel;
  records.push_back(send);

  const auto blame = BlameWindow(records, callsites, 5 * kSecond, 30 * kSecond);
  ASSERT_EQ(blame.size(), 2u);
  EXPECT_EQ(blame[0].name, "nfs/backoff");  // sorted by held time
  EXPECT_EQ(blame[0].held, 25 * kSecond);   // clipped to the window
  EXPECT_EQ(blame[1].name, "tcp/rtx");
  EXPECT_EQ(blame[1].held, 200 * kMillisecond);
}

TEST(ProvenanceTest, BlameIncludesOpenEpisodes) {
  CallsiteRegistry callsites;
  const CallsiteId site = callsites.Intern("hung/op");
  TraceRecord set;
  set.timer = 1;
  set.callsite = site;
  set.op = TimerOp::kSet;
  set.timeout = kHour;
  set.expiry = kHour;
  const auto blame = BlameWindow({set}, callsites, 0, 10 * kSecond);
  ASSERT_EQ(blame.size(), 1u);
  EXPECT_EQ(blame[0].held, 10 * kSecond);  // still pending at window end
}

TEST(ProvenanceTest, RenderersIncludeNamesAndCounts) {
  CallsiteRegistry callsites;
  const CallsiteId site = callsites.Intern("subsystem/x");
  TraceRecord r;
  r.timer = 1;
  r.callsite = site;
  r.op = TimerOp::kSet;
  r.timeout = kSecond;
  r.expiry = kSecond;
  const auto forest = BuildProvenanceForest({r}, callsites);
  const std::string tree = RenderProvenance(forest);
  EXPECT_NE(tree.find("subsystem/x"), std::string::npos);
  const auto blame = BlameWindow({r}, callsites, 0, kSecond);
  const std::string report = RenderBlame(blame, 0, kSecond);
  EXPECT_NE(report.find("subsystem/x"), std::string::npos);
}

}  // namespace
}  // namespace tempo
