// Tests for the v3 columnar trace format: stripe codecs, the TempoLz
// block codec, chunk and file round-trips, zone maps, the streaming
// writer, and predicate pushdown through the pipeline.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <random>
#include <sstream>

#include "src/analysis/pipeline.h"
#include "src/analysis/query.h"
#include "src/trace/chunked.h"
#include "src/trace/file.h"
#include "src/trace/predicate.h"
#include "src/trace/stream_writer.h"
#include "src/trace/wire.h"

namespace tempo {
namespace {

constexpr StripeCodec kAllStripeCodecs[] = {
    StripeCodec::kRaw, StripeCodec::kVarint, StripeCodec::kDeltaVarint,
    StripeCodec::kDict, StripeCodec::kRle};

std::vector<uint64_t> DecodeAll(StripeCodec codec, const std::vector<uint8_t>& bytes,
                                size_t count, ChunkParse* parse = nullptr) {
  std::vector<uint64_t> out;
  const ChunkParse result = DecodeStripe(codec, bytes.data(), bytes.size(), count, &out);
  if (parse != nullptr) {
    *parse = result;
  }
  return out;
}

// A trace whose values survive the wire projections (expiry below 2^50
// and 1024-aligned via timeouts in whole ms, pid/tid within int16), so
// decoded records compare equal field-by-field across v1/v2/v3.
std::vector<TraceRecord> MakeTrace(CallsiteRegistry* callsites, size_t n) {
  const CallsiteId select = callsites->Intern("app/select");
  const CallsiteId tcp = callsites->Intern("net/tcp");
  const CallsiteId rtx = callsites->Intern("net/tcp_retransmit", tcp);
  std::mt19937_64 rng(2008);
  std::vector<TraceRecord> records;
  records.reserve(n);
  SimTime now = 0;
  for (size_t i = 0; i < n; ++i) {
    now += static_cast<SimTime>(rng() % (5 * kMillisecond));
    TraceRecord r;
    r.timestamp = now;
    r.timer = static_cast<TimerId>(1 + rng() % 64);
    r.timeout = static_cast<SimDuration>(1 + rng() % 500) * kMillisecond;
    r.expiry = ((r.timestamp + r.timeout) >> 10) << 10;
    r.callsite = rng() % 3 == 0 ? select : rtx;
    r.pid = static_cast<Pid>(rng() % 40);
    r.tid = static_cast<Tid>(r.pid * 2);
    r.op = static_cast<TimerOp>(rng() % 6);
    r.flags = rng() % 2 == 0 ? kFlagUser : uint16_t{0};
    records.push_back(r);
  }
  return records;
}

bool SameRecord(const TraceRecord& a, const TraceRecord& b) {
  return a.timestamp == b.timestamp && a.timer == b.timer && a.timeout == b.timeout &&
         a.expiry == b.expiry && a.callsite == b.callsite && a.stack == b.stack &&
         a.pid == b.pid && a.tid == b.tid && a.op == b.op && a.flags == b.flags;
}

TEST(TraceV3Test, VarintRoundTripExtremes) {
  const uint64_t cases[] = {0,    1,    127,        128,
                            300,  1u << 21,         (1ull << 35) + 7,
                            ~0ull >> 1,             ~0ull,
                            0x8000000000000000ull};
  for (const uint64_t v : cases) {
    std::vector<uint8_t> bytes;
    wire::PutVarint(v, &bytes);
    EXPECT_LE(bytes.size(), 10u);
    uint64_t back = 0;
    const uint8_t* end = wire::GetVarint(bytes.data(), bytes.data() + bytes.size(), &back);
    ASSERT_NE(end, nullptr) << v;
    EXPECT_EQ(end, bytes.data() + bytes.size());
    EXPECT_EQ(back, v);
  }
  // Truncated varint: no terminating byte in range.
  std::vector<uint8_t> bytes;
  wire::PutVarint(~0ull, &bytes);
  uint64_t back = 0;
  EXPECT_EQ(wire::GetVarint(bytes.data(), bytes.data() + bytes.size() - 1, &back), nullptr);
}

TEST(TraceV3Test, ZigZagFoldsSignedOrder) {
  const uint64_t cases[] = {0, 1, static_cast<uint64_t>(-1), 2,
                            static_cast<uint64_t>(-2),       ~0ull >> 1,
                            0x8000000000000000ull,           42};
  for (const uint64_t v : cases) {
    EXPECT_EQ(wire::UnZigZag(wire::ZigZag(v)), v);
  }
  EXPECT_EQ(wire::ZigZag(0), 0u);
  EXPECT_EQ(wire::ZigZag(static_cast<uint64_t>(-1)), 1u);
  EXPECT_EQ(wire::ZigZag(1), 2u);
}

TEST(TraceV3Test, StripeCodecsRoundTripRandomised) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 40; ++round) {
    const size_t n = rng() % 200;
    std::vector<uint64_t> values(n);
    const int shape = round % 5;
    uint64_t acc = rng();
    for (size_t i = 0; i < n; ++i) {
      switch (shape) {
        case 0:  // arbitrary u64, including extremes
          values[i] = rng();
          break;
        case 1:  // small dictionary-friendly set
          values[i] = rng() % 7;
          break;
        case 2:  // long runs
          values[i] = (i / 17) % 3;
          break;
        case 3:  // non-monotonic clock-like walk (deltas both signs)
          acc += rng() % 1000;
          acc -= rng() % 1000;
          values[i] = acc;
          break;
        default:  // extremes mixed with zero
          values[i] = i % 2 == 0 ? ~0ull : 0;
      }
    }
    for (const StripeCodec codec : kAllStripeCodecs) {
      std::vector<uint8_t> bytes;
      EncodeStripe(std::span<const uint64_t>(values), codec, &bytes);
      ChunkParse parse = ChunkParse::kCorrupt;
      const std::vector<uint64_t> back = DecodeAll(codec, bytes, n, &parse);
      ASSERT_EQ(parse, ChunkParse::kOk)
          << "codec " << static_cast<int>(codec) << " shape " << shape;
      EXPECT_EQ(back, values);
    }
    std::vector<uint8_t> best_bytes;
    const StripeCodec best = EncodeStripeBest(std::span<const uint64_t>(values),
                                              &best_bytes);
    ChunkParse parse = ChunkParse::kCorrupt;
    const std::vector<uint64_t> back = DecodeAll(best, best_bytes, n, &parse);
    ASSERT_EQ(parse, ChunkParse::kOk);
    EXPECT_EQ(back, values);
    // Best is never larger than raw.
    EXPECT_LE(best_bytes.size(), n * 8);
  }
}

TEST(TraceV3Test, StripeSingleValueAndEmpty) {
  for (const StripeCodec codec : kAllStripeCodecs) {
    for (const uint64_t v : {uint64_t{0}, uint64_t{1}, ~uint64_t{0}}) {
      std::vector<uint8_t> bytes;
      const std::vector<uint64_t> values = {v};
      EncodeStripe(std::span<const uint64_t>(values), codec, &bytes);
      ChunkParse parse = ChunkParse::kCorrupt;
      EXPECT_EQ(DecodeAll(codec, bytes, 1, &parse), values);
      EXPECT_EQ(parse, ChunkParse::kOk);
    }
    std::vector<uint8_t> bytes;
    EncodeStripe(std::span<const uint64_t>(), codec, &bytes);
    ChunkParse parse = ChunkParse::kCorrupt;
    EXPECT_TRUE(DecodeAll(codec, bytes, 0, &parse).empty());
    EXPECT_EQ(parse, ChunkParse::kOk);
  }
}

TEST(TraceV3Test, StripeTruncationAndGarbageDetected) {
  std::mt19937_64 rng(11);
  std::vector<uint64_t> values(50);
  for (uint64_t& v : values) {
    v = rng();
  }
  for (const StripeCodec codec : kAllStripeCodecs) {
    std::vector<uint8_t> bytes;
    EncodeStripe(std::span<const uint64_t>(values), codec, &bytes);
    // Truncation anywhere must be reported as truncated or corrupt, never
    // accepted.
    std::vector<uint8_t> cut(bytes.begin(), bytes.end() - 1);
    std::vector<uint64_t> out;
    EXPECT_NE(DecodeStripe(codec, cut.data(), cut.size(), values.size(), &out),
              ChunkParse::kOk);
    // Trailing garbage: the stripe must consume its size exactly.
    std::vector<uint8_t> padded = bytes;
    padded.push_back(0);
    out.clear();
    EXPECT_EQ(DecodeStripe(codec, padded.data(), padded.size(), values.size(), &out),
              ChunkParse::kCorrupt);
  }
}

TEST(TraceV3Test, DictAndRleRejectInconsistentContent) {
  // Hand-built dict stripe: two entries, then an index out of range.
  std::vector<uint8_t> dict;
  wire::PutVarint(2, &dict);   // dictionary size
  wire::PutVarint(10, &dict);  // dict[0]
  wire::PutVarint(20, &dict);  // dict[1]
  wire::PutVarint(5, &dict);   // index 5 -> out of range
  wire::PutVarint(0, &dict);
  std::vector<uint64_t> out;
  EXPECT_EQ(DecodeStripe(StripeCodec::kDict, dict.data(), dict.size(), 2, &out),
            ChunkParse::kCorrupt);

  // RLE whose runs overshoot the record count.
  std::vector<uint8_t> rle;
  wire::PutVarint(9, &rle);  // value
  wire::PutVarint(4, &rle);  // run of 4 > count of 2
  out.clear();
  EXPECT_EQ(DecodeStripe(StripeCodec::kRle, rle.data(), rle.size(), 2, &out),
            ChunkParse::kCorrupt);

  // RLE with an explicit zero-length run.
  std::vector<uint8_t> zero;
  wire::PutVarint(9, &zero);
  wire::PutVarint(0, &zero);
  out.clear();
  EXPECT_EQ(DecodeStripe(StripeCodec::kRle, zero.data(), zero.size(), 2, &out),
            ChunkParse::kCorrupt);
}

TEST(TraceV3Test, TempoLzRoundTripsBuffers) {
  const BlockCodec* lz = GetBlockCodec(BlockCodecId::kTempoLz);
  ASSERT_NE(lz, nullptr);
  std::mt19937_64 rng(13);
  for (const size_t size : {size_t{0}, size_t{1}, size_t{4}, size_t{100},
                            size_t{65535}, size_t{70000}, size_t{200000}}) {
    for (const int shape : {0, 1, 2}) {
      std::vector<uint8_t> raw(size);
      for (size_t i = 0; i < size; ++i) {
        switch (shape) {
          case 0:  // highly compressible
            raw[i] = static_cast<uint8_t>(i / 64 % 4);
            break;
          case 1:  // periodic (long-distance matches)
            raw[i] = static_cast<uint8_t>(i % 251);
            break;
          default:  // incompressible
            raw[i] = static_cast<uint8_t>(rng());
        }
      }
      std::vector<uint8_t> packed;
      lz->Compress(raw.data(), raw.size(), &packed);
      std::vector<uint8_t> back(raw.size());
      ASSERT_TRUE(lz->Decompress(packed.data(), packed.size(), back.data(), back.size()))
          << "size " << size << " shape " << shape;
      EXPECT_EQ(back, raw);
      if (shape == 0 && size >= 100) {
        EXPECT_LT(packed.size(), raw.size());
      }
    }
  }
}

TEST(TraceV3Test, TempoLzRejectsCorruptStreams) {
  const BlockCodec* lz = GetBlockCodec(BlockCodecId::kTempoLz);
  ASSERT_NE(lz, nullptr);
  std::vector<uint8_t> raw(4096);
  for (size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<uint8_t>(i / 16);
  }
  std::vector<uint8_t> packed;
  lz->Compress(raw.data(), raw.size(), &packed);
  std::vector<uint8_t> out(raw.size());
  // Wrong declared size (too large and too small).
  EXPECT_FALSE(lz->Decompress(packed.data(), packed.size(), out.data(), out.size() - 1));
  std::vector<uint8_t> big(raw.size() + 1);
  EXPECT_FALSE(lz->Decompress(packed.data(), packed.size(), big.data(), big.size()));
  // Truncated stream.
  EXPECT_FALSE(lz->Decompress(packed.data(), packed.size() / 2, out.data(), out.size()));
  // An offset of zero is never valid.
  std::vector<uint8_t> zero_offset = {0x04, 'a', 'b', 'c', 'd', 0x00, 0x00};
  EXPECT_FALSE(lz->Decompress(zero_offset.data(), zero_offset.size(), out.data(), 8));
}

TEST(TraceV3Test, UnknownBlockCodecIsNull) {
  EXPECT_EQ(GetBlockCodec(static_cast<BlockCodecId>(200)), nullptr);
  EXPECT_EQ(GetBlockCodec(BlockCodecId::kNone), nullptr);
}

TEST(TraceV3Test, ChunkRoundTripAndZone) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites, 500);
  for (const BlockCodecId codec : {BlockCodecId::kNone, BlockCodecId::kTempoLz}) {
    std::vector<uint8_t> bytes;
    ChunkZone zone;
    EncodeV3Chunk(std::span<const TraceRecord>(records), codec, &bytes, &zone);
    ASSERT_TRUE(zone.valid);
    EXPECT_EQ(zone.min_timestamp, records.front().timestamp);
    EXPECT_EQ(zone.max_timestamp, records.back().timestamp);
    uint8_t expected_ops = 0;
    for (const TraceRecord& r : records) {
      EXPECT_NE(zone.pid_digest & PidDigestBit(r.pid), 0u);
      expected_ops |= static_cast<uint8_t>(1u << static_cast<uint8_t>(r.op));
    }
    EXPECT_EQ(zone.op_mask, expected_ops);

    V3DecodeScratch scratch;
    std::vector<TraceRecord> back;
    ASSERT_EQ(DecodeV3Chunk(bytes.data(), bytes.size(),
                            static_cast<uint32_t>(records.size()), &scratch, &back),
              ChunkParse::kOk);
    ASSERT_EQ(back.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      EXPECT_TRUE(SameRecord(back[i], records[i])) << i;
    }
  }
}

TEST(TraceV3Test, ChunkProjectionDecodesOnlyRequestedFields) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites, 400);
  const TraceRecord defaults;
  for (const BlockCodecId codec : {BlockCodecId::kNone, BlockCodecId::kTempoLz}) {
    std::vector<uint8_t> bytes;
    ChunkZone zone;
    EncodeV3Chunk(std::span<const TraceRecord>(records), codec, &bytes, &zone);
    V3DecodeScratch scratch;
    // Each field alone: the projected field round-trips, every other
    // field holds the TraceRecord default.
    for (int f = 0; f < 10; ++f) {
      const uint16_t mask = static_cast<uint16_t>(1u << f);
      std::vector<TraceRecord> back;
      ASSERT_EQ(DecodeV3Chunk(bytes.data(), bytes.size(),
                              static_cast<uint32_t>(records.size()), &scratch, &back,
                              mask),
                ChunkParse::kOk)
          << f;
      ASSERT_EQ(back.size(), records.size());
      for (size_t i = 0; i < records.size(); ++i) {
        const TraceRecord& want = records[i];
        const TraceRecord& got = back[i];
        EXPECT_EQ(got.timestamp, mask & kFieldTimestamp ? want.timestamp
                                                        : defaults.timestamp);
        EXPECT_EQ(got.timer, mask & kFieldTimer ? want.timer : defaults.timer);
        EXPECT_EQ(got.timeout, mask & kFieldTimeout ? want.timeout : defaults.timeout);
        EXPECT_EQ(got.expiry, mask & kFieldExpiry ? want.expiry : defaults.expiry);
        EXPECT_EQ(got.callsite,
                  mask & kFieldCallsite ? want.callsite : defaults.callsite);
        EXPECT_EQ(got.stack, mask & kFieldStack ? want.stack : defaults.stack);
        EXPECT_EQ(got.pid, mask & kFieldPid ? want.pid : defaults.pid);
        EXPECT_EQ(got.tid, mask & kFieldTid ? want.tid : defaults.tid);
        EXPECT_EQ(got.op, mask & kFieldOp ? want.op : defaults.op);
        EXPECT_EQ(got.flags, mask & kFieldFlags ? want.flags : defaults.flags);
      }
    }
    // A multi-field mask matches a full decode on exactly those fields.
    const uint16_t mask = kFieldTimestamp | kFieldTimeout | kFieldPid | kFieldOp;
    std::vector<TraceRecord> back;
    ASSERT_EQ(DecodeV3Chunk(bytes.data(), bytes.size(),
                            static_cast<uint32_t>(records.size()), &scratch, &back,
                            mask),
              ChunkParse::kOk);
    for (size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(back[i].timestamp, records[i].timestamp);
      EXPECT_EQ(back[i].timeout, records[i].timeout);
      EXPECT_EQ(back[i].pid, records[i].pid);
      EXPECT_EQ(back[i].op, records[i].op);
      EXPECT_EQ(back[i].timer, defaults.timer);
      EXPECT_EQ(back[i].callsite, defaults.callsite);
    }
  }
}

TEST(TraceV3Test, ChunkProjectionStillChecksSkippedStripeHeaders) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites, 64);
  std::vector<uint8_t> bytes;
  ChunkZone zone;
  EncodeV3Chunk(std::span<const TraceRecord>(records), BlockCodecId::kNone, &bytes,
                &zone);
  V3DecodeScratch scratch;
  std::vector<TraceRecord> back;
  // Stripe 0 (timestamp) starts right after the 9-byte chunk header. An
  // unknown codec id there must surface as kCodec even when the mask
  // skips the stripe: a file this build cannot read stays an error, it is
  // never silently projected around.
  std::vector<uint8_t> bad_codec = bytes;
  bad_codec[9] = 250;
  EXPECT_EQ(DecodeV3Chunk(bad_codec.data(), bad_codec.size(), 64, &scratch, &back,
                          kFieldOp),
            ChunkParse::kCodec);
  // An impossible stripe length is caught by the bounds walk too.
  std::vector<uint8_t> bad_len = bytes;
  bad_len[10] = 0xff;
  bad_len[11] = 0xff;
  bad_len[12] = 0xff;
  bad_len[13] = 0xff;
  back.clear();
  EXPECT_EQ(DecodeV3Chunk(bad_len.data(), bad_len.size(), 64, &scratch, &back,
                          kFieldOp),
            ChunkParse::kTruncated);
}

TEST(TraceV3Test, CursorProjectionMatchesFullRead) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites, 900);
  const TraceRecord defaults;
  TraceWriteOptions v3;
  v3.version = kTraceFileVersionColumnar;
  v3.chunk_records = 256;
  const std::string path = ::testing::TempDir() + "/tempo_v3_projection.trc";
  ASSERT_TRUE(WriteTraceFile(path, records, callsites, v3));

  TraceReadError error = TraceReadError::kIo;
  auto reader = TraceChunkReader::Open(path, &error);
  ASSERT_TRUE(reader.has_value()) << TraceReadErrorName(error);
  auto cursor = reader->MakeCursor();
  size_t next = 0;
  for (size_t c = 0; c < reader->chunk_count(); ++c) {
    const auto chunk = cursor.Read(c, kFieldTimestamp | kFieldPid);
    ASSERT_TRUE(cursor.ok()) << TraceReadErrorName(cursor.error());
    for (const TraceRecord& r : chunk) {
      EXPECT_EQ(r.timestamp, records[next].timestamp);
      EXPECT_EQ(r.pid, records[next].pid);
      EXPECT_EQ(r.timer, defaults.timer);
      EXPECT_EQ(r.timeout, defaults.timeout);
      EXPECT_EQ(r.callsite, defaults.callsite);
      EXPECT_EQ(r.op, defaults.op);
      EXPECT_EQ(r.flags, defaults.flags);
      EXPECT_EQ(r.stack, kEmptyStack);
      ++next;
    }
  }
  EXPECT_EQ(next, records.size());
  std::remove(path.c_str());

  // v2 rows are fixed width: the mask is ignored and every field comes
  // back populated.
  TraceWriteOptions v2;
  v2.version = kTraceFileVersionChunked;
  v2.chunk_records = 256;
  const std::string v2_path = ::testing::TempDir() + "/tempo_v2_projection.trc";
  ASSERT_TRUE(WriteTraceFile(v2_path, records, callsites, v2));
  auto v2_reader = TraceChunkReader::Open(v2_path, &error);
  ASSERT_TRUE(v2_reader.has_value()) << TraceReadErrorName(error);
  auto v2_cursor = v2_reader->MakeCursor();
  const auto chunk = v2_cursor.Read(0, kFieldTimestamp);
  ASSERT_TRUE(v2_cursor.ok());
  ASSERT_FALSE(chunk.empty());
  EXPECT_EQ(chunk[0].timer, records[0].timer);
  EXPECT_EQ(chunk[0].op, records[0].op);
  std::remove(v2_path.c_str());
}

TEST(TraceV3Test, ChunkSingleRecordAndWrongCountRejected) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites, 1);
  std::vector<uint8_t> bytes;
  ChunkZone zone;
  EncodeV3Chunk(std::span<const TraceRecord>(records), BlockCodecId::kTempoLz, &bytes,
                &zone);
  V3DecodeScratch scratch;
  std::vector<TraceRecord> back;
  ASSERT_EQ(DecodeV3Chunk(bytes.data(), bytes.size(), 1, &scratch, &back),
            ChunkParse::kOk);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_TRUE(SameRecord(back[0], records[0]));
  back.clear();
  EXPECT_NE(DecodeV3Chunk(bytes.data(), bytes.size(), 2, &scratch, &back),
            ChunkParse::kOk);
}

TEST(TraceV3Test, ChunkUnknownCodecsReported) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites, 64);
  std::vector<uint8_t> bytes;
  ChunkZone zone;
  EncodeV3Chunk(std::span<const TraceRecord>(records), BlockCodecId::kNone, &bytes,
                &zone);
  V3DecodeScratch scratch;
  std::vector<TraceRecord> back;
  // Unknown block codec id.
  std::vector<uint8_t> bad_block = bytes;
  bad_block[0] = 77;
  EXPECT_EQ(DecodeV3Chunk(bad_block.data(), bad_block.size(), 64, &scratch, &back),
            ChunkParse::kCodec);
  // Unknown stripe codec id: first stripe starts right after the header.
  std::vector<uint8_t> bad_stripe = bytes;
  bad_stripe[9] = 250;
  back.clear();
  EXPECT_EQ(DecodeV3Chunk(bad_stripe.data(), bad_stripe.size(), 64, &scratch, &back),
            ChunkParse::kCodec);
}

TEST(TraceV3Test, ChunkTruncationRejected) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites, 100);
  std::vector<uint8_t> bytes;
  ChunkZone zone;
  EncodeV3Chunk(std::span<const TraceRecord>(records), BlockCodecId::kTempoLz, &bytes,
                &zone);
  V3DecodeScratch scratch;
  std::vector<TraceRecord> back;
  for (const size_t keep : {size_t{0}, size_t{5}, size_t{9}, bytes.size() / 2,
                            bytes.size() - 1}) {
    back.clear();
    EXPECT_NE(DecodeV3Chunk(bytes.data(), keep, 100, &scratch, &back), ChunkParse::kOk)
        << keep;
  }
}

TEST(TraceV3Test, FileRoundTripMatchesV2) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites, 3000);
  TraceWriteOptions v2;
  v2.version = kTraceFileVersionChunked;
  v2.chunk_records = 256;
  TraceWriteOptions v3;
  v3.version = kTraceFileVersionColumnar;
  v3.chunk_records = 256;

  const auto v2_bytes = SerializeTrace(records, callsites, v2);
  const auto v3_bytes = SerializeTrace(records, callsites, v3);
  EXPECT_LT(v3_bytes.size(), v2_bytes.size());

  const auto from_v2 = DeserializeTrace(v2_bytes);
  const auto from_v3 = DeserializeTrace(v3_bytes);
  ASSERT_TRUE(from_v2.has_value());
  ASSERT_TRUE(from_v3.has_value());
  ASSERT_EQ(from_v3->records.size(), from_v2->records.size());
  for (size_t i = 0; i < from_v2->records.size(); ++i) {
    EXPECT_TRUE(SameRecord(from_v3->records[i], from_v2->records[i])) << i;
  }
  ASSERT_EQ(from_v3->callsites.size(), callsites.size());
  for (CallsiteId id = 0; id < callsites.size(); ++id) {
    EXPECT_EQ(from_v3->callsites.Name(id), callsites.Name(id));
  }
}

TEST(TraceV3Test, EmptyTraceRoundTripsV3) {
  CallsiteRegistry callsites;
  TraceWriteOptions v3;
  v3.version = kTraceFileVersionColumnar;
  const auto loaded = DeserializeTrace(SerializeTrace({}, callsites, v3));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->records.empty());
}

TEST(TraceV3Test, FileTruncationAndCodecErrorsTyped) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites, 600);
  TraceWriteOptions v3;
  v3.version = kTraceFileVersionColumnar;
  v3.chunk_records = 128;
  v3.block_codec = BlockCodecId::kNone;
  const auto bytes = SerializeTrace(records, callsites, v3);

  TraceReadError error = TraceReadError::kIo;
  std::vector<uint8_t> cut(bytes.begin(), bytes.end() - 3);
  EXPECT_FALSE(DeserializeTrace(cut, &error).has_value());
  EXPECT_EQ(error, TraceReadError::kTruncated);

  // Flip the first chunk's block codec byte to an unknown id: the reader
  // must say "unknown codec", not "corrupt". The first chunk begins right
  // after the header, which we can find by writing the same trace with
  // zero records of payload... simpler: scan for the first difference
  // against a kTempoLz encoding of the same trace — that byte is the
  // first chunk's codec id.
  TraceWriteOptions lz = v3;
  lz.block_codec = BlockCodecId::kTempoLz;
  const auto lz_bytes = SerializeTrace(records, callsites, lz);
  size_t chunk0 = 0;
  while (chunk0 < bytes.size() && chunk0 < lz_bytes.size() &&
         bytes[chunk0] == lz_bytes[chunk0]) {
    ++chunk0;
  }
  ASSERT_LT(chunk0, bytes.size());
  ASSERT_EQ(bytes[chunk0], static_cast<uint8_t>(BlockCodecId::kNone));
  std::vector<uint8_t> bad = bytes;
  bad[chunk0] = 99;
  error = TraceReadError::kIo;
  EXPECT_FALSE(DeserializeTrace(bad, &error).has_value());
  EXPECT_EQ(error, TraceReadError::kCodec);
}

TEST(TraceV3Test, ChunkReaderStreamsV3) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites, 2000);
  TraceWriteOptions v3;
  v3.version = kTraceFileVersionColumnar;
  v3.chunk_records = 300;
  const std::string path = ::testing::TempDir() + "/tempo_v3_reader.trc";
  ASSERT_TRUE(WriteTraceFile(path, records, callsites, v3));

  TraceReadError error = TraceReadError::kIo;
  auto reader = TraceChunkReader::Open(path, &error);
  ASSERT_TRUE(reader.has_value()) << TraceReadErrorName(error);
  EXPECT_EQ(reader->version(), kTraceFileVersionColumnar);
  EXPECT_EQ(reader->record_count(), records.size());
  ASSERT_EQ(reader->chunk_count(), (records.size() + 299) / 300);
  EXPECT_GT(reader->payload_bytes(), 0u);
  EXPECT_LT(reader->payload_bytes(), records.size() * kEncodedRecordSize);

  auto cursor = reader->MakeCursor();
  size_t next = 0;
  for (size_t c = 0; c < reader->chunk_count(); ++c) {
    EXPECT_TRUE(reader->chunk(c).zone.valid);
    const auto chunk = cursor.Read(c);
    ASSERT_TRUE(cursor.ok()) << TraceReadErrorName(cursor.error());
    ASSERT_EQ(chunk.size(), reader->chunk(c).records);
    for (const TraceRecord& r : chunk) {
      EXPECT_EQ(r.timestamp, records[next].timestamp);
      EXPECT_EQ(r.pid, records[next].pid);
      EXPECT_EQ(r.stack, kEmptyStack);
      ++next;
    }
  }
  EXPECT_EQ(next, records.size());
  std::remove(path.c_str());
}

TEST(TraceV3Test, StreamWriterByteIdenticalToSerialize) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites, 1500);
  TraceWriteOptions v3;
  v3.version = kTraceFileVersionColumnar;
  v3.chunk_records = 128;
  const std::string path = ::testing::TempDir() + "/tempo_v3_stream.trc";
  {
    TraceStreamWriter writer(path, &callsites, v3);
    ASSERT_TRUE(writer.ok());
    for (const TraceRecord& r : records) {
      ASSERT_TRUE(writer.Append(r));
    }
    ASSERT_TRUE(writer.Close());
    EXPECT_EQ(writer.records_written(), records.size());
  }
  const auto expected = SerializeTrace(records, callsites, v3);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> actual(expected.size() + 1);
  const size_t n = std::fread(actual.data(), 1, actual.size(), f);
  std::fclose(f);
  actual.resize(n);
  EXPECT_EQ(actual, expected);
  std::remove(path.c_str());
}

// --- predicate + query ---

TEST(QueryTest, PredicateMatchesRecordsExactly) {
  Predicate p;
  p.time_begin = 100;
  p.time_end = 200;
  p.pids = {3, 5};
  p.op_mask = static_cast<uint8_t>(1u << static_cast<uint8_t>(TimerOp::kSet));
  TraceRecord r;
  r.timestamp = 150;
  r.pid = 3;
  r.op = TimerOp::kSet;
  EXPECT_TRUE(p.Matches(r));
  r.timestamp = 200;  // end is exclusive
  EXPECT_FALSE(p.Matches(r));
  r.timestamp = 100;  // begin is inclusive
  EXPECT_TRUE(p.Matches(r));
  r.pid = 4;
  EXPECT_FALSE(p.Matches(r));
  r.pid = 5;
  r.op = TimerOp::kCancel;
  EXPECT_FALSE(p.Matches(r));
  EXPECT_FALSE(p.MatchesAll());
  EXPECT_TRUE(Predicate{}.MatchesAll());
}

TEST(QueryTest, PredicateZonePruningIsConservative) {
  ChunkZone zone;
  zone.valid = true;
  zone.min_timestamp = 1000;
  zone.max_timestamp = 2000;
  zone.pid_digest = PidDigestBit(7);
  zone.op_mask = static_cast<uint8_t>(1u << static_cast<uint8_t>(TimerOp::kSet));

  Predicate p;
  EXPECT_TRUE(p.MayMatch(zone));  // match-all predicate
  p.time_begin = 2001;
  EXPECT_FALSE(p.MayMatch(zone));
  p.time_begin = 2000;
  EXPECT_TRUE(p.MayMatch(zone));  // max timestamp is inclusive
  p = Predicate{};
  p.time_end = 1000;
  EXPECT_FALSE(p.MayMatch(zone));
  p = Predicate{};
  p.pids = {7};
  EXPECT_TRUE(p.MayMatch(zone));
  p.pids = {8};
  // Bloom digests can collide; only assert the non-colliding direction.
  if ((zone.pid_digest & PidDigestBit(8)) == 0) {
    EXPECT_FALSE(p.MayMatch(zone));
  }
  p = Predicate{};
  p.op_mask = static_cast<uint8_t>(1u << static_cast<uint8_t>(TimerOp::kCancel));
  EXPECT_FALSE(p.MayMatch(zone));
  // An invalid zone never allows a skip.
  EXPECT_TRUE(p.MayMatch(ChunkZone{}));
}

std::string RunQuery(const TraceChunkReader& reader, const QueryOptions& options,
                     size_t jobs, PipelineStats* stats) {
  std::vector<std::unique_ptr<AnalysisPass>> passes;
  passes.push_back(std::make_unique<QueryPass>(options, &reader.callsites()));
  PipelineOptions popts;
  popts.jobs = jobs;
  popts.stats_label = "query-test";
  PipelineRunner runner(popts);
  TraceReadError error = TraceReadError::kIo;
  EXPECT_TRUE(runner.Run(reader, passes, &error)) << TraceReadErrorName(error);
  if (stats != nullptr) {
    *stats = runner.stats();
  }
  return static_cast<QueryPass*>(passes[0].get())->RenderJson();
}

TEST(QueryTest, PushdownSkipsChunksWithoutChangingResults) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites, 4000);
  TraceWriteOptions v3;
  v3.version = kTraceFileVersionColumnar;
  v3.chunk_records = 64;
  const std::string path = ::testing::TempDir() + "/tempo_v3_pushdown.trc";
  ASSERT_TRUE(WriteTraceFile(path, records, callsites, v3));
  auto reader = TraceChunkReader::Open(path);
  ASSERT_TRUE(reader.has_value());

  // A narrow time window: most chunks cannot match and must be skipped.
  QueryOptions query;
  query.predicate.time_begin = records[records.size() / 2].timestamp;
  query.predicate.time_end = records[records.size() / 2 + 100].timestamp;
  query.group_by = QueryGroupBy::kPid;

  PipelineStats pushed_stats;
  const std::string pushed = RunQuery(*reader, query, 1, &pushed_stats);
  EXPECT_GT(pushed_stats.chunks_skipped, 0u);
  EXPECT_LT(pushed_stats.chunks, reader->chunk_count());

  // Reference: the same filter applied by hand to the full trace.
  uint64_t expected_matches = 0;
  for (const TraceRecord& r : records) {
    if (query.predicate.Matches(r)) {
      ++expected_matches;
    }
  }
  QueryPass serial(query, &callsites);
  serial.Accumulate(std::span<const TraceRecord>(records.data(), records.size()));
  EXPECT_EQ(serial.matched(), expected_matches);
  // Pushed-down totals match the full scan (scanned differs, matched and
  // groups must not).
  std::ostringstream want;
  want << "\"matched\": " << expected_matches;
  EXPECT_NE(pushed.find(want.str()), std::string::npos) << pushed;

  // Parallel equals serial, byte for byte.
  PipelineStats parallel_stats;
  const std::string parallel = RunQuery(*reader, query, 4, &parallel_stats);
  EXPECT_EQ(parallel, pushed);
  EXPECT_EQ(parallel_stats.chunks_skipped, pushed_stats.chunks_skipped);
  std::remove(path.c_str());
}

TEST(QueryTest, NullPredicatePinsEveryChunk) {
  CallsiteRegistry callsites;
  const auto records = MakeTrace(&callsites, 1000);
  TraceWriteOptions v3;
  v3.version = kTraceFileVersionColumnar;
  v3.chunk_records = 64;
  const std::string path = ::testing::TempDir() + "/tempo_v3_pin.trc";
  ASSERT_TRUE(WriteTraceFile(path, records, callsites, v3));
  auto reader = TraceChunkReader::Open(path);
  ASSERT_TRUE(reader.has_value());

  // A query that needs nothing, plus SummaryPass-like null-predicate pass
  // — the pipeline must decode everything anyway.
  QueryOptions query;
  query.predicate.time_end = 0;  // matches no record
  std::vector<std::unique_ptr<AnalysisPass>> passes;
  passes.push_back(std::make_unique<QueryPass>(query, &callsites));
  PipelineRunner pushed;
  ASSERT_TRUE(pushed.Run(*reader, passes, nullptr));
  EXPECT_EQ(pushed.stats().chunks_skipped, reader->chunk_count());
  EXPECT_EQ(pushed.stats().chunks, 0u);

  class PinAllPass : public QueryPass {
   public:
    using QueryPass::QueryPass;
    const Predicate* predicate() const override { return nullptr; }
  };
  std::vector<std::unique_ptr<AnalysisPass>> pinned;
  pinned.push_back(std::make_unique<QueryPass>(query, &callsites));
  pinned.push_back(std::make_unique<PinAllPass>(QueryOptions{}, &callsites));
  PipelineRunner full;
  ASSERT_TRUE(full.Run(*reader, pinned, nullptr));
  EXPECT_EQ(full.stats().chunks_skipped, 0u);
  EXPECT_EQ(full.stats().chunks, reader->chunk_count());
  EXPECT_EQ(full.stats().records, records.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tempo
