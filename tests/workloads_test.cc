// Workload-level tests: each modelled workload must reproduce the shape
// properties the paper reports for it (Tables 1-2, Figures 1-7).

#include <gtest/gtest.h>

#include <set>

#include "src/analysis/classify.h"
#include "src/analysis/histogram.h"
#include "src/analysis/rates.h"
#include "src/analysis/summary.h"
#include "src/workloads/linux_workloads.h"
#include "src/workloads/vista_workloads.h"

namespace tempo {
namespace {

WorkloadOptions ShortRun() {
  WorkloadOptions options;
  options.duration = 3 * kMinute;
  options.seed = 11;
  return options;
}

bool RecordsTimeOrdered(const std::vector<TraceRecord>& records) {
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].timestamp < records[i - 1].timestamp) {
      return false;
    }
  }
  return true;
}

// Sanity invariants every trace must satisfy.
void CheckTraceInvariants(const TraceRun& run) {
  ASSERT_FALSE(run.records.empty());
  EXPECT_TRUE(RecordsTimeOrdered(run.records));
  const TraceSummary s = Summarize(run.records, run.label);
  EXPECT_GT(s.timers, 0u);
  EXPECT_GT(s.concurrency, 0u);
  // Every ended episode had a set: expired + canceled <= set (+ blocks).
  EXPECT_LE(s.expired + s.canceled, s.set + s.concurrency);
  EXPECT_EQ(s.accesses, s.user_space + s.kernel);
}

TEST(LinuxWorkloadTest, IdleUserSpaceDominatesAndCancelsExceedExpiries) {
  TraceRun run = RunLinuxIdle(ShortRun());
  CheckTraceInvariants(run);
  const TraceSummary s = Summarize(run.records, run.label);
  // Table 1 Idle: user-space accesses dominate (X/icewm select churn), and
  // "on Linux more timers are canceled [than expire]".
  EXPECT_GT(s.user_space, s.kernel);
  EXPECT_GT(s.canceled, s.expired);
}

TEST(LinuxWorkloadTest, IdleContainsSelectCountdowns) {
  TraceRun run = RunLinuxIdle(ShortRun());
  const auto classes = ClassifyTrace(run.records, ClassifyOptions{});
  bool countdown = false;
  for (const auto& c : classes) {
    countdown = countdown || c.pattern == UsagePattern::kCountdown;
  }
  EXPECT_TRUE(countdown) << "X/icewm select countdowns missing";
}

TEST(LinuxWorkloadTest, IdleShowsPaperKernelValues) {
  TraceRun run = RunLinuxIdle(ShortRun());
  HistogramOptions options;
  options.min_percent = 0.5;
  const ValueHistogram h = ComputeValueHistogram(run.records, options);
  std::set<int64_t> jiffy_values;
  for (const auto& bucket : h.buckets) {
    if (bucket.jiffies >= 0) {
      jiffy_values.insert(bucket.jiffies);
    }
  }
  // The signature values of Figure 3 / Table 3.
  EXPECT_TRUE(jiffy_values.count(62)) << "0.248 s USB poll";
  EXPECT_TRUE(jiffy_values.count(125)) << "0.5 s clocksource watchdog";
  EXPECT_TRUE(jiffy_values.count(250)) << "1 s workqueue";
  EXPECT_TRUE(jiffy_values.count(500)) << "2 s";
}

TEST(LinuxWorkloadTest, FirefoxDominatedByVeryShortUserTimers) {
  TraceRun run = RunLinuxFirefox(ShortRun());
  CheckTraceInvariants(run);
  uint64_t short_user_sets = 0;
  uint64_t user_sets = 0;
  for (const auto& r : run.records) {
    if (r.op == TimerOp::kSet && r.is_user()) {
      ++user_sets;
      if (r.timeout <= 12 * kMillisecond) {
        ++short_user_sets;
      }
    }
  }
  // "a large volume of very short timers: 4, 8 or 10 ms, or 1, 2 or 3
  //  jiffies" — the soft-real-time Flash behaviour.
  EXPECT_GT(user_sets, 0u);
  EXPECT_GT(static_cast<double>(short_user_sets), 0.4 * static_cast<double>(user_sets));
}

TEST(LinuxWorkloadTest, FirefoxBusierThanIdle) {
  TraceRun idle = RunLinuxIdle(ShortRun());
  TraceRun firefox = RunLinuxFirefox(ShortRun());
  EXPECT_GT(firefox.records.size(), 3 * idle.records.size());
}

TEST(LinuxWorkloadTest, SkypeShowsHalfSecondConstants) {
  TraceRun run = RunLinuxSkype(ShortRun());
  CheckTraceInvariants(run);
  HistogramOptions options;
  options.user_only = true;
  options.min_percent = 2.0;
  const ValueHistogram h = ComputeValueHistogram(run.records, options);
  bool saw_0 = false;
  bool saw_4999 = false;
  bool saw_500 = false;
  for (const auto& bucket : h.buckets) {
    saw_0 = saw_0 || bucket.value == 0;
    saw_4999 = saw_4999 || bucket.value == FromMilliseconds(499.9);
    saw_500 = saw_500 || bucket.value == 500 * kMillisecond;
  }
  // Figure 6: Skype "dominated by constant timeouts of 0, 0.4999 and 0.5".
  EXPECT_TRUE(saw_0);
  EXPECT_TRUE(saw_4999);
  EXPECT_TRUE(saw_500);
}

TEST(LinuxWorkloadTest, WebserverKernelAccessesDominate) {
  WorkloadOptions options = ShortRun();
  options.duration = 5 * kMinute;
  TraceRun run = RunLinuxWebserver(options);
  CheckTraceInvariants(run);
  const TraceSummary s = Summarize(run.records, run.label);
  // Table 1 Webserver: the only workload where kernel accesses dominate
  // (per-connection TCP timers).
  EXPECT_GT(s.kernel, s.user_space);
}

TEST(LinuxWorkloadTest, WebserverShowsTcpSignatureValues) {
  WorkloadOptions options = ShortRun();
  options.duration = 5 * kMinute;
  TraceRun run = RunLinuxWebserver(options);
  HistogramOptions hist;
  hist.min_percent = 0.5;
  const ValueHistogram h = ComputeValueHistogram(run.records, hist);
  std::set<int64_t> jiffies;
  for (const auto& bucket : h.buckets) {
    jiffies.insert(bucket.jiffies);
  }
  EXPECT_TRUE(jiffies.count(51)) << "0.204 s TCP retransmit";
  EXPECT_TRUE(jiffies.count(10)) << "0.04 s delayed ACK";
  EXPECT_TRUE(jiffies.count(750)) << "3 s SYN-ACK";
}

TEST(LinuxWorkloadTest, WebserverHasFewTimerIdentitiesDespiteManyConnections) {
  WorkloadOptions options = ShortRun();
  options.duration = 5 * kMinute;
  TraceRun run = RunLinuxWebserver(options);
  const TraceSummary s = Summarize(run.records, run.label);
  // Table 1: 30000 connections but only ~100 timer structs (slab reuse).
  EXPECT_LT(s.timers, 200u);
  EXPECT_GT(s.set, 1000u);
}

TEST(LinuxWorkloadTest, DeterministicGivenSeed) {
  TraceRun a = RunLinuxIdle(ShortRun());
  TraceRun b = RunLinuxIdle(ShortRun());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); i += 97) {
    EXPECT_EQ(a.records[i].timestamp, b.records[i].timestamp);
    EXPECT_EQ(a.records[i].timer, b.records[i].timer);
    EXPECT_EQ(static_cast<int>(a.records[i].op), static_cast<int>(b.records[i].op));
  }
}

TEST(LinuxWorkloadTest, DifferentSeedsDiffer) {
  WorkloadOptions a_options = ShortRun();
  WorkloadOptions b_options = ShortRun();
  b_options.seed = 99;
  TraceRun a = RunLinuxIdle(a_options);
  TraceRun b = RunLinuxIdle(b_options);
  EXPECT_NE(a.records.size(), b.records.size());
}

TEST(VistaWorkloadTest, IdleExpiriesDominateCancellations) {
  TraceRun run = RunVistaIdle(ShortRun());
  CheckTraceInvariants(run);
  const TraceSummary s = Summarize(run.records, run.label);
  // Table 2: "on Vista timers more often expire".
  EXPECT_GT(s.expired, 4 * s.canceled);
}

TEST(VistaWorkloadTest, IdleKernelAccessesDominate) {
  TraceRun run = RunVistaIdle(ShortRun());
  const TraceSummary s = Summarize(run.records, run.label);
  EXPECT_GT(s.kernel, s.user_space);
}

TEST(VistaWorkloadTest, IdleHasMoreTimerIdentitiesThanLinux) {
  TraceRun vista = RunVistaIdle(ShortRun());
  TraceRun linux_run = RunLinuxIdle(ShortRun());
  // Tables 1-2: Vista allocates ~3x the timer structures (144 vs 47),
  // because KTIMERs are created per use.
  const uint64_t vista_timers = Summarize(vista.records, "v").timers;
  const uint64_t linux_timers = Summarize(linux_run.records, "l").timers;
  EXPECT_GT(vista_timers, linux_timers);
}

TEST(VistaWorkloadTest, FirefoxIsTheBusiestWorkload) {
  TraceRun idle = RunVistaIdle(ShortRun());
  TraceRun firefox = RunVistaFirefox(ShortRun());
  EXPECT_GT(firefox.records.size(), 3 * idle.records.size());
}

TEST(VistaWorkloadTest, FirefoxSubTickTimersDeliveredLate) {
  TraceRun run = RunVistaFirefox(ShortRun());
  // Sub-millisecond timeouts are delivered at clock-interrupt granularity:
  // a large multiple of their nominal duration (Figures 8-11 cut-off).
  uint64_t late = 0;
  uint64_t sub_ms_sets = 0;
  std::map<TimerId, TraceRecord> open_sets;
  for (const auto& r : run.records) {
    if (r.op == TimerOp::kSet && r.timeout > 0 && r.timeout <= kMillisecond) {
      open_sets[r.timer] = r;
      ++sub_ms_sets;
    } else if (r.op == TimerOp::kExpire) {
      auto it = open_sets.find(r.timer);
      if (it != open_sets.end()) {
        if (r.timestamp - it->second.timestamp >
            static_cast<SimDuration>(2.5 * static_cast<double>(it->second.timeout))) {
          ++late;
        }
        open_sets.erase(it);
      }
    }
  }
  ASSERT_GT(sub_ms_sets, 100u);
  EXPECT_GT(static_cast<double>(late), 0.9 * static_cast<double>(sub_ms_sets));
}

TEST(VistaWorkloadTest, WebserverLacksLinuxKeepalive) {
  WorkloadOptions options = ShortRun();
  TraceRun vista = RunVistaWebserver(options);
  // The paper: the Vista webserver trace "does not include the 7200 second
  // TCP keepalive timer that is used by Linux" (private timing wheels).
  for (const auto& r : vista.records) {
    if (r.op == TimerOp::kSet) {
      EXPECT_LT(r.timeout, 7000 * kSecond);
    }
  }
  TraceRun linux_run = RunLinuxWebserver(options);
  bool linux_has_keepalive = false;
  for (const auto& r : linux_run.records) {
    if (r.op == TimerOp::kSet && r.timeout > 7000 * kSecond) {
      linux_has_keepalive = true;
      break;
    }
  }
  EXPECT_TRUE(linux_has_keepalive);
}

TEST(VistaWorkloadTest, DeferredPatternPresentInIdle) {
  WorkloadOptions options = ShortRun();
  options.duration = 10 * kMinute;  // enough bursts to classify
  TraceRun run = RunVistaIdle(options);
  const auto classes = ClassifyTrace(run.records, ClassifyOptions{});
  bool registry_deferred = false;
  for (const auto& c : classes) {
    if (c.pattern == UsagePattern::kDeferred &&
        run.callsites().Name(c.callsite) == "nt/registry_lazy_close") {
      registry_deferred = true;
    }
  }
  EXPECT_TRUE(registry_deferred);
}

TEST(VistaWorkloadTest, DesktopOutlookBurstsAboveBaseline) {
  WorkloadOptions options = ShortRun();
  options.duration = 2 * kMinute;
  TraceRun run = RunVistaDesktop(options);
  RateGrouping grouping;
  grouping.pid_labels[run.pids.at("outlook.exe")] = "Outlook";
  RateOptions rate_options;
  rate_options.end = options.duration;
  const auto series = ComputeRates(run.records, grouping, rate_options);
  const RateSeries* outlook = nullptr;
  const RateSeries* kernel = nullptr;
  for (const auto& s : series) {
    if (s.label == "Outlook") {
      outlook = &s;
    } else if (s.label == "Kernel") {
      kernel = &s;
    }
  }
  ASSERT_NE(outlook, nullptr);
  ASSERT_NE(kernel, nullptr);
  uint64_t peak = 0;
  uint64_t total = 0;
  for (uint64_t v : outlook->per_window) {
    peak = std::max(peak, v);
    total += v;
  }
  const double mean = static_cast<double>(total) /
                      static_cast<double>(outlook->per_window.size());
  // Figure 1: ~70 sets/s baseline with storms far above it.
  EXPECT_GT(mean, 30.0);
  EXPECT_GT(static_cast<double>(peak), 5.0 * mean);
  // And the kernel line sits around a thousand sets per second.
  uint64_t kernel_total = 0;
  for (uint64_t v : kernel->per_window) {
    kernel_total += v;
  }
  const double kernel_mean = static_cast<double>(kernel_total) /
                             static_cast<double>(kernel->per_window.size());
  EXPECT_GT(kernel_mean, 500.0);
  EXPECT_LT(kernel_mean, 2500.0);
}

TEST(WorkloadAblationTest, DynticksReducesLinuxIdleTicks) {
  WorkloadOptions base = ShortRun();
  TraceRun periodic = RunLinuxIdle(base);
  WorkloadOptions dyn = base;
  dyn.dynticks = true;
  TraceRun dynticks = RunLinuxIdle(dyn);
  EXPECT_LT(dynticks.linux_kernel->ticks_serviced(),
            periodic.linux_kernel->ticks_serviced() / 2);
}

TEST(WorkloadAblationTest, RoundJiffiesStillProducesWholeSecondExpiries) {
  WorkloadOptions options = ShortRun();
  options.round_jiffies = true;
  TraceRun run = RunLinuxIdle(options);
  uint64_t rounded = 0;
  for (const auto& r : run.records) {
    if (r.op == TimerOp::kSet && (r.flags & kFlagRounded) != 0) {
      ++rounded;
      EXPECT_EQ(r.expiry % kSecond, 0) << "rounded timer not on whole second";
    }
  }
  EXPECT_GT(rounded, 0u);
}

}  // namespace
}  // namespace tempo

namespace tempo {
namespace {

// Property sweep: every workload, several seeds — the structural trace
// invariants must hold regardless of the random stream.
using WorkloadRunner = TraceRun (*)(const WorkloadOptions&);

struct NamedWorkload {
  const char* name;
  WorkloadRunner run;
};

class WorkloadSeedSweep
    : public ::testing::TestWithParam<std::tuple<NamedWorkload, uint64_t>> {};

TEST_P(WorkloadSeedSweep, TraceInvariantsHoldForEverySeed) {
  const auto& [workload, seed] = GetParam();
  WorkloadOptions options;
  options.duration = 90 * kSecond;
  options.seed = seed;
  TraceRun run = workload.run(options);
  ASSERT_FALSE(run.records.empty());
  EXPECT_TRUE(RecordsTimeOrdered(run.records));
  const TraceSummary s = Summarize(run.records, run.label);
  EXPECT_GT(s.set, 0u);
  EXPECT_EQ(s.accesses, s.user_space + s.kernel);
  EXPECT_LE(s.expired + s.canceled, s.set + s.concurrency);
  // Timestamps stay inside the simulated window.
  EXPECT_LE(run.records.back().timestamp, options.duration);
  // No record may carry a negative timeout.
  for (const auto& r : run.records) {
    ASSERT_GE(r.timeout, 0) << "negative timeout in " << workload.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSeedSweep,
    ::testing::Combine(
        ::testing::Values(NamedWorkload{"linux_idle", RunLinuxIdle},
                          NamedWorkload{"linux_skype", RunLinuxSkype},
                          NamedWorkload{"linux_firefox", RunLinuxFirefox},
                          NamedWorkload{"linux_webserver", RunLinuxWebserver},
                          NamedWorkload{"vista_idle", RunVistaIdle},
                          NamedWorkload{"vista_skype", RunVistaSkype},
                          NamedWorkload{"vista_firefox", RunVistaFirefox},
                          NamedWorkload{"vista_webserver", RunVistaWebserver},
                          NamedWorkload{"vista_desktop", RunVistaDesktop}),
        ::testing::Values(1u, 77u, 20260705u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tempo
