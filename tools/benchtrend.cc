// benchtrend — aggregates the committed BENCH_*.json result files into one
// table, so a reviewer (or CI) can read every benchmark's headline numbers
// in one place and spot a regression across commits without re-running the
// benches. Scalar fields are flattened with dotted paths ("gate.status",
// "runs[2].speedup"); fields carrying a paper reference value (their name
// contains "paper") are marked, since those are the numbers the repo is
// trying to reproduce.
//
// Exit status: 0 when every input parsed, 1 when any file is missing or
// not valid JSON (CI runs this over the committed BENCH files, so a
// corrupt or hand-mangled result file fails the build), 2 for usage
// errors.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/common.h"

namespace tempo {
namespace {

struct FlatValue {
  std::string path;
  std::string value;  // rendered scalar
  bool is_string = false;
};

// Minimal recursive-descent JSON reader: enough for the bench files (no
// \u escapes, no scientific-notation corner cases beyond strtod).
class JsonReader {
 public:
  JsonReader(const std::string& text, std::vector<FlatValue>* out)
      : text_(text), out_(out) {}

  bool Parse() {
    SkipSpace();
    if (!ParseValue("")) {
      return false;
    }
    SkipSpace();
    return pos_ == text_.size();
  }

  std::string error() const { return error_; }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ParseValue(const std::string& path) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(path);
    }
    if (c == '[') {
      return ParseArray(path);
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) {
        return false;
      }
      out_->push_back({path, s, true});
      return true;
    }
    return ParseLiteral(path);
  }

  bool ParseObject(const std::string& path) {
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipSpace();
      if (!ParseValue(path.empty() ? key : path + "." + key)) {
        return false;
      }
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(const std::string& path) {
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    size_t index = 0;
    while (true) {
      SkipSpace();
      if (!ParseValue(path + "[" + std::to_string(index++) + "]")) {
        return false;
      }
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char e = text_[pos_++];
        switch (e) {
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          default:
            *out += e;  // \" \\ \/ and friends
        }
        continue;
      }
      *out += c;
    }
    return Fail("unterminated string");
  }

  bool ParseLiteral(const std::string& path) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty()) {
      return Fail("unexpected character");
    }
    if (token == "true" || token == "false" || token == "null") {
      out_->push_back({path, token, false});
      return true;
    }
    char* end = nullptr;
    (void)std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("bad literal '" + token + "'");
    }
    out_->push_back({path, token, false});
    return true;
  }

  const std::string& text_;
  std::vector<FlatValue>* out_;
  size_t pos_ = 0;
  std::string error_;
};

bool IsPaperRef(const std::string& path) {
  return path.find("paper") != std::string::npos;
}

// A gate status field: ".../gate.status" (or any gate object's "status").
bool IsGateStatus(const std::string& path) {
  return path.find("gate") != std::string::npos &&
         (path == "status" ||
          (path.size() >= 7 && path.compare(path.size() - 7, 7, ".status") == 0));
}

// Gates report "pass", "fail", or "skipped[: reason]" — a gate whose
// precondition did not hold on this machine (too few cores, say). Skipped
// is an explicit third state: not a pass, not a failure, loudly marked so
// nobody mistakes an unexercised gate for a green one.
enum class GateState { kPass, kFail, kSkipped };

GateState ClassifyGate(const std::string& status) {
  if (status == "pass") {
    return GateState::kPass;
  }
  if (status.compare(0, 7, "skipped") == 0) {
    return GateState::kSkipped;
  }
  return GateState::kFail;
}

const char* GateStateName(GateState state) {
  switch (state) {
    case GateState::kPass:
      return "pass";
    case GateState::kFail:
      return "fail";
    case GateState::kSkipped:
      return "skipped";
  }
  return "fail";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace
}  // namespace tempo

int main(int argc, char** argv) {
  using namespace tempo;
  static const tools::FlagSpec kFlags[] = {
      {"format", 1, "text|json", "output format (default text)"},
  };
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, kFlags);
  if (!args.ok() || args.positionals().empty()) {
    if (!args.ok()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    tools::PrintUsage(stderr, argv[0], "<BENCH_*.json>...", kFlags);
    return 2;
  }
  tools::OutputFormat format = tools::OutputFormat::kText;
  if (!tools::ParseFormatName(args.Value("format", 0, "text"), &format)) {
    std::fprintf(stderr, "error: unknown format %s\n",
                 args.Value("format").c_str());
    return 2;
  }

  struct Bench {
    std::string file;
    std::vector<FlatValue> values;
  };
  std::vector<Bench> benches;
  int rc = 0;
  for (const std::string& path : args.positionals()) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
      rc = 1;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    Bench bench;
    bench.file = path;
    JsonReader reader(text, &bench.values);
    if (!reader.Parse()) {
      std::fprintf(stderr, "error: %s is not valid JSON: %s\n", path.c_str(),
                   reader.error().c_str());
      rc = 1;
      continue;
    }
    benches.push_back(std::move(bench));
  }

  // Every gate across the inputs, with skipped ones warned about on
  // stderr: skipping is legitimate (exit stays 0) but never silent.
  struct Gate {
    std::string file;
    std::string path;
    GateState state;
    std::string status;
  };
  std::vector<Gate> gates;
  for (const Bench& bench : benches) {
    for (const FlatValue& v : bench.values) {
      if (v.is_string && IsGateStatus(v.path)) {
        gates.push_back({bench.file, v.path, ClassifyGate(v.value), v.value});
      }
    }
  }
  for (const Gate& gate : gates) {
    if (gate.state == GateState::kSkipped) {
      std::fprintf(stderr, "warning: %s: gate %s SKIPPED (%s)\n",
                   gate.file.c_str(), gate.path.c_str(), gate.status.c_str());
    }
  }

  if (format == tools::OutputFormat::kJson) {
    std::string out = "{\"benches\":[";
    for (size_t i = 0; i < benches.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += "{\"file\":\"" + JsonEscape(benches[i].file) + "\",\"values\":{";
      for (size_t j = 0; j < benches[i].values.size(); ++j) {
        const FlatValue& v = benches[i].values[j];
        if (j > 0) {
          out += ",";
        }
        out += "\"" + JsonEscape(v.path) + "\":";
        out += v.is_string ? "\"" + JsonEscape(v.value) + "\"" : v.value;
      }
      out += "}}";
    }
    out += "],\"gates\":[";
    for (size_t i = 0; i < gates.size(); ++i) {
      const Gate& gate = gates[i];
      if (i > 0) {
        out += ",";
      }
      out += "{\"file\":\"" + JsonEscape(gate.file) + "\",\"path\":\"" +
             JsonEscape(gate.path) + "\",\"state\":\"" + GateStateName(gate.state) +
             "\",\"status\":\"" + JsonEscape(gate.status) + "\"}";
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
  } else {
    std::printf("benchtrend: %zu bench file%s\n", benches.size(),
                benches.size() == 1 ? "" : "s");
    for (const Bench& bench : benches) {
      std::printf("\n%s\n", bench.file.c_str());
      size_t width = 0;
      for (const FlatValue& v : bench.values) {
        width = std::max(width, v.path.size());
      }
      for (const FlatValue& v : bench.values) {
        const bool skipped = v.is_string && IsGateStatus(v.path) &&
                             ClassifyGate(v.value) == GateState::kSkipped;
        std::printf("  %-*s = %s%s%s\n", static_cast<int>(width), v.path.c_str(),
                    v.value.c_str(), IsPaperRef(v.path) ? "   [paper]" : "",
                    skipped ? "   [SKIPPED]" : "");
      }
    }
    size_t skipped = 0;
    for (const Gate& gate : gates) {
      skipped += gate.state == GateState::kSkipped ? 1 : 0;
    }
    if (!gates.empty()) {
      std::printf("\ngates: %zu total, %zu skipped\n", gates.size(), skipped);
    }
  }
  return rc;
}
