#include "tools/common.h"

#include <cstdlib>
#include <cstring>

#include "src/timer/queue.h"

namespace tempo {
namespace tools {

namespace {

const FlagSpec* FindSpec(std::span<const FlagSpec> specs, const std::string& name) {
  for (const FlagSpec& spec : specs) {
    if (name == spec.name) {
      return &spec;
    }
  }
  return nullptr;
}

}  // namespace

std::string ParsedArgs::Value(const std::string& flag, size_t index,
                              const std::string& fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || index >= it->second.size()) {
    return fallback;
  }
  return it->second[index];
}

uint64_t ParsedArgs::UintValue(const std::string& flag, uint64_t fallback,
                               size_t index) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || index >= it->second.size()) {
    return fallback;
  }
  return static_cast<uint64_t>(std::strtoull(it->second[index].c_str(), nullptr, 10));
}

double ParsedArgs::DoubleValue(const std::string& flag, double fallback,
                               size_t index) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || index >= it->second.size()) {
    return fallback;
  }
  return std::atof(it->second[index].c_str());
}

ParsedArgs ParseArgs(int argc, char** argv, std::span<const FlagSpec> specs) {
  ParsedArgs out;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0 || arg[2] == '\0') {
      out.positionals_.emplace_back(arg);
      continue;
    }
    std::string name = arg + 2;
    std::string inline_value;
    bool has_inline = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name.resize(eq);
      has_inline = true;
    }
    const FlagSpec* spec = FindSpec(specs, name);
    if (spec == nullptr) {
      out.error_ = "unknown flag --" + name;
      return out;
    }
    std::vector<std::string> values;
    if (has_inline) {
      if (spec->arity != 1) {
        out.error_ = "--" + name + "=... takes exactly one value";
        return out;
      }
      values.push_back(std::move(inline_value));
    } else {
      for (int v = 0; v < spec->arity; ++v) {
        if (i + 1 >= argc) {
          out.error_ = "--" + name + " expects " + std::to_string(spec->arity) +
                       (spec->arity == 1 ? " value" : " values");
          return out;
        }
        values.emplace_back(argv[++i]);
      }
    }
    out.flags_[name] = std::move(values);
  }
  return out;
}

void PrintUsage(std::FILE* out, const char* argv0, const char* positionals,
                std::span<const FlagSpec> specs, const char* epilogue) {
  std::fprintf(out, "usage: %s %s%s\n", argv0, positionals,
               specs.empty() ? "" : " [options]");
  for (const FlagSpec& spec : specs) {
    std::string left = std::string("--") + spec.name;
    if (spec.values[0] != '\0') {
      left += " ";
      left += spec.values;
    }
    std::fprintf(out, "  %-28s %s\n", left.c_str(), spec.help);
  }
  if (epilogue != nullptr) {
    std::fputs(epilogue, out);
  }
}

bool ParseFormatName(const std::string& name, OutputFormat* format) {
  if (name == "text") {
    *format = OutputFormat::kText;
    return true;
  }
  if (name == "json") {
    *format = OutputFormat::kJson;
    return true;
  }
  return false;
}

FlagSpec QueueFlag() {
  return FlagSpec{"queue", 1, "<name>",
                  "TimerQueue backend (heap, tree, hashed_wheel, "
                  "hierarchical_wheel, lawn)"};
}

std::string ResolveQueueName(const ParsedArgs& args, const std::string& fallback) {
  const std::string name = args.Value("queue", 0, fallback);
  std::string valid;
  for (const std::string& candidate : TimerQueueNames()) {
    if (name == candidate) {
      return name;
    }
    if (!valid.empty()) {
      valid += ", ";
    }
    valid += candidate;
  }
  std::fprintf(stderr, "error: unknown timer queue '%s' (valid: %s)\n", name.c_str(),
               valid.c_str());
  return std::string();
}

void PrintTraceReadError(const std::string& path, TraceReadError error) {
  std::fprintf(stderr, "error: cannot read trace file %s: %s\n", path.c_str(),
               TraceReadErrorName(error));
}

}  // namespace tools
}  // namespace tempo
