// Shared command-line plumbing for the tempo tools.
//
// Every tool used to hand-roll its own argv loop; this header gives them
// one flag grammar (`--flag value`, `--flag=value`, multi-value flags like
// `--blame <start> <end>`), one usage renderer, the common `--format` and
// `--jobs` conventions, and one way to report trace-read failures with the
// TraceReadError taxonomy.

#ifndef TEMPO_TOOLS_COMMON_H_
#define TEMPO_TOOLS_COMMON_H_

#include <cstdio>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/trace/file.h"

namespace tempo {
namespace tools {

// One accepted flag. `arity` is the number of values that follow it
// (0 for booleans, 2 for windows like --blame <start> <end>).
struct FlagSpec {
  const char* name;        // without the leading "--"
  int arity = 0;           // values consumed after the flag
  const char* values = ""; // usage placeholder, e.g. "N" or "<start-s> <end-s>"
  const char* help = "";
};

// The result of ParseArgs: positionals in order, flags by name.
// Repeated flags keep the last occurrence.
class ParsedArgs {
 public:
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const std::vector<std::string>& positionals() const { return positionals_; }

  bool Has(const std::string& flag) const { return flags_.count(flag) != 0; }

  // The index-th value of a flag, or `fallback` when the flag is absent.
  std::string Value(const std::string& flag, size_t index = 0,
                    const std::string& fallback = "") const;
  uint64_t UintValue(const std::string& flag, uint64_t fallback, size_t index = 0) const;
  double DoubleValue(const std::string& flag, double fallback, size_t index = 0) const;

 private:
  friend ParsedArgs ParseArgs(int argc, char** argv, std::span<const FlagSpec> specs);

  std::vector<std::string> positionals_;
  std::map<std::string, std::vector<std::string>> flags_;
  std::string error_;
};

// Parses argv[1..] against `specs`. Unknown flags and missing values make
// ok() false with a one-line reason; the tool should print the error and
// its usage, then exit 2.
ParsedArgs ParseArgs(int argc, char** argv, std::span<const FlagSpec> specs);

// Prints "usage: <argv0> <positionals> [options]" plus one aligned line
// per flag, and an optional free-form epilogue (e.g. a workload list).
void PrintUsage(std::FILE* out, const char* argv0, const char* positionals,
                std::span<const FlagSpec> specs, const char* epilogue = nullptr);

// The common report-format convention. Tools with extra formats (tempostat
// has prom/all for metric snapshots) layer them on top of ParseFormatName.
enum class OutputFormat {
  kText,
  kJson,
};

// Maps "text"/"json" to OutputFormat; false for anything else.
bool ParseFormatName(const std::string& name, OutputFormat* format);

// The common `--queue <name>` convention for selecting a TimerQueue
// backend: one spec and one validator, so every tool and bench accepts the
// same names and rejects unknown ones identically.
FlagSpec QueueFlag();

// Resolves the --queue flag against TimerQueueNames(). Returns `fallback`
// when the flag is absent; empty string (after printing an error naming
// the valid backends) for an unknown name.
std::string ResolveQueueName(const ParsedArgs& args, const std::string& fallback);

// "error: cannot read trace file <path>: <reason>\n" on stderr, with the
// reason from TraceReadErrorName.
void PrintTraceReadError(const std::string& path, TraceReadError error);

}  // namespace tools
}  // namespace tempo

#endif  // TEMPO_TOOLS_COMMON_H_
