# Runs tracestat over TRACE_FILE with --jobs 1 and --jobs 4 and fails
# unless the reports are byte-identical — the ordered-merge guarantee,
# checked end to end through the real tool. Invoked by ctest via
# cmake -DTRACESTAT=... -DTRACE_FILE=... -DOUT_DIR=... -DCASE=... -P.

set(serial "${OUT_DIR}/tracestat_${CASE}_jobs1.txt")
set(parallel "${OUT_DIR}/tracestat_${CASE}_jobs4.txt")

execute_process(
  COMMAND ${TRACESTAT} ${TRACE_FILE} --jobs 1 --blame 5 30
  OUTPUT_FILE ${serial}
  RESULT_VARIABLE serial_status)
if(NOT serial_status EQUAL 0)
  message(FATAL_ERROR "tracestat --jobs 1 failed with status ${serial_status}")
endif()

execute_process(
  COMMAND ${TRACESTAT} ${TRACE_FILE} --jobs 4 --blame 5 30
  OUTPUT_FILE ${parallel}
  RESULT_VARIABLE parallel_status)
if(NOT parallel_status EQUAL 0)
  message(FATAL_ERROR "tracestat --jobs 4 failed with status ${parallel_status}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${serial} ${parallel}
  RESULT_VARIABLE diff_status)
if(NOT diff_status EQUAL 0)
  message(FATAL_ERROR
          "tracestat output differs between --jobs 1 and --jobs 4 for ${TRACE_FILE}")
endif()
