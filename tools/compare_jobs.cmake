# Runs TOOL over TRACE_FILE with --jobs 1 and --jobs 4 and fails unless
# the reports are byte-identical — the ordered-merge guarantee, checked
# end to end through the real tool. Invoked by ctest via
#   cmake -DTOOL=... -DTRACE_FILE=... -DOUT_DIR=... -DCASE=...
#         [-DTOOL_ARGS=arg1;arg2;...] -P compare_jobs.cmake
# TOOL_ARGS are extra tool arguments (a CMake ;-list); TRACESTAT is
# accepted as a legacy alias for TOOL.

if(NOT DEFINED TOOL)
  set(TOOL ${TRACESTAT})
  set(TOOL_ARGS "--blame" "5" "30")
endif()
get_filename_component(tool_name ${TOOL} NAME_WE)

set(serial "${OUT_DIR}/${tool_name}_${CASE}_jobs1.txt")
set(parallel "${OUT_DIR}/${tool_name}_${CASE}_jobs4.txt")

execute_process(
  COMMAND ${TOOL} ${TRACE_FILE} --jobs 1 ${TOOL_ARGS}
  OUTPUT_FILE ${serial}
  RESULT_VARIABLE serial_status)
if(NOT serial_status EQUAL 0)
  message(FATAL_ERROR "${tool_name} --jobs 1 failed with status ${serial_status}")
endif()

execute_process(
  COMMAND ${TOOL} ${TRACE_FILE} --jobs 4 ${TOOL_ARGS}
  OUTPUT_FILE ${parallel}
  RESULT_VARIABLE parallel_status)
if(NOT parallel_status EQUAL 0)
  message(FATAL_ERROR "${tool_name} --jobs 4 failed with status ${parallel_status}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${serial} ${parallel}
  RESULT_VARIABLE diff_status)
if(NOT diff_status EQUAL 0)
  message(FATAL_ERROR
          "${tool_name} output differs between --jobs 1 and --jobs 4 for ${TRACE_FILE}")
endif()
