// tempoquery — selective queries over a recorded trace file.
//
// The study answered "who sets timers in this window?" by grepping the
// converted text trace; tempoquery answers it from the binary file
// directly. The filter (--where) becomes a Predicate that the analysis
// pipeline pushes down to the v3 zone-map index, so a selective query
// over a columnar trace decodes only the chunks that can match — the
// stderr footer reports how many chunks and bytes were actually touched.
// v1/v2 traces work too; they just scan everything.
//
//   tempoquery trace.trc --where pid=3|7,op=set|cancel,t=[1.5,30)
//   tempoquery trace.trc --where op=set --group-by callsite --top 10
//
// Like tracestat, output is byte-identical for any --jobs value.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/pipeline.h"
#include "src/analysis/query.h"
#include "src/trace/chunked.h"
#include "src/trace/predicate.h"
#include "tools/common.h"

namespace {

using namespace tempo;

constexpr const char* kWhereHelp =
    "  where clauses (comma separated):\n"
    "    pid=<p>|<p>|...     records of these pids\n"
    "    op=<op>|<op>|...    ops: init,set,cancel,expire,block,unblock\n"
    "    t=[<a>,<b>)         timestamps in seconds, <a> inclusive, <b> exclusive\n";

// Splits `where` at commas that are not inside the [a,b) of a time range.
std::vector<std::string> SplitClauses(const std::string& where) {
  std::vector<std::string> clauses;
  std::string current;
  int depth = 0;
  for (const char c : where) {
    if (c == '[') {
      ++depth;
    } else if (c == ')' || c == ']') {
      if (depth > 0) {
        --depth;
      }
    }
    if (c == ',' && depth == 0) {
      clauses.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) {
    clauses.push_back(current);
  }
  return clauses;
}

std::vector<std::string> SplitAlternatives(const std::string& list) {
  std::vector<std::string> out;
  std::string current;
  for (const char c : list) {
    if (c == '|') {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

bool ParseOpName(const std::string& name, TimerOp* op) {
  for (uint8_t o = 0; o <= static_cast<uint8_t>(TimerOp::kUnblock); ++o) {
    if (name == TimerOpName(static_cast<TimerOp>(o))) {
      *op = static_cast<TimerOp>(o);
      return true;
    }
  }
  return false;
}

// Parses one --where string into `predicate`; false (with a message on
// stderr) on malformed input.
bool ParseWhere(const std::string& where, Predicate* predicate) {
  for (const std::string& clause : SplitClauses(where)) {
    const size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "error: malformed where clause '%s'\n", clause.c_str());
      return false;
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "pid") {
      for (const std::string& pid : SplitAlternatives(value)) {
        char* rest = nullptr;
        const long parsed = std::strtol(pid.c_str(), &rest, 10);
        if (pid.empty() || rest == nullptr || *rest != '\0') {
          std::fprintf(stderr, "error: bad pid '%s'\n", pid.c_str());
          return false;
        }
        predicate->pids.push_back(static_cast<Pid>(parsed));
      }
    } else if (key == "op") {
      uint8_t mask = 0;
      for (const std::string& name : SplitAlternatives(value)) {
        TimerOp op;
        if (!ParseOpName(name, &op)) {
          std::fprintf(stderr, "error: unknown op '%s'\n", name.c_str());
          return false;
        }
        mask |= static_cast<uint8_t>(1u << static_cast<uint8_t>(op));
      }
      predicate->op_mask = mask;
    } else if (key == "t") {
      double begin = 0.0;
      double end = 0.0;
      if (std::sscanf(value.c_str(), "[%lf,%lf)", &begin, &end) != 2 || end < begin) {
        std::fprintf(stderr, "error: bad time range '%s' (want t=[a,b))\n",
                     value.c_str());
        return false;
      }
      predicate->time_begin = FromSeconds(begin);
      predicate->time_end = FromSeconds(end);
    } else {
      std::fprintf(stderr, "error: unknown where key '%s'\n", key.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  static const tools::FlagSpec kFlags[] = {
      {"where", 1, "<clauses>", "filter, e.g. pid=3|7,op=set,t=[1.5,30)"},
      {"group-by", 1, "callsite|pid|op", "aggregate rows by this key"},
      {"top", 1, "K", "render only the K biggest groups (default all)"},
      {"jobs", 1, "N", "worker threads (0 = one per core; default 0)"},
      {"format", 1, "text|json", "report format (default text)"},
  };
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, kFlags);
  if (!args.ok() || args.positionals().size() != 1) {
    if (!args.ok()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    tools::PrintUsage(stderr, argv[0], "<trace-file>", kFlags, kWhereHelp);
    return 2;
  }
  tools::OutputFormat format = tools::OutputFormat::kText;
  if (!tools::ParseFormatName(args.Value("format", 0, "text"), &format)) {
    std::fprintf(stderr, "error: unknown format %s\n", args.Value("format").c_str());
    return 2;
  }

  QueryOptions query;
  if (args.Has("where") && !ParseWhere(args.Value("where"), &query.predicate)) {
    return 2;
  }
  if (args.Has("group-by")) {
    const std::string by = args.Value("group-by");
    if (by == "callsite") {
      query.group_by = QueryGroupBy::kCallsite;
    } else if (by == "pid") {
      query.group_by = QueryGroupBy::kPid;
    } else if (by == "op") {
      query.group_by = QueryGroupBy::kOp;
    } else {
      std::fprintf(stderr, "error: unknown group-by key '%s'\n", by.c_str());
      return 2;
    }
  }
  query.top_k = static_cast<size_t>(args.UintValue("top", 0));

  const std::string& path = args.positionals()[0];
  TraceReadError read_error = TraceReadError::kIo;
  const auto reader = TraceChunkReader::Open(path, &read_error);
  if (!reader.has_value()) {
    tools::PrintTraceReadError(path, read_error);
    return 1;
  }

  std::vector<std::unique_ptr<AnalysisPass>> passes;
  passes.push_back(std::make_unique<QueryPass>(query, &reader->callsites()));

  PipelineOptions pipeline_options;
  pipeline_options.jobs = static_cast<size_t>(args.UintValue("jobs", 0));
  pipeline_options.stats_label = "tempoquery";
  PipelineRunner runner(pipeline_options);
  if (!runner.Run(*reader, passes, &read_error)) {
    tools::PrintTraceReadError(path, read_error);
    return 1;
  }
  QueryPass& pass = *static_cast<QueryPass*>(passes[0].get());

  if (format == tools::OutputFormat::kJson) {
    std::fputs(pass.RenderJson().c_str(), stdout);
  } else {
    tempo::TextRenderSink sink(stdout);
    pass.Render(sink);
  }
  // Pushdown effectiveness, on stderr so it never perturbs the report
  // byte-compare between worker counts.
  const PipelineStats& stats = runner.stats();
  std::fprintf(stderr,
               "# scanned %llu records in %llu chunks (%llu skipped), %llu bytes decoded\n",
               static_cast<unsigned long long>(stats.records),
               static_cast<unsigned long long>(stats.chunks),
               static_cast<unsigned long long>(stats.chunks_skipped),
               static_cast<unsigned long long>(stats.encoded_bytes));
  return 0;
}
