// tempostat — runs a named workload and dumps tempo's own metrics
// snapshot: timer-queue op counts and latencies, dispatcher batching
// efficiency, trace-sink drop rates, sim event-loop throughput, TCP
// timeout fates.
//
//   workload: micromix (synthetic: all four timer queues, the temporal
//             dispatcher, and a short traced webserver run) or any of
//             tracerec's workloads: linux-{idle,skype,firefox,webserver},
//             vista-{idle,skype,firefox,webserver,desktop}.
//
// By default the obs probe clock is a deterministic virtual counter, so
// repeated runs with the same arguments produce byte-identical snapshots
// (op counts and relative latencies are simulation facts, not wall-clock
// noise). Pass --wall to measure real TSC cycles instead.
//
// The recorded trace is folded through the analysis pipeline's SummaryPass
// before the snapshot, so text output leads with a trace summary and the
// snapshot itself includes the trace_pipeline_* counters. --jobs defaults
// to 1 to keep snapshots byte-stable across machines; higher values
// exercise the parallel pipeline (workers never touch the probe clock, so
// the virtual-clock determinism holds for any job count).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/pipeline.h"
#include "src/analysis/render.h"
#include "src/analysis/summary.h"
#include "src/dispatcher/dispatcher.h"
#include "src/obs/probe.h"
#include "src/obs/snapshot.h"
#include "src/sim/simulator.h"
#include "src/timer/queue.h"
#include "src/timer/timer_service.h"
#include "src/workloads/linux_workloads.h"
#include "src/workloads/vista_workloads.h"
#include "tools/common.h"

namespace tempo {
namespace {

// Deterministic probe clock: advances one "cycle" per read, so a probed
// region's cost equals the number of probe-clock reads it contains —
// stable across machines and runs.
uint64_t g_virtual_cycles = 0;
uint64_t VirtualCycleClock() { return ++g_virtual_cycles; }

// Exercises one timer-queue implementation with a set/cancel/expire mix
// echoing the paper's headline shape: most timers are canceled, not fired.
void DriveQueue(const std::string& name, uint64_t seed) {
  TimerQueueOptions queue_options;
  queue_options.name = name;
  std::unique_ptr<TimerQueue> queue = MakeTimerQueue(queue_options);
  uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<TimerHandle> handles;
  handles.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const SimTime expiry = static_cast<SimTime>(next() % 2000) * kMillisecond;
    handles.push_back(queue->Schedule(expiry, [](TimerHandle) {}));
  }
  // Cancel ~70% before they can fire (Section 4: "timers are overwhelmingly
  // used as insurance against events that rarely happen").
  for (size_t i = 0; i < handles.size(); ++i) {
    if (i % 10 < 7) {
      queue->Cancel(handles[i]);
    }
  }
  for (SimTime t = 100 * kMillisecond; t <= 2 * kSecond; t += 100 * kMillisecond) {
    queue->Advance(t);
  }
}

// Exercises the sharded TimerService front-end: shard routing, the
// published-deadline cache and the due-shard filter in AdvanceAll.
// Single-threaded by design — the virtual probe clock is a plain global —
// so shards are addressed explicitly with ScheduleOn.
void DriveTimerService(const std::string& queue, uint64_t seed) {
  TimerService::Options options;
  options.queue = queue;
  options.shards = 4;
  options.stats_label = "micromix";
  TimerService service(options);
  uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<TimerHandle> handles;
  handles.reserve(8000);
  for (int i = 0; i < 8000; ++i) {
    const SimTime expiry = static_cast<SimTime>(next() % 2000) * kMillisecond;
    handles.push_back(service.ScheduleOn(next() % 4, expiry, [](TimerHandle) {}));
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    if (i % 10 < 7) {
      service.Cancel(handles[i]);
    }
  }
  for (SimTime t = 100 * kMillisecond; t <= 2 * kSecond; t += 100 * kMillisecond) {
    if (service.GlobalNextExpiry() <= t) {
      service.AdvanceAll(t);
    }
  }
  service.PublishStats();
}

// A dispatcher scenario with enough concurrent cadences that batching and
// piggybacking actually happen.
void DriveDispatcher(uint64_t seed) {
  Simulator sim(seed);
  TemporalDispatcher dispatcher(&sim);
  DispatchTask* media = dispatcher.CreateTask("media", 4);
  media->RunEvery(10 * kMillisecond, 2 * kMillisecond, [] {});
  DispatchTask* poll = dispatcher.CreateTask("poll", 1);
  poll->RunEvery(30 * kMillisecond, 20 * kMillisecond, [] {});
  DispatchTask* housekeeping = dispatcher.CreateTask("housekeeping", 1);
  housekeeping->RunEvery(500 * kMillisecond, 400 * kMillisecond, [] {});
  DispatchTask* guard_owner = dispatcher.CreateTask("guarded-io", 2);
  const RequirementId guard =
      guard_owner->Guard(5 * kSecond, [] { std::fprintf(stderr, "watchdog fired\n"); });
  DispatchTask* kicker = dispatcher.CreateTask("kicker", 1);
  kicker->RunEvery(1 * kSecond, 100 * kMillisecond,
                   [guard_owner, guard] { guard_owner->Kick(guard); });
  sim.RunFor(30 * kSecond);
}

constexpr const char* kWorkloadList =
    "  workloads: micromix, linux-{idle,skype,firefox,webserver},\n"
    "             vista-{idle,skype,firefox,webserver,desktop}\n";

}  // namespace
}  // namespace tempo

int main(int argc, char** argv) {
  using namespace tempo;
  static const tools::FlagSpec kFlags[] = {
      {"minutes", 1, "M", "simulated duration (default 3)"},
      {"seed", 1, "S", "workload random seed (default 2008)"},
      {"cpus", 1, "N", "simulated CPUs (clock domains) in the workload (default 1)"},
      {"format", 1, "text|json|prom|all", "snapshot format (default text)"},
      {"jobs", 1, "N", "trace-pipeline workers (0 = one per core; default 1)"},
      {"wall", 0, "", "measure real TSC cycles instead of the virtual clock"},
      tools::QueueFlag(),
  };
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, kFlags);
  if (!args.ok() || args.positionals().size() != 1) {
    if (!args.ok()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    tools::PrintUsage(stderr, argv[0], "<workload>", kFlags, kWorkloadList);
    return 2;
  }
  const std::string& which = args.positionals()[0];
  const std::string format = args.Value("format", 0, "text");
  const double minutes = args.DoubleValue("minutes", 3.0);
  const uint64_t seed = args.UintValue("seed", 2008);
  const uint64_t cpus = args.UintValue("cpus", 1);
  if (format != "text" && format != "json" && format != "prom" && format != "all") {
    std::fprintf(stderr, "error: unknown format %s\n", format.c_str());
    tools::PrintUsage(stderr, argv[0], "<workload>", kFlags, kWorkloadList);
    return 2;
  }

  const std::string queue = tools::ResolveQueueName(args, "hierarchical_wheel");
  if (queue.empty()) {
    return 2;
  }

  if (!args.Has("wall")) {
    obs::SetProbeClock(&VirtualCycleClock);
  }

  WorkloadOptions options;
  options.duration = FromSeconds(minutes * 60.0);
  options.seed = seed;
  options.cpus = static_cast<size_t>(std::max<uint64_t>(1, cpus));

  // Keeps the workload's simulator/kernel alive until the snapshot is taken.
  TraceRun run;
  if (which == "micromix") {
    // --queue narrows the sweep to one backend; the default drives all of
    // them (the cross-implementation comparison the snapshot is for).
    if (args.Has("queue")) {
      DriveQueue(queue, seed);
    } else {
      for (const std::string& name : TimerQueueNames()) {
        DriveQueue(name, seed);
      }
    }
    DriveTimerService(queue, seed);
    DriveDispatcher(seed);
    // A short traced webserver run covers the kernel wheel, the trace
    // sinks and the TCP stack in one go.
    options.duration = FromSeconds(std::min(minutes, 1.0) * 60.0);
    run = RunLinuxWebserver(options);
  } else if (which == "linux-idle") {
    run = RunLinuxIdle(options);
  } else if (which == "linux-skype") {
    run = RunLinuxSkype(options);
  } else if (which == "linux-firefox") {
    run = RunLinuxFirefox(options);
  } else if (which == "linux-webserver") {
    run = RunLinuxWebserver(options);
  } else if (which == "vista-idle") {
    run = RunVistaIdle(options);
  } else if (which == "vista-skype") {
    run = RunVistaSkype(options);
  } else if (which == "vista-firefox") {
    run = RunVistaFirefox(options);
  } else if (which == "vista-webserver") {
    run = RunVistaWebserver(options);
  } else if (which == "vista-desktop") {
    run = RunVistaDesktop(options);
  } else {
    std::fprintf(stderr, "error: unknown workload %s\n", which.c_str());
    return 2;
  }

  // Fold the recorded trace through the streaming pipeline: the summary
  // section below comes from SummaryPass, and the run contributes
  // trace_pipeline_* counters to the snapshot.
  std::vector<std::unique_ptr<AnalysisPass>> passes;
  passes.push_back(std::make_unique<SummaryPass>(run.label.empty() ? which : run.label));
  PipelineOptions pipeline_options;
  pipeline_options.jobs = static_cast<size_t>(args.UintValue("jobs", 1));
  pipeline_options.stats_label = which;
  PipelineRunner runner(pipeline_options);
  runner.Run(std::span<const TraceRecord>(run.records.data(), run.records.size()), passes);
  if (format == "text" || format == "all") {
    std::printf("trace summary:\n");
    TextRenderSink sink(stdout);
    passes.front()->Render(sink);
  }

  const obs::MetricsSnapshot snapshot = obs::Registry::Global().TakeSnapshot();
  if (format == "text" || format == "all") {
    std::fputs(obs::RenderText(snapshot).c_str(), stdout);
  }
  if (format == "json" || format == "all") {
    std::fputs(obs::RenderJson(snapshot).c_str(), stdout);
    std::fputc('\n', stdout);
  }
  if (format == "prom" || format == "all") {
    std::fputs(obs::RenderPrometheus(snapshot).c_str(), stdout);
  }
  return 0;
}
