// tempotop — live timer observatory. Runs a workload with a live tap on
// its trace path and shows, while the simulation executes, what an
// operator of the timer subsystem would want on a dashboard: the top-K
// per-process set/expire/cancel rates (Figure 1 computed online), active
// rate bursts (the Outlook watchdog storms), the streaming usage-pattern
// mix, relay-channel drop counters, and the obs metrics snapshot.
//
// The workload tees every recorded trace record into a relay channel; a
// RelayDrainer polls that channel on a simulated-time cadence and feeds
// the timestamp-ordered merge to a LiveAnalyzer (src/live). Nothing here
// re-reads the recorded trace: every number on screen was computed online,
// in bounded memory, from the drain path.
//
//   workload: linux-{idle,skype,firefox,webserver},
//             vista-{idle,skype,firefox,webserver,desktop}, or `service`
//             (drives the sharded TimerService through its relay trace
//             path instead of a simulated OS).
//
// --check-burst and --check-rate turn the tool into an assertion for CI:
// exit 1 unless the named series saw a burst of at least the given rate /
// kept its mean rate inside the given band.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/latency.h"
#include "src/fleet/aggregator.h"
#include "src/fleet/host_sim.h"
#include "src/fleet/server.h"
#include "src/live/live_analyzer.h"
#include "src/live/slack_tracker.h"
#include "src/obs/scrape_server.h"
#include "src/obs/snapshot.h"
#include "src/sim/simulator.h"
#include "src/timer/timer_service.h"
#include "src/trace/relay.h"
#include "src/trace/transport.h"
#include "src/workloads/linux_workloads.h"
#include "src/workloads/vista_workloads.h"
#include "tools/common.h"

namespace tempo {
namespace {

constexpr const char* kWorkloadList =
    "  workloads: linux-{idle,skype,firefox,webserver},\n"
    "             vista-{idle,skype,firefox,webserver,desktop}, service\n";

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Labels every registered process by its own name; pids the table does not
// know (there are none in practice) fall under "System".
RateGrouping GroupingFrom(const ProcessTable& table) {
  RateGrouping grouping;
  for (const Process& p : table.processes()) {
    if (p.pid != kKernelPid) {
      grouping.pid_labels[p.pid] = p.name;
    }
  }
  return grouping;
}

void PrintSeries(std::FILE* out, const char* title,
                 const std::vector<live::LiveSeriesStats>& series) {
  if (series.empty()) {
    return;
  }
  std::fprintf(out, "%s\n", title);
  std::fprintf(out, "  %-28s %10s %10s %10s %9s %9s %9s  %s\n", "label", "sets",
               "expires", "cancels", "mean/s", "last/s", "peak/s", "burst");
  for (const live::LiveSeriesStats& s : series) {
    std::string burst;
    if (s.bursts > 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s%" PRIu64 " (peak %.0f/s)",
                    s.burst_active ? "*ACTIVE* " : "", s.bursts, s.burst_peak_rate);
      burst = buf;
    }
    std::fprintf(out, "  %-28s %10" PRIu64 " %10" PRIu64 " %10" PRIu64
                      " %9.1f %9.1f %9.1f  %s\n",
                 s.label.c_str(), s.sets, s.expires, s.cancels, s.mean_rate,
                 s.last_rate, s.peak_rate, burst.c_str());
  }
}

void PrintText(std::FILE* out, const std::string& workload,
               const live::LiveSnapshot& snap, RelayChannelSet* channels,
               const std::string& latency_pane) {
  std::fprintf(out, "tempotop — %s @ %.1fs (window %.3fs, %" PRIu64 " records)\n",
               workload.c_str(), ToSeconds(snap.now), ToSeconds(snap.window),
               snap.records);
  PrintSeries(out, "processes:", snap.processes);
  PrintSeries(out, "origins:", snap.origins);
  if (!snap.patterns.empty()) {
    std::fprintf(out, "patterns:");
    for (const auto& [name, count] : snap.patterns) {
      std::fprintf(out, " %s=%" PRIu64, name.c_str(), count);
    }
    std::fprintf(out, "  (tracked %" PRIu64 ", evicted %" PRIu64 ")\n",
                 snap.classifier_tracked, snap.classifier_evictions);
  }
  if (!latency_pane.empty()) {
    std::fputs(latency_pane.c_str(), out);
  }
  std::fprintf(out, "relay:");
  for (size_t i = 0; i < channels->size(); ++i) {
    const RelayChannel* ch = channels->channel(i);
    std::fprintf(out, " %s accepted=%" PRIu64 " dropped=%" PRIu64,
                 ch->name().c_str(), ch->accepted(), ch->dropped());
  }
  std::fprintf(out, "\n");
  if (snap.windows_evicted > 0) {
    std::fprintf(out, "note: %" PRIu64 " rate windows evicted (ring too small"
                      " for this run length)\n", snap.windows_evicted);
  }
}

void PrintJsonSeries(std::string* out, const char* key,
                     const std::vector<live::LiveSeriesStats>& series) {
  *out += std::string("\"") + key + "\":[";
  for (size_t i = 0; i < series.size(); ++i) {
    const live::LiveSeriesStats& s = series[i];
    if (i > 0) {
      *out += ",";
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"label\":\"%s\",\"sets\":%" PRIu64 ",\"expires\":%" PRIu64
                  ",\"cancels\":%" PRIu64
                  ",\"mean_rate\":%.3f,\"last_rate\":%.3f,\"peak_rate\":%.3f"
                  ",\"peak_at_s\":%.3f,\"burst_active\":%s,\"bursts\":%" PRIu64
                  ",\"burst_peak_rate\":%.3f}",
                  JsonEscape(s.label).c_str(), s.sets, s.expires, s.cancels,
                  s.mean_rate, s.last_rate, s.peak_rate, s.peak_at_s,
                  s.burst_active ? "true" : "false", s.bursts, s.burst_peak_rate);
    *out += buf;
  }
  *out += "]";
}

void PrintJsonLatency(std::string* json, const SlackState& state) {
  char buf[512];
  const SlackHist& total = state.total();
  std::snprintf(buf, sizeof(buf),
                "\"latency\":{\"fired\":%" PRIu64 ",\"canceled\":%" PRIu64
                ",\"rearmed\":%" PRIu64 ",\"open\":%" PRIu64 ",\"early\":%" PRIu64
                ",\"unmatched\":%" PRIu64
                ",\"slack_p50_ns\":%.0f,\"slack_p99_ns\":%.0f,\"slack_max_ns\":%" PRIu64
                "},",
                state.fired_spans(), state.canceled_spans(), state.rearmed_spans(),
                state.open_spans(), state.early_fires(), state.unmatched_closes(),
                total.Quantile(0.50), total.Quantile(0.99), total.max);
  *json += buf;
}

void PrintJson(std::FILE* out, const std::string& workload,
               const live::LiveSnapshot& snap, RelayChannelSet* channels,
               const SlackState& slack) {
  std::string json = "{";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"workload\":\"%s\",\"now_s\":%.3f,\"window_s\":%.3f,"
                "\"records\":%" PRIu64 ",",
                JsonEscape(workload).c_str(), ToSeconds(snap.now),
                ToSeconds(snap.window), snap.records);
  json += buf;
  PrintJsonLatency(&json, slack);
  PrintJsonSeries(&json, "processes", snap.processes);
  json += ",";
  PrintJsonSeries(&json, "origins", snap.origins);
  json += ",\"patterns\":{";
  for (size_t i = 0; i < snap.patterns.size(); ++i) {
    if (i > 0) {
      json += ",";
    }
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64,
                  snap.patterns[i].first.c_str(), snap.patterns[i].second);
    json += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "},\"classifier\":{\"tracked\":%" PRIu64 ",\"evictions\":%" PRIu64
                "},\"windows_evicted\":%" PRIu64 ",\"relay\":[",
                snap.classifier_tracked, snap.classifier_evictions,
                snap.windows_evicted);
  json += buf;
  for (size_t i = 0; i < channels->size(); ++i) {
    const RelayChannel* ch = channels->channel(i);
    if (i > 0) {
      json += ",";
    }
    std::snprintf(buf, sizeof(buf),
                  "{\"channel\":\"%s\",\"accepted\":%" PRIu64 ",\"dropped\":%" PRIu64
                  "}",
                  JsonEscape(ch->name()).c_str(), ch->accepted(), ch->dropped());
    json += buf;
  }
  json += "],\"metrics\":";
  json += obs::RenderJson(obs::Registry::Global().TakeSnapshot());
  json += "}";
  std::fprintf(out, "%s\n", json.c_str());
}

// `service` mode: a sharded TimerService traced through its own relay
// channels, drained live — no simulated OS involved. Deterministic
// single-threaded driver (the TSan tests cover the concurrent case).
void DriveService(RelayChannelSet* channels, RelayDrainer* drainer,
                  SimDuration duration, uint64_t seed, const std::string& queue) {
  TimerService::Options options;
  options.queue = queue;
  options.shards = 4;
  options.stats_label = "tempotop";
  options.trace = channels;
  TimerService service(options);
  uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<TimerHandle> handles;
  for (SimTime now = 0; now < duration; now += 10 * kMillisecond) {
    service.SetTraceTime(now);
    for (int i = 0; i < 20; ++i) {
      const SimTime expiry = now + kMillisecond * (1 + next() % 5000);
      handles.push_back(service.ScheduleOn(next() % 4, expiry, [](TimerHandle) {}));
    }
    // Cancel ~70% soon after arming: the paper's insurance idiom.
    while (handles.size() > 6) {
      const TimerHandle h = handles.front();
      handles.erase(handles.begin());
      if (next() % 10 < 7) {
        service.Cancel(h);
      }
    }
    service.AdvanceAll(now);
    drainer->Poll();
  }
  service.PublishStats();
}

// --- fleet (cluster) mode ---

// Renders the registry once and serves it over a real HTTP /metrics
// endpoint, then scrapes it back with the built-in client and re-parses
// the exposition text — the curl-equivalent round trip, as an assertion.
int SelfScrape() {
  const std::string rendered =
      obs::RenderPrometheus(obs::Registry::Global().TakeSnapshot());
  obs::ScrapeServer server([&rendered] { return rendered; });
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "serve-metrics FAILED: %s\n", error.c_str());
    return 1;
  }
  int status = 0;
  std::string body;
  const bool ok = obs::HttpGet("127.0.0.1", server.port(), "/metrics", &status,
                               &body, &error);
  server.Stop();
  if (!ok || status != 200) {
    std::fprintf(stderr, "serve-metrics FAILED: %s (status %d)\n",
                 error.c_str(), status);
    return 1;
  }
  std::vector<obs::PromSample> samples;
  if (!obs::ParsePrometheusText(body, &samples, &error)) {
    std::fprintf(stderr, "serve-metrics FAILED: scrape did not round-trip: %s\n",
                 error.c_str());
    return 1;
  }
  std::fprintf(stdout, "scrape: GET 127.0.0.1:%u/metrics -> %zu bytes, %zu samples\n",
               server.port(), body.size(), samples.size());
  return 0;
}

void PrintFleetSeries(std::FILE* out, const char* title,
                      const std::vector<fleet::FleetSeries>& series) {
  if (series.empty()) {
    return;
  }
  std::fprintf(out, "%s\n", title);
  std::fprintf(out, "  %-20s %6s %12s %12s %10s %9s %7s %10s\n", "label", "hosts",
               "sets", "rate/s", "peak/s", "bursting", "bursts", "burstpeak");
  for (const fleet::FleetSeries& s : series) {
    std::fprintf(out, "  %-20s %6" PRIu64 " %12" PRIu64 " %12.1f %10.1f %9" PRIu64
                      " %7" PRIu64 " %10.1f\n",
                 s.label.c_str(), s.hosts, s.sets, s.rate_sum, s.peak_rate,
                 s.hosts_bursting, s.bursts, s.burst_peak_rate);
  }
}

// One glyph per host: '*' bursting, '!' stale, 'x' lossy, '.' quiet.
char HostGlyph(const fleet::FleetHostStatus& h) {
  if (!h.clean) {
    return 'x';
  }
  if (h.stale) {
    return '!';
  }
  return h.burst_active ? '*' : '.';
}

void PrintFleetText(std::FILE* out, const fleet::FleetView& view) {
  std::fprintf(out,
               "tempotop --cluster @ %.1fs  hosts %" PRIu64 " (%" PRIu64
               " live, %" PRIu64 " stale, %" PRIu64 " closed)  frames %" PRIu64
               "  records %" PRIu64 "\n",
               ToSeconds(view.fleet_now), view.hosts_total, view.hosts_live,
               view.hosts_stale, view.hosts_closed, view.frames_total,
               view.records_total);
  if (view.hosts_reporting_slack > 0) {
    const fleet::SlackDigest& d = view.slack;
    std::fprintf(out,
                 "fleet slack: %" PRIu64 " fired spans on %" PRIu64
                 " hosts  p50 %s  p99 %s  max %s  (canceled %" PRIu64
                 ", early %" PRIu64 ", open %" PRIu64 ")\n",
                 d.slack.count, view.hosts_reporting_slack,
                 FormatDuration(static_cast<SimDuration>(d.slack.Quantile(0.50))).c_str(),
                 FormatDuration(static_cast<SimDuration>(d.slack.Quantile(0.99))).c_str(),
                 FormatDuration(static_cast<SimDuration>(d.slack.max)).c_str(),
                 d.canceled, d.early, d.open);
  }
  PrintFleetSeries(out, "processes:", view.processes);
  PrintFleetSeries(out, "origins:", view.origins);
  if (!view.patterns.empty()) {
    std::fprintf(out, "patterns:");
    for (const auto& [name, count] : view.patterns) {
      std::fprintf(out, " %s=%" PRIu64, name.c_str(), count);
    }
    std::fprintf(out, "\n");
  }
  std::fprintf(out, "burst map (*=burst !=stale x=lossy):\n");
  for (size_t i = 0; i < view.hosts.size(); i += 64) {
    std::fprintf(out, "  ");
    for (size_t j = i; j < std::min(view.hosts.size(), i + 64); ++j) {
      std::fputc(HostGlyph(view.hosts[j]), out);
    }
    std::fputc('\n', out);
  }
  // The hosts an operator has to chase: stale, lossy or dirty-closed.
  size_t shown = 0;
  for (const fleet::FleetHostStatus& h : view.hosts) {
    if (h.clean && !h.stale) {
      continue;
    }
    if (shown == 0) {
      std::fprintf(out, "lagging/lossy hosts:\n");
    }
    if (++shown > 10) {
      std::fprintf(out, "  ...\n");
      break;
    }
    std::fprintf(out,
                 "  %-16s %s age=%.1fs seq=%" PRIu64 " gaps=%" PRIu64
                 " dup=%" PRIu64 " relay_dropped=%" PRIu64 "\n",
                 h.host.c_str(), h.stale ? "STALE" : "LOSSY", ToSeconds(h.age),
                 h.sequence, h.sequence_gaps, h.duplicates, h.relay_dropped);
  }
  for (const fleet::FleetSourceStatus& s : view.sources) {
    std::fprintf(out, "source %s: frames=%" PRIu64 " decode_errors=%" PRIu64 "%s%s\n",
                 s.source.c_str(), s.frames, s.decode_errors,
                 s.last_error.empty() ? "" : " last_error=",
                 s.last_error.c_str());
  }
  std::fprintf(out,
               "loss: decode_errors=%" PRIu64 " sequence_gaps=%" PRIu64
               " duplicates=%" PRIu64 " dirty_closes=%" PRIu64
               " relay_dropped=%" PRIu64 " -> %s\n",
               view.decode_errors_total, view.sequence_gaps_total,
               view.duplicates_total, view.dirty_closes_total,
               view.relay_dropped_total, view.clean() ? "clean" : "LOSSY");
}

void PrintFleetJson(std::FILE* out, const fleet::FleetView& view) {
  std::string json = "{";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "\"fleet_now_s\":%.3f,\"hosts_total\":%" PRIu64
                ",\"hosts_live\":%" PRIu64 ",\"hosts_stale\":%" PRIu64
                ",\"hosts_closed\":%" PRIu64 ",\"frames\":%" PRIu64
                ",\"records\":%" PRIu64 ",\"clean\":%s,",
                ToSeconds(view.fleet_now), view.hosts_total, view.hosts_live,
                view.hosts_stale, view.hosts_closed, view.frames_total,
                view.records_total, view.clean() ? "true" : "false");
  json += buf;
  auto series_json = [&](const char* key, const std::vector<fleet::FleetSeries>& list) {
    json += std::string("\"") + key + "\":[";
    for (size_t i = 0; i < list.size(); ++i) {
      const fleet::FleetSeries& s = list[i];
      if (i > 0) {
        json += ",";
      }
      std::snprintf(buf, sizeof(buf),
                    "{\"label\":\"%s\",\"hosts\":%" PRIu64 ",\"sets\":%" PRIu64
                    ",\"rate\":%.3f,\"peak_rate\":%.3f,\"hosts_bursting\":%" PRIu64
                    ",\"bursts\":%" PRIu64 ",\"burst_peak_rate\":%.3f}",
                    JsonEscape(s.label).c_str(), s.hosts, s.sets, s.rate_sum,
                    s.peak_rate, s.hosts_bursting, s.bursts, s.burst_peak_rate);
      json += buf;
    }
    json += "]";
  };
  std::snprintf(buf, sizeof(buf),
                "\"slack\":{\"hosts\":%" PRIu64 ",\"fired\":%" PRIu64
                ",\"canceled\":%" PRIu64 ",\"early\":%" PRIu64 ",\"open\":%" PRIu64
                ",\"p50_ns\":%.0f,\"p99_ns\":%.0f,\"max_ns\":%" PRIu64 "},",
                view.hosts_reporting_slack, view.slack.slack.count,
                view.slack.canceled, view.slack.early, view.slack.open,
                view.slack.slack.Quantile(0.50), view.slack.slack.Quantile(0.99),
                view.slack.slack.max);
  json += buf;
  series_json("processes", view.processes);
  json += ",";
  series_json("origins", view.origins);
  json += ",\"patterns\":{";
  for (size_t i = 0; i < view.patterns.size(); ++i) {
    if (i > 0) {
      json += ",";
    }
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64,
                  JsonEscape(view.patterns[i].first).c_str(),
                  view.patterns[i].second);
    json += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "},\"loss\":{\"decode_errors\":%" PRIu64 ",\"sequence_gaps\":%" PRIu64
                ",\"duplicates\":%" PRIu64 ",\"dirty_closes\":%" PRIu64
                ",\"relay_dropped\":%" PRIu64 "},\"burst_map\":\"",
                view.decode_errors_total, view.sequence_gaps_total,
                view.duplicates_total, view.dirty_closes_total,
                view.relay_dropped_total);
  json += buf;
  for (const fleet::FleetHostStatus& h : view.hosts) {
    json += HostGlyph(h);
  }
  json += "\",\"metrics\":";
  json += obs::RenderJson(obs::Registry::Global().TakeSnapshot());
  json += "}";
  std::fprintf(out, "%s\n", json.c_str());
}

int RunCluster(const tools::ParsedArgs& args, tools::OutputFormat format) {
  const size_t hosts = static_cast<size_t>(args.UintValue("cluster", 4));
  if (hosts == 0) {
    std::fprintf(stderr, "error: --cluster needs at least one host\n");
    return 2;
  }
  const std::string transport = args.Value("transport", 0, "pipe");
  if (transport != "pipe" && transport != "tcp") {
    std::fprintf(stderr, "error: unknown transport %s\n", transport.c_str());
    return 2;
  }
  const size_t top_k = static_cast<size_t>(args.UintValue("topk", 10));

  fleet::FleetOptions fleet_options;
  fleet_options.stale_after = FromSeconds(args.DoubleValue("stale", 3.0));

  fleet::FleetRunOptions run;
  run.hosts = hosts;
  run.duration = FromSeconds(args.DoubleValue("fleet-seconds", 8.0));
  run.publish_period = FromSeconds(args.DoubleValue("publish", 0.5));
  run.seed = args.UintValue("seed", 2008);
  run.threads = static_cast<size_t>(args.UintValue("fleet-threads", 0));
  if (run.duration <= 0 || run.publish_period <= 0) {
    std::fprintf(stderr, "error: --fleet-seconds and --publish must be positive\n");
    return 2;
  }

  // Both transports end in the same aggregator; only the byte path and the
  // locking differ (the pipe hub drains on this thread, TCP on its own).
  std::unique_ptr<fleet::FleetAggregator> pipe_aggregator;
  std::unique_ptr<fleet::FleetCollector> pipe_collector;
  std::unique_ptr<InProcessPipeHub> hub;
  std::unique_ptr<fleet::FleetTcpServer> server;
  if (transport == "pipe") {
    pipe_aggregator = std::make_unique<fleet::FleetAggregator>(fleet_options);
    pipe_collector = std::make_unique<fleet::FleetCollector>(pipe_aggregator.get());
    hub = std::make_unique<InProcessPipeHub>(pipe_collector->Handler());
    run.connect = [&hub](const std::string& host) { return hub->Connect(host); };
    run.after_round = [&hub](SimTime) { hub->Drain(); };
  } else {
    server = std::make_unique<fleet::FleetTcpServer>(fleet_options);
    std::string error;
    if (!server->Start(&error)) {
      std::fprintf(stderr, "error: fleet server: %s\n", error.c_str());
      return 1;
    }
    const uint16_t port = server->port();
    run.connect = [port](const std::string& host) {
      std::string connect_error;
      auto sink = ConnectTcpStream("127.0.0.1", port, &connect_error);
      if (sink == nullptr) {
        std::fprintf(stderr, "error: %s: %s\n", host.c_str(), connect_error.c_str());
      }
      return sink;
    };
  }

  const fleet::FleetRunResult result = fleet::RunFleet(run);
  fleet::FleetView view;
  uint64_t burst_hosts = 0;
  const std::string burst_label = args.Value("check-fleet-burst", 0);
  const double burst_rate = args.DoubleValue("check-fleet-burst", 0.0, 1);
  if (hub != nullptr) {
    hub->Drain();  // deliver the final frames and closes
    pipe_aggregator->SyncObs();
    view = pipe_aggregator->TakeView(top_k);
    burst_hosts = pipe_aggregator->HostsWithBurst(burst_label, burst_rate);
  } else {
    server->Stop();  // drains every socket, reports every close
    server->SyncObs();
    view = server->View(top_k);
    burst_hosts = server->HostsWithBurst(burst_label, burst_rate);
  }

  if (format == tools::OutputFormat::kJson) {
    PrintFleetJson(stdout, view);
  } else {
    PrintFleetText(stdout, view);
  }

  int rc = 0;
  if (args.Has("check-hosts")) {
    const uint64_t want = args.UintValue("check-hosts", 0);
    if (view.hosts_total != want || view.hosts_live != want) {
      std::fprintf(stderr,
                   "check-hosts FAILED: want %" PRIu64 " live hosts, have %" PRIu64
                   " total / %" PRIu64 " live\n",
                   want, view.hosts_total, view.hosts_live);
      rc = 1;
    }
  }
  if (args.Has("check-fleet-burst")) {
    const double fraction = args.DoubleValue("check-fleet-burst", 0.0, 2);
    const double need = fraction * static_cast<double>(view.hosts_total);
    if (static_cast<double>(burst_hosts) < need) {
      std::fprintf(stderr,
                   "check-fleet-burst FAILED: %s >= %.0f sets/s on %" PRIu64
                   " hosts, need %.1f (%.0f%% of %" PRIu64 ")\n",
                   burst_label.c_str(), burst_rate, burst_hosts, need,
                   fraction * 100.0, view.hosts_total);
      rc = 1;
    }
  }
  if (args.Has("check-clean") && !view.clean()) {
    std::fprintf(stderr,
                 "check-clean FAILED: decode_errors=%" PRIu64 " sequence_gaps=%" PRIu64
                 " duplicates=%" PRIu64 " dirty_closes=%" PRIu64
                 " relay_dropped=%" PRIu64 "\n",
                 view.decode_errors_total, view.sequence_gaps_total,
                 view.duplicates_total, view.dirty_closes_total,
                 view.relay_dropped_total);
    rc = 1;
  }
  if (args.Has("serve-metrics") && SelfScrape() != 0) {
    rc = 1;
  }
  (void)result;
  return rc;
}

}  // namespace
}  // namespace tempo

int main(int argc, char** argv) {
  using namespace tempo;
  static const tools::FlagSpec kFlags[] = {
      {"minutes", 1, "M", "simulated duration (default 2)"},
      {"seed", 1, "S", "workload random seed (default 2008)"},
      {"window", 1, "SECONDS", "rate window (default 1.0)"},
      {"topk", 1, "K", "series shown per table (0 = all; default 10)"},
      {"refresh", 1, "SECONDS", "simulated time between live redraws (default 30)"},
      {"once", 0, "", "no live redraws; print one final view"},
      {"format", 1, "text|json", "final view format (default text)"},
      {"burst-threshold", 1, "RATE", "sets/s that starts a burst (default 5000)"},
      {"burst-clear", 1, "RATE", "sets/s that ends a burst (default 2500)"},
      {"check-burst", 2, "LABEL MIN", "exit 1 unless LABEL burst-peaked >= MIN sets/s"},
      {"check-rate", 3, "LABEL LO HI", "exit 1 unless LABEL mean rate is in [LO, HI]"},
      {"check-slack", 2, "P99MS MINSPANS",
       "exit 1 unless slack p99 <= P99MS ms over >= MINSPANS fired spans"},
      {"serve-metrics", 0, "", "serve /metrics over HTTP and self-scrape it"},
      {"cluster", 1, "HOSTS", "fleet mode: simulate HOSTS desktops, aggregate"},
      {"fleet-seconds", 1, "S", "fleet mode: simulated run length (default 8)"},
      {"publish", 1, "S", "fleet mode: summary publish period (default 0.5)"},
      {"stale", 1, "S", "fleet mode: host staleness threshold (default 3)"},
      {"fleet-threads", 1, "T", "fleet mode: worker threads (0 = auto)"},
      {"transport", 1, "pipe|tcp", "fleet mode: summary transport (default pipe)"},
      {"check-hosts", 1, "N", "exit 1 unless the aggregator saw N live hosts"},
      {"check-fleet-burst", 3, "LABEL RATE FRAC",
       "exit 1 unless LABEL burst >= RATE on FRAC of hosts"},
      {"check-clean", 0, "", "exit 1 if any summary/record was lost"},
      tools::QueueFlag(),
  };
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, kFlags);
  const bool cluster = args.ok() && args.Has("cluster");
  if (!args.ok() || args.positionals().size() != (cluster ? 0 : 1)) {
    if (!args.ok()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    tools::PrintUsage(stderr, argv[0], "<workload> | --cluster HOSTS", kFlags,
                      kWorkloadList);
    return 2;
  }
  tools::OutputFormat format = tools::OutputFormat::kText;
  if (!tools::ParseFormatName(args.Value("format", 0, "text"), &format)) {
    std::fprintf(stderr, "error: unknown format %s\n",
                 args.Value("format").c_str());
    return 2;
  }
  if (cluster) {
    return RunCluster(args, format);
  }
  const std::string& which = args.positionals()[0];
  const std::string queue = tools::ResolveQueueName(args, "hierarchical_wheel");
  if (queue.empty()) {
    return 2;
  }
  const double minutes = args.DoubleValue("minutes", 2.0);
  const uint64_t seed = args.UintValue("seed", 2008);
  const double window_s = args.DoubleValue("window", 1.0);
  const size_t top_k = static_cast<size_t>(args.UintValue("topk", 10));
  const double refresh_s = args.DoubleValue("refresh", 30.0);
  const bool once = args.Has("once");
  if (window_s <= 0) {
    std::fprintf(stderr, "error: --window must be positive\n");
    return 2;
  }

  live::BurstThresholds thresholds;
  thresholds.threshold = args.DoubleValue("burst-threshold", thresholds.threshold);
  thresholds.clear = args.DoubleValue("burst-clear", thresholds.clear);

  RelayChannelSet channels;
  std::unique_ptr<live::LiveAnalyzer> analyzer;
  std::unique_ptr<live::SlackTracker> slack;
  std::unique_ptr<RelayDrainer> drainer;
  LiveTapOptions tap;
  tap.channels = &channels;

  auto ensure_analyzer = [&](const RateGrouping& grouping,
                             const CallsiteRegistry* callsites) {
    if (analyzer != nullptr) {
      return;
    }
    live::LiveOptions live_options;
    live_options.window = FromSeconds(window_s);
    live_options.grouping = grouping;
    live_options.callsites = callsites;
    live_options.burst = thresholds;
    // Enough windows for any plausible interactive run; ~3 rings × series.
    live_options.ring_windows =
        static_cast<size_t>(minutes * 60.0 / window_s) + 16;
    analyzer = std::make_unique<live::LiveAnalyzer>(live_options);
    slack = std::make_unique<live::SlackTracker>();
    drainer = std::make_unique<RelayDrainer>(
        &channels, [&a = *analyzer, &s = *slack](const TraceRecord& r) {
          a.Ingest(r);
          s.Ingest(r);
        });
  };

  // The latency pane: the same report body the offline LatencyPass renders,
  // fed from the live fold.
  auto latency_pane = [&]() {
    std::map<Pid, std::string> names;
    if (tap.processes != nullptr) {
      for (const Process& p : tap.processes->processes()) {
        if (p.pid != kKernelPid) {
          names[p.pid] = p.name;
        }
      }
    }
    return RenderLatencyReport(slack->state(), tap.callsites, names, 5);
  };

  SimTime next_redraw = FromSeconds(refresh_s);
  tap.poll = [&] {
    // First poll: every process is registered by now, so the per-process
    // grouping can be built (the workload filled the back-pointers).
    ensure_analyzer(GroupingFrom(*tap.processes), tap.callsites);
    drainer->Poll();
    if (!once && analyzer->now() >= next_redraw) {
      live::LiveSnapshot snap = analyzer->TakeSnapshot(top_k);
      PrintText(stdout, which, snap, &channels, latency_pane());
      std::fprintf(stdout, "\n");
      next_redraw = analyzer->now() + FromSeconds(refresh_s);
    }
  };

  WorkloadOptions options;
  options.duration = FromSeconds(minutes * 60.0);
  options.seed = seed;
  options.live = &tap;

  TraceRun run;  // keeps the sim/kernel alive until the final snapshot
  if (which == "service") {
    ensure_analyzer(RateGrouping{}, nullptr);
    DriveService(&channels, drainer.get(), options.duration, seed, queue);
  } else if (which == "linux-idle") {
    run = RunLinuxIdle(options);
  } else if (which == "linux-skype") {
    run = RunLinuxSkype(options);
  } else if (which == "linux-firefox") {
    run = RunLinuxFirefox(options);
  } else if (which == "linux-webserver") {
    run = RunLinuxWebserver(options);
  } else if (which == "vista-idle") {
    run = RunVistaIdle(options);
  } else if (which == "vista-skype") {
    run = RunVistaSkype(options);
  } else if (which == "vista-firefox") {
    run = RunVistaFirefox(options);
  } else if (which == "vista-webserver") {
    run = RunVistaWebserver(options);
  } else if (which == "vista-desktop") {
    run = RunVistaDesktop(options);
  } else {
    std::fprintf(stderr, "error: unknown workload %s\n", which.c_str());
    tools::PrintUsage(stderr, argv[0], "<workload>", kFlags, kWorkloadList);
    return 2;
  }
  if (analyzer == nullptr) {
    // Degenerate run (shorter than one poll period): drain what exists.
    ensure_analyzer(tap.processes != nullptr ? GroupingFrom(*tap.processes)
                                             : RateGrouping{},
                    tap.callsites);
  }
  channels.CloseAll();
  drainer->Finish();
  analyzer->SyncObs();
  slack->SyncObs();

  const live::LiveSnapshot snap = analyzer->TakeSnapshot(top_k);
  if (format == tools::OutputFormat::kJson) {
    PrintJson(stdout, which, snap, &channels, slack->state());
  } else {
    PrintText(stdout, which, snap, &channels, latency_pane());
    std::fputs("\nmetrics:\n", stdout);
    std::fputs(obs::RenderText(obs::Registry::Global().TakeSnapshot()).c_str(),
               stdout);
  }

  int rc = 0;
  auto find_series = [&snap](const std::string& label) -> const live::LiveSeriesStats* {
    for (const auto& s : snap.processes) {
      if (s.label == label) {
        return &s;
      }
    }
    return nullptr;
  };
  if (args.Has("check-burst")) {
    const std::string label = args.Value("check-burst", 0);
    const double min_rate = args.DoubleValue("check-burst", 0.0, 1);
    const live::LiveSeriesStats* s = find_series(label);
    if (s == nullptr || s->bursts == 0 || s->burst_peak_rate < min_rate) {
      std::fprintf(stderr,
                   "check-burst FAILED: %s %s (want a burst >= %.0f sets/s)\n",
                   label.c_str(),
                   s == nullptr ? "has no series"
                                : s->bursts == 0 ? "never burst" : "burst too low",
                   min_rate);
      if (s != nullptr) {
        std::fprintf(stderr, "  bursts=%" PRIu64 " burst_peak_rate=%.1f\n",
                     s->bursts, s->burst_peak_rate);
      }
      rc = 1;
    }
  }
  if (args.Has("check-rate")) {
    const std::string label = args.Value("check-rate", 0);
    const double lo = args.DoubleValue("check-rate", 0.0, 1);
    const double hi = args.DoubleValue("check-rate", 0.0, 2);
    const live::LiveSeriesStats* s = find_series(label);
    if (s == nullptr || s->mean_rate < lo || s->mean_rate > hi) {
      std::fprintf(stderr,
                   "check-rate FAILED: %s mean %.1f sets/s not in [%.1f, %.1f]\n",
                   label.c_str(), s == nullptr ? 0.0 : s->mean_rate, lo, hi);
      rc = 1;
    }
  }
  if (args.Has("check-slack")) {
    const double p99_max_ms = args.DoubleValue("check-slack", 0.0, 0);
    const uint64_t min_spans = args.UintValue("check-slack", 0, 1);
    const double p99_ms = ToMilliseconds(
        static_cast<SimDuration>(slack->state().total().Quantile(0.99)));
    if (slack->state().fired_spans() < min_spans || p99_ms > p99_max_ms) {
      std::fprintf(stderr,
                   "check-slack FAILED: %" PRIu64 " fired spans (need >= %" PRIu64
                   "), slack p99 %.3f ms (budget %.3f ms)\n",
                   slack->state().fired_spans(), min_spans, p99_ms, p99_max_ms);
      rc = 1;
    }
  }
  if (args.Has("serve-metrics") && SelfScrape() != 0) {
    rc = 1;
  }
  return rc;
}
