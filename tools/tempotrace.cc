// tempotrace — exports a recorded trace as Chrome trace-event JSON, the
// format the Perfetto UI (ui.perfetto.dev) and chrome://tracing open
// directly. One "X" duration span per pending-timer interval (set ->
// expire/cancel/re-arm), an "i" instant per cancellation, and two counter
// tracks: live-timer depth at every transition and windowed firing-slack
// p99. Reads any trace format (v1/v2/v3).
//
// --check re-reads the written file through a strict JSON parser and
// verifies the trace-event schema (pid/tid/ts/ph on every event, dur on
// every complete event), so a ctest can gate "the export actually opens".

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/latency.h"
#include "src/analysis/lifetimes.h"
#include "src/sim/time.h"
#include "src/trace/file.h"
#include "tools/common.h"

namespace tempo {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Microseconds with nanosecond precision — the trace-event clock unit.
std::string Us(SimTime ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

const char* EndName(EpisodeEnd end) {
  switch (end) {
    case EpisodeEnd::kExpired:
      return "expired";
    case EpisodeEnd::kCanceled:
      return "canceled";
    case EpisodeEnd::kReset:
      return "re-armed";
    case EpisodeEnd::kOpen:
      return "open";
  }
  return "?";
}

struct Event {
  SimTime ts = 0;    // sort key; the emitted ts is Us(ts)
  uint64_t seq = 0;  // insertion order breaks ts ties deterministically
  std::string body;  // complete JSON object
};

// ---------------------------------------------------------------------------
// Minimal strict JSON DOM, just enough to validate what this tool writes
// (and reject what it should not have written).

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const char* key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(const char* data, size_t size) : p_(data), end_(data + size) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    return p_ == end_;  // trailing garbage is a malformed file
  }

 private:
  void SkipWs() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }
  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (static_cast<size_t>(end_ - p_) < n || std::strncmp(p_, lit, n) != 0) {
      return false;
    }
    p_ += n;
    return true;
  }
  bool ParseValue(JsonValue* out) {
    if (p_ == end_) {
      return false;
    }
    switch (*p_) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }
  bool ParseString(std::string* out) {
    if (p_ == end_ || *p_ != '"') {
      return false;
    }
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) {
          return false;
        }
        switch (*p_) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
          case 'f':
            *out += ' ';
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              ++p_;
              if (p_ == end_ || !std::isxdigit(static_cast<unsigned char>(*p_))) {
                return false;
              }
            }
            *out += '?';  // validation only; the code point itself is moot
            break;
          }
          default:
            return false;
        }
        ++p_;
      } else {
        *out += *p_++;
      }
    }
    if (p_ == end_) {
      return false;
    }
    ++p_;  // closing quote
    return true;
  }
  bool ParseNumber(JsonValue* out) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    bool digits = false;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(*p_));
      ++p_;
    }
    if (!digits) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(std::string(start, p_).c_str(), nullptr);
    return true;
  }
  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++p_;  // '['
    SkipWs();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->array.push_back(std::move(v));
      SkipWs();
      if (p_ == end_) {
        return false;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      if (*p_ != ',') {
        return false;
      }
      ++p_;
      SkipWs();
    }
  }
  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++p_;  // '{'
    SkipWs();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (p_ == end_ || *p_ != ':') {
        return false;
      }
      ++p_;
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (p_ == end_) {
        return false;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      if (*p_ != ',') {
        return false;
      }
      ++p_;
      SkipWs();
    }
  }

  const char* p_;
  const char* end_;
};

// Validates the written file against the trace-event schema: a top-level
// object with a non-empty traceEvents array whose every element carries
// numeric pid/tid/ts and a string ph, and whose complete ("X") events
// carry a numeric dur. Returns an empty string on success, else the first
// violation.
std::string ValidateTraceEventFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return "cannot open " + path;
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  std::fclose(f);

  JsonValue root;
  JsonParser parser(bytes.data(), bytes.size());
  if (!parser.Parse(&root)) {
    return "malformed JSON";
  }
  if (root.kind != JsonValue::Kind::kObject) {
    return "top level is not an object";
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return "missing traceEvents array";
  }
  if (events->array.empty()) {
    return "traceEvents is empty";
  }
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    char where[64];
    std::snprintf(where, sizeof(where), "traceEvents[%zu]", i);
    if (e.kind != JsonValue::Kind::kObject) {
      return std::string(where) + " is not an object";
    }
    for (const char* field : {"pid", "tid", "ts"}) {
      const JsonValue* v = e.Find(field);
      if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
        return std::string(where) + " lacks numeric " + field;
      }
    }
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString || ph->string.size() != 1) {
      return std::string(where) + " lacks one-char ph";
    }
    if (ph->string == "X") {
      const JsonValue* dur = e.Find("dur");
      if (dur == nullptr || dur->kind != JsonValue::Kind::kNumber) {
        return std::string(where) + " is complete (X) but lacks numeric dur";
      }
    }
  }
  return "";
}

int Run(int argc, char** argv) {
  static const tools::FlagSpec kFlags[] = {
      {"window-ms", 1, "N", "slack-p99 counter window (default 1000)"},
      {"check", 0, "", "re-read the output and validate the event schema"},
  };
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, kFlags);
  if (!args.ok() || args.positionals().empty() || args.positionals().size() > 2) {
    if (!args.ok()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    tools::PrintUsage(stderr, argv[0], "<trace-file> [out.json]", kFlags,
                      "Exports Chrome trace-event / Perfetto JSON.\n"
                      "Default output: <trace-file>.json\n");
    return 2;
  }
  const std::string& path = args.positionals()[0];
  const std::string out_path =
      args.positionals().size() > 1 ? args.positionals()[1] : path + ".json";
  const SimDuration window =
      FromMilliseconds(static_cast<double>(args.UintValue("window-ms", 1000)));
  if (window <= 0) {
    std::fprintf(stderr, "error: --window-ms must be positive\n");
    return 2;
  }

  TraceReadError read_error = TraceReadError::kIo;
  auto trace = ReadTraceFile(path, &read_error);
  if (!trace.has_value()) {
    tools::PrintTraceReadError(path, read_error);
    return 1;
  }

  const std::vector<Episode> episodes = BuildEpisodes(trace->records);

  std::vector<Event> events;
  events.reserve(episodes.size() * 3);
  uint64_t seq = 0;
  auto add = [&](SimTime ts, std::string body) {
    events.push_back(Event{ts, seq++, std::move(body)});
  };

  // Process/thread names so the Perfetto track labels read like the
  // workload, not like bare ids.
  std::map<Pid, bool> pids_seen;
  for (const Episode& e : episodes) {
    if (pids_seen.emplace(e.pid, true).second) {
      char body[128];
      std::snprintf(body, sizeof(body),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                    "\"ts\":0,\"args\":{\"name\":\"%s\"}}",
                    e.pid, e.pid == kKernelPid ? "kernel" : "process");
      add(0, body);
    }
  }

  std::map<SimTime, int64_t> depth_delta;
  std::map<int64_t, SlackHist> window_slack;  // window index -> fired slacks
  for (const Episode& e : episodes) {
    const std::string name = EscapeJson(trace->callsites.Name(e.callsite));
    std::string body = "{\"name\":\"" + name + "\",\"cat\":\"timer\",\"ph\":\"X\"";
    char fixed[256];
    std::snprintf(fixed, sizeof(fixed),
                  ",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s", e.pid, e.tid,
                  Us(e.set_time).c_str(), Us(e.end_time - e.set_time).c_str());
    body += fixed;
    const SimTime requested = e.set_time + (e.timeout > 0 ? e.timeout : 0);
    char arg[256];
    std::snprintf(arg, sizeof(arg),
                  ",\"args\":{\"timer\":%" PRIu64 ",\"timeout_ms\":%.6f,\"end\":\"%s\"",
                  e.timer, ToMilliseconds(e.timeout), EndName(e.end));
    body += arg;
    if (e.end == EpisodeEnd::kExpired) {
      const uint64_t slack =
          e.end_time > requested ? static_cast<uint64_t>(e.end_time - requested) : 0;
      std::snprintf(arg, sizeof(arg), ",\"slack_ms\":%.6f",
                    ToMilliseconds(static_cast<SimDuration>(slack)));
      body += arg;
      window_slack[e.end_time / window].Record(slack);
    }
    body += "}}";
    add(e.set_time, std::move(body));

    if (e.end == EpisodeEnd::kCanceled) {
      char inst[256];
      std::snprintf(inst, sizeof(inst),
                    "{\"name\":\"cancel %s\",\"cat\":\"timer\",\"ph\":\"i\",\"s\":\"t\","
                    "\"pid\":%d,\"tid\":%d,\"ts\":%s}",
                    name.c_str(), e.pid, e.tid, Us(e.end_time).c_str());
      add(e.end_time, inst);
    }

    depth_delta[e.set_time] += 1;
    depth_delta[e.end_time] -= 1;
  }

  int64_t depth = 0;
  for (const auto& [ts, delta] : depth_delta) {
    depth += delta;
    char body[192];
    std::snprintf(body, sizeof(body),
                  "{\"name\":\"live_timers\",\"ph\":\"C\",\"pid\":0,\"tid\":0,"
                  "\"ts\":%s,\"args\":{\"pending\":%" PRId64 "}}",
                  Us(ts).c_str(), depth);
    add(ts, body);
  }

  if (!window_slack.empty()) {
    const int64_t first = window_slack.begin()->first;
    const int64_t last = window_slack.rbegin()->first;
    for (int64_t w = first; w <= last; ++w) {
      const auto it = window_slack.find(w);
      const double p99 = it == window_slack.end() ? 0.0 : it->second.Quantile(0.99);
      char body[192];
      std::snprintf(body, sizeof(body),
                    "{\"name\":\"slack_p99\",\"ph\":\"C\",\"pid\":0,\"tid\":0,"
                    "\"ts\":%s,\"args\":{\"ms\":%.6f}}",
                    Us(w * window).c_str(), ToMilliseconds(static_cast<SimDuration>(p99)));
      add(w * window, body);
    }
  }

  std::stable_sort(events.begin(), events.end(), [](const Event& x, const Event& y) {
    return x.ts != y.ts ? x.ts < y.ts : x.seq < y.seq;
  });

  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", out);
  for (size_t i = 0; i < events.size(); ++i) {
    std::fputs(events[i].body.c_str(), out);
    std::fputs(i + 1 == events.size() ? "\n" : ",\n", out);
  }
  std::fputs("]}\n", out);
  std::fclose(out);

  std::fprintf(stderr, "%s: %zu events (%zu spans) -> %s\n", path.c_str(), events.size(),
               episodes.size(), out_path.c_str());

  if (args.Has("check")) {
    const std::string violation = ValidateTraceEventFile(out_path);
    if (!violation.empty()) {
      std::fprintf(stderr, "error: schema check failed: %s\n", violation.c_str());
      return 1;
    }
    std::fprintf(stderr, "schema check ok\n");
  }
  return 0;
}

}  // namespace
}  // namespace tempo

int main(int argc, char** argv) { return tempo::Run(argc, argv); }
