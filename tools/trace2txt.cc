// trace2txt — converts a binary tempo trace file to text, one record per
// line (the "user-space program to read out the buffer and convert the
// trace into a textual format" of Section 3.2).
//
// Streams the file chunk by chunk, so a multi-gigabyte trace prints its
// first records immediately and never gets materialized in memory. All
// on-disk formats (flat v1, chunked v2, columnar v3) stream through the
// same TraceChunkReader; a v3 file with a codec this build does not know
// is reported as such, not as corruption.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/trace/chunked.h"
#include "src/trace/codec.h"
#include "src/trace/file.h"
#include "tools/common.h"

int main(int argc, char** argv) {
  using namespace tempo;
  static const tools::FlagSpec kFlags[] = {
      {"limit", 1, "N", "print at most N records (same as the positional limit)"},
  };
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, kFlags);
  if (!args.ok() || args.positionals().empty() || args.positionals().size() > 2) {
    if (!args.ok()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    tools::PrintUsage(stderr, argv[0], "<trace-file> [limit]", kFlags);
    return 2;
  }

  const std::string& path = args.positionals()[0];
  TraceReadError read_error = TraceReadError::kIo;
  const auto reader = TraceChunkReader::Open(path, &read_error);
  if (!reader.has_value()) {
    tools::PrintTraceReadError(path, read_error);
    return 1;
  }

  uint64_t limit = reader->record_count();
  if (args.positionals().size() >= 2) {
    limit = std::strtoull(args.positionals()[1].c_str(), nullptr, 10);
  }
  limit = args.UintValue("limit", limit);

  TraceChunkReader::Cursor cursor = reader->MakeCursor();
  uint64_t printed = 0;
  for (size_t i = 0; i < reader->chunk_count() && printed < limit; ++i) {
    const auto chunk = cursor.Read(i);
    if (!cursor.ok()) {
      tools::PrintTraceReadError(path, cursor.error());
      return 1;
    }
    for (const TraceRecord& record : chunk) {
      if (printed >= limit) {
        break;
      }
      std::printf("%s\n", FormatRecord(record, reader->callsites()).c_str());
      ++printed;
    }
  }
  return 0;
}
