// trace2txt — converts a binary tempo trace file to text, one record per
// line (the "user-space program to read out the buffer and convert the
// trace into a textual format" of Section 3.2).
//
// Usage: trace2txt <trace-file> [limit]

#include <cstdio>
#include <cstdlib>

#include "src/trace/codec.h"
#include "src/trace/file.h"

int main(int argc, char** argv) {
  using namespace tempo;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace-file> [limit]\n", argv[0]);
    return 2;
  }
  const auto trace = ReadTraceFile(argv[1]);
  if (!trace.has_value()) {
    std::fprintf(stderr, "error: cannot read trace file %s\n", argv[1]);
    return 1;
  }
  size_t limit = trace->records.size();
  if (argc >= 3) {
    limit = static_cast<size_t>(std::strtoull(argv[2], nullptr, 10));
  }
  for (size_t i = 0; i < trace->records.size() && i < limit; ++i) {
    std::printf("%s\n", FormatRecord(trace->records[i], trace->callsites).c_str());
  }
  return 0;
}
