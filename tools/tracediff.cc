// tracediff — compares two trace files (e.g. a kernel-feature ablation):
// summary deltas, per-call-site set-count deltas, and values that appear in
// only one trace. Inputs may mix on-disk formats freely (flat v1, chunked
// v2, columnar v3) — ReadTraceFile decodes them all.

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/histogram.h"
#include "src/analysis/summary.h"
#include "src/trace/file.h"
#include "tools/common.h"

namespace {

using namespace tempo;

std::map<std::string, uint64_t> SetsByCallsite(const LoadedTrace& trace) {
  std::map<std::string, uint64_t> out;
  for (const auto& r : trace.records) {
    if (r.op == TimerOp::kSet || r.op == TimerOp::kBlock) {
      ++out[trace.callsites.Name(r.callsite)];
    }
  }
  return out;
}

std::optional<LoadedTrace> LoadOrExplain(const std::string& path) {
  TraceReadError error = TraceReadError::kIo;
  auto trace = ReadTraceFile(path, &error);
  if (!trace.has_value()) {
    tools::PrintTraceReadError(path, error);
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, {});
  if (!args.ok() || args.positionals().size() != 2) {
    if (!args.ok()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    tools::PrintUsage(stderr, argv[0], "<trace-a> <trace-b>", {});
    return 2;
  }
  const std::string& path_a = args.positionals()[0];
  const std::string& path_b = args.positionals()[1];
  const auto a = LoadOrExplain(path_a);
  const auto b = LoadOrExplain(path_b);
  if (!a.has_value() || !b.has_value()) {
    return 1;
  }

  const TraceSummary sa = Summarize(a->records, "A");
  const TraceSummary sb = Summarize(b->records, "B");
  std::printf("%-12s %12s %12s %10s\n", "metric", path_a.c_str(), path_b.c_str(), "delta");
  auto row = [&](const char* name, uint64_t va, uint64_t vb) {
    std::printf("%-12s %12llu %12llu %+10lld\n", name,
                static_cast<unsigned long long>(va), static_cast<unsigned long long>(vb),
                static_cast<long long>(vb) - static_cast<long long>(va));
  };
  row("timers", sa.timers, sb.timers);
  row("accesses", sa.accesses, sb.accesses);
  row("sets", sa.set, sb.set);
  row("expired", sa.expired, sb.expired);
  row("canceled", sa.canceled, sb.canceled);
  row("user", sa.user_space, sb.user_space);
  row("kernel", sa.kernel, sb.kernel);

  std::printf("\nper-call-site set deltas (largest first):\n");
  const auto sets_a = SetsByCallsite(*a);
  const auto sets_b = SetsByCallsite(*b);
  std::set<std::string> names;
  for (const auto& [name, count] : sets_a) {
    names.insert(name);
  }
  for (const auto& [name, count] : sets_b) {
    names.insert(name);
  }
  std::vector<std::pair<long long, std::string>> deltas;
  for (const std::string& name : names) {
    const auto ia = sets_a.find(name);
    const auto ib = sets_b.find(name);
    const long long va = ia == sets_a.end() ? 0 : static_cast<long long>(ia->second);
    const long long vb = ib == sets_b.end() ? 0 : static_cast<long long>(ib->second);
    if (va != vb) {
      deltas.emplace_back(vb - va, name);
    }
  }
  std::sort(deltas.begin(), deltas.end(), [](const auto& x, const auto& y) {
    return std::llabs(x.first) > std::llabs(y.first);
  });
  for (size_t i = 0; i < deltas.size() && i < 25; ++i) {
    std::printf("  %-40s %+10lld\n", deltas[i].second.c_str(), deltas[i].first);
  }
  if (deltas.empty()) {
    std::printf("  (identical per-call-site set counts)\n");
  }
  return 0;
}
