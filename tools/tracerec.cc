// tracerec — records one of the study's workloads to a binary trace file
// that trace2txt / tracestat can consume.
//
// Writes the chunked v2 format by default so the analysis pipeline can
// stream it in parallel; --v1 keeps the legacy flat format for
// compatibility tests and old readers.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/trace/file.h"
#include "src/trace/stream_writer.h"
#include "src/workloads/linux_workloads.h"
#include "src/workloads/vista_workloads.h"
#include "tools/common.h"

namespace {

constexpr const char* kWorkloadList =
    "  workloads: linux-{idle,skype,firefox,webserver},\n"
    "             vista-{idle,skype,firefox,webserver,desktop}\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace tempo;
  static const tools::FlagSpec kFlags[] = {
      {"v1", 0, "", "write the legacy flat v1 format instead of chunked v2"},
      {"chunk-records", 1, "N", "records per v2 chunk (default 65536)"},
      {"stream", 0, "", "write v2 chunks incrementally (streaming writer)"},
  };
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, kFlags);
  const auto& positionals = args.positionals();
  if (!args.ok() || positionals.size() < 2 || positionals.size() > 4) {
    if (!args.ok()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    tools::PrintUsage(stderr, argv[0], "<workload> <output-file> [minutes] [seed]", kFlags,
                      kWorkloadList);
    return 2;
  }

  WorkloadOptions options;
  options.duration = 30 * kMinute;
  options.seed = 2008;
  if (positionals.size() >= 3) {
    options.duration = FromSeconds(std::atof(positionals[2].c_str()) * 60.0);
  }
  if (positionals.size() >= 4) {
    options.seed = std::strtoull(positionals[3].c_str(), nullptr, 10);
  }

  const std::string& which = positionals[0];
  TraceRun run;
  if (which == "linux-idle") {
    run = RunLinuxIdle(options);
  } else if (which == "linux-skype") {
    run = RunLinuxSkype(options);
  } else if (which == "linux-firefox") {
    run = RunLinuxFirefox(options);
  } else if (which == "linux-webserver") {
    run = RunLinuxWebserver(options);
  } else if (which == "vista-idle") {
    run = RunVistaIdle(options);
  } else if (which == "vista-skype") {
    run = RunVistaSkype(options);
  } else if (which == "vista-firefox") {
    run = RunVistaFirefox(options);
  } else if (which == "vista-webserver") {
    run = RunVistaWebserver(options);
  } else if (which == "vista-desktop") {
    run = RunVistaDesktop(options);
  } else {
    std::fprintf(stderr, "error: unknown workload %s\n", which.c_str());
    return 2;
  }

  TraceWriteOptions write_options;
  if (args.Has("v1")) {
    write_options.version = kTraceFileVersion;
  }
  write_options.chunk_records = static_cast<uint32_t>(
      args.UintValue("chunk-records", kDefaultChunkRecords));

  if (args.Has("stream") && args.Has("v1")) {
    std::fprintf(stderr, "error: --stream writes chunked v2 only\n");
    return 2;
  }

  const std::string& output = positionals[1];
  if (args.Has("stream")) {
    // Record-at-a-time through the streaming writer: the output is
    // byte-identical to the buffered WriteTraceFile path (pinned by the
    // tools_stream_identical ctest), but peak memory is one chunk.
    TraceStreamWriter writer(output, &run.callsites(), write_options);
    for (const TraceRecord& record : run.records) {
      writer.Append(record);
    }
    if (!writer.Close()) {
      std::fprintf(stderr, "error: cannot write %s\n", output.c_str());
      return 1;
    }
  } else if (!WriteTraceFile(output, run.records, run.callsites(), write_options)) {
    std::fprintf(stderr, "error: cannot write %s\n", output.c_str());
    return 1;
  }
  std::printf("wrote %zu records (%s, %s simulated) to %s\n", run.records.size(),
              run.label.c_str(), FormatDuration(options.duration).c_str(), output.c_str());
  return 0;
}
