// tracerec — records one of the study's workloads to a binary trace file
// that trace2txt / tracestat / tempoquery can consume.
//
// Writes the chunked v2 format by default so the analysis pipeline can
// stream it in parallel; --v3 selects the columnar format (smaller
// files, zone-map and projection pushdown), --v1 keeps the legacy flat
// format for compatibility tests and old readers. --compress adds the
// TempoLz block codec on top of the v3 stripes — a further ~25% smaller
// on disk at roughly half the scan speed, meant for cold archives.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>

#include "src/trace/file.h"
#include "src/trace/stream_writer.h"
#include "src/workloads/linux_workloads.h"
#include "src/workloads/vista_workloads.h"
#include "tools/common.h"

namespace {

constexpr const char* kWorkloadList =
    "  workloads: linux-{idle,skype,firefox,webserver},\n"
    "             vista-{idle,skype,firefox,webserver,desktop}\n";

// Size of `path`, or 0 when it cannot be measured.
uint64_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || st.st_size < 0) {
    return 0;
  }
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tempo;
  static const tools::FlagSpec kFlags[] = {
      {"v1", 0, "", "write the legacy flat v1 format"},
      {"v2", 0, "", "write the chunked v2 format (the default)"},
      {"v3", 0, "", "write the columnar v3 format"},
      {"compress", 0, "", "v3 only: block-compress chunks (TempoLz)"},
      {"chunk-records", 1, "N", "records per v2/v3 chunk (default 65536)"},
      {"stream", 0, "", "write chunks incrementally (streaming writer, v2/v3)"},
      {"format", 1, "text|json", "report format (default text)"},
  };
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, kFlags);
  const auto& positionals = args.positionals();
  if (!args.ok() || positionals.size() < 2 || positionals.size() > 4) {
    if (!args.ok()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    tools::PrintUsage(stderr, argv[0], "<workload> <output-file> [minutes] [seed]", kFlags,
                      kWorkloadList);
    return 2;
  }
  tools::OutputFormat format = tools::OutputFormat::kText;
  if (args.Has("format") && !tools::ParseFormatName(args.Value("format"), &format)) {
    std::fprintf(stderr, "error: unknown format %s\n", args.Value("format").c_str());
    return 2;
  }
  if (args.Has("v1") + args.Has("v2") + args.Has("v3") > 1) {
    std::fprintf(stderr, "error: --v1, --v2 and --v3 are mutually exclusive\n");
    return 2;
  }

  WorkloadOptions options;
  options.duration = 30 * kMinute;
  options.seed = 2008;
  if (positionals.size() >= 3) {
    options.duration = FromSeconds(std::atof(positionals[2].c_str()) * 60.0);
  }
  if (positionals.size() >= 4) {
    options.seed = std::strtoull(positionals[3].c_str(), nullptr, 10);
  }

  const std::string& which = positionals[0];
  TraceRun run;
  if (which == "linux-idle") {
    run = RunLinuxIdle(options);
  } else if (which == "linux-skype") {
    run = RunLinuxSkype(options);
  } else if (which == "linux-firefox") {
    run = RunLinuxFirefox(options);
  } else if (which == "linux-webserver") {
    run = RunLinuxWebserver(options);
  } else if (which == "vista-idle") {
    run = RunVistaIdle(options);
  } else if (which == "vista-skype") {
    run = RunVistaSkype(options);
  } else if (which == "vista-firefox") {
    run = RunVistaFirefox(options);
  } else if (which == "vista-webserver") {
    run = RunVistaWebserver(options);
  } else if (which == "vista-desktop") {
    run = RunVistaDesktop(options);
  } else {
    std::fprintf(stderr, "error: unknown workload %s\n", which.c_str());
    return 2;
  }

  TraceWriteOptions write_options;
  if (args.Has("v1")) {
    write_options.version = kTraceFileVersion;
  } else if (args.Has("v3")) {
    write_options.version = kTraceFileVersionColumnar;
  }
  write_options.chunk_records = static_cast<uint32_t>(
      args.UintValue("chunk-records", kDefaultChunkRecords));
  if (args.Has("compress")) {
    if (write_options.version != kTraceFileVersionColumnar) {
      std::fprintf(stderr, "error: --compress requires --v3\n");
      return 2;
    }
    write_options.block_codec = BlockCodecId::kTempoLz;
  }

  if (args.Has("stream") && args.Has("v1")) {
    std::fprintf(stderr, "error: --stream writes chunked v2/v3 only\n");
    return 2;
  }

  const std::string& output = positionals[1];
  if (args.Has("stream")) {
    // Record-at-a-time through the streaming writer: the output is
    // byte-identical to the buffered WriteTraceFile path (pinned by the
    // tools_stream_identical ctests), but peak memory is one chunk.
    TraceStreamWriter writer(output, &run.callsites(), write_options);
    for (const TraceRecord& record : run.records) {
      writer.Append(record);
    }
    if (!writer.Close()) {
      std::fprintf(stderr, "error: cannot write %s\n", output.c_str());
      return 1;
    }
  } else if (!WriteTraceFile(output, run.records, run.callsites(), write_options)) {
    std::fprintf(stderr, "error: cannot write %s\n", output.c_str());
    return 1;
  }

  const uint64_t file_bytes = FileSize(output);
  const uint64_t fixed_bytes = run.records.size() * kEncodedRecordSize;
  const double per_record =
      run.records.empty() ? 0.0
                          : static_cast<double>(file_bytes) /
                                static_cast<double>(run.records.size());
  // File size relative to the fixed 48-byte-per-record encoding the
  // v1/v2 formats pay — the compression headline for v3.
  const double ratio = fixed_bytes == 0
                           ? 0.0
                           : static_cast<double>(file_bytes) /
                                 static_cast<double>(fixed_bytes);
  if (format == tools::OutputFormat::kJson) {
    std::printf("{\n");
    std::printf("  \"workload\": \"%s\",\n", run.label.c_str());
    std::printf("  \"output\": \"%s\",\n", output.c_str());
    std::printf("  \"version\": %u,\n", write_options.version);
    std::printf("  \"records\": %zu,\n", run.records.size());
    std::printf("  \"file_bytes\": %llu,\n",
                static_cast<unsigned long long>(file_bytes));
    std::printf("  \"bytes_per_record\": %.3f,\n", per_record);
    std::printf("  \"ratio_vs_fixed48\": %.4f,\n", ratio);
    std::printf("  \"simulated\": \"%s\"\n", FormatDuration(options.duration).c_str());
    std::printf("}\n");
  } else {
    std::printf("wrote %zu records (%s, %s simulated) to %s\n", run.records.size(),
                run.label.c_str(), FormatDuration(options.duration).c_str(),
                output.c_str());
    std::printf("  v%u, %llu bytes, %.1f bytes/record, %.2fx of fixed 48B records\n",
                write_options.version, static_cast<unsigned long long>(file_bytes),
                per_record, ratio);
  }
  return 0;
}
