// tracerec — records one of the study's workloads to a binary trace file
// that trace2txt / tracestat can consume.
//
// Usage: tracerec <workload> <output-file> [minutes] [seed]
//   workload: linux-idle | linux-skype | linux-firefox | linux-webserver |
//             vista-idle | vista-skype | vista-firefox | vista-webserver |
//             vista-desktop

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/trace/file.h"
#include "src/workloads/linux_workloads.h"
#include "src/workloads/vista_workloads.h"

int main(int argc, char** argv) {
  using namespace tempo;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <workload> <output-file> [minutes] [seed]\n"
                 "  workloads: linux-{idle,skype,firefox,webserver},\n"
                 "             vista-{idle,skype,firefox,webserver,desktop}\n",
                 argv[0]);
    return 2;
  }
  WorkloadOptions options;
  options.duration = 30 * kMinute;
  options.seed = 2008;
  if (argc >= 4) {
    options.duration = FromSeconds(std::atof(argv[3]) * 60.0);
  }
  if (argc >= 5) {
    options.seed = static_cast<uint64_t>(std::strtoull(argv[4], nullptr, 10));
  }

  const std::string which = argv[1];
  TraceRun run;
  if (which == "linux-idle") {
    run = RunLinuxIdle(options);
  } else if (which == "linux-skype") {
    run = RunLinuxSkype(options);
  } else if (which == "linux-firefox") {
    run = RunLinuxFirefox(options);
  } else if (which == "linux-webserver") {
    run = RunLinuxWebserver(options);
  } else if (which == "vista-idle") {
    run = RunVistaIdle(options);
  } else if (which == "vista-skype") {
    run = RunVistaSkype(options);
  } else if (which == "vista-firefox") {
    run = RunVistaFirefox(options);
  } else if (which == "vista-webserver") {
    run = RunVistaWebserver(options);
  } else if (which == "vista-desktop") {
    run = RunVistaDesktop(options);
  } else {
    std::fprintf(stderr, "error: unknown workload %s\n", which.c_str());
    return 2;
  }

  if (!WriteTraceFile(argv[2], run.records, run.callsites())) {
    std::fprintf(stderr, "error: cannot write %s\n", argv[2]);
    return 1;
  }
  std::printf("wrote %zu records (%s, %s simulated) to %s\n", run.records.size(),
              run.label.c_str(), FormatDuration(options.duration).c_str(), argv[2]);
  return 0;
}
