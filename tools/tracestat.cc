// tracestat — runs the full analysis pipeline over a recorded trace file:
// summary, usage patterns, value histogram, origins, provenance, and an
// optional blame window.
//
// The analyses run as AnalysisPasses on the parallel streaming pipeline:
// the trace is consumed chunk by chunk (never fully materialized) by
// --jobs workers, and the ordered merge of partial states makes the output
// byte-identical for any worker count — `tracestat t.trc --jobs 8` prints
// exactly what `--jobs 1` does, just faster.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/classify.h"
#include "src/analysis/histogram.h"
#include "src/analysis/latency.h"
#include "src/analysis/origins.h"
#include "src/analysis/pipeline.h"
#include "src/analysis/provenance.h"
#include "src/analysis/summary.h"
#include "src/trace/chunked.h"
#include "src/trace/file.h"
#include "tools/common.h"

int main(int argc, char** argv) {
  using namespace tempo;
  static const tools::FlagSpec kFlags[] = {
      {"jobs", 1, "N", "worker threads (0 = one per core; default 0)"},
      {"format", 1, "text|json", "report format (default text)"},
      {"blame", 2, "<start-s> <end-s>", "append a blame report for [start, end)"},
      {"user-only", 0, "", "value histogram: user-space timeouts only"},
      {"no-jiffies", 0, "", "value histogram: skip kernel jiffy quantisation"},
  };
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, kFlags);
  if (!args.ok() || args.positionals().size() != 1) {
    if (!args.ok()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    tools::PrintUsage(stderr, argv[0], "<trace-file>", kFlags);
    return 2;
  }
  tools::OutputFormat format = tools::OutputFormat::kText;
  if (!tools::ParseFormatName(args.Value("format", 0, "text"), &format)) {
    std::fprintf(stderr, "error: unknown format %s\n", args.Value("format").c_str());
    tools::PrintUsage(stderr, argv[0], "<trace-file>", kFlags);
    return 2;
  }
  const bool user_only = args.Has("user-only");
  const bool jiffies = !args.Has("no-jiffies");
  const double blame_start = args.DoubleValue("blame", -1.0, 0);
  const double blame_end = args.DoubleValue("blame", -1.0, 1);

  const std::string& path = args.positionals()[0];
  TraceReadError read_error = TraceReadError::kIo;
  const auto reader = TraceChunkReader::Open(path, &read_error);
  if (!reader.has_value()) {
    tools::PrintTraceReadError(path, read_error);
    return 1;
  }

  std::vector<std::unique_ptr<AnalysisPass>> passes;
  passes.push_back(std::make_unique<SummaryPass>(path));
  passes.push_back(std::make_unique<ClassifyPass>());
  HistogramOptions histogram_options;
  histogram_options.user_only = user_only;
  histogram_options.jiffy_quantise_kernel = jiffies;
  passes.push_back(std::make_unique<HistogramPass>(histogram_options, jiffies));
  OriginOptions origin_options;
  origin_options.min_percent = 0.5;
  passes.push_back(std::make_unique<OriginsPass>(&reader->callsites(), origin_options));
  passes.push_back(std::make_unique<ProvenancePass>(&reader->callsites()));
  passes.push_back(std::make_unique<LatencyPass>(&reader->callsites()));
  if (blame_start >= 0 && blame_end > blame_start) {
    passes.push_back(std::make_unique<BlamePass>(&reader->callsites(),
                                                 FromSeconds(blame_start),
                                                 FromSeconds(blame_end)));
  }

  PipelineOptions pipeline_options;
  pipeline_options.jobs = static_cast<size_t>(args.UintValue("jobs", 0));
  pipeline_options.stats_label = "tracestat";
  PipelineRunner runner(pipeline_options);
  if (!runner.Run(*reader, passes, &read_error)) {
    tools::PrintTraceReadError(path, read_error);
    return 1;
  }

  if (format == tools::OutputFormat::kJson) {
    JsonRenderSink sink(stdout);
    for (const auto& pass : passes) {
      pass->Render(sink);
    }
    // Storage-side stats (JSON only, so the text report stays stable for
    // the byte-compare tests): what the pipeline actually read from disk.
    const PipelineStats& stats = runner.stats();
    const double per_record =
        stats.records == 0 ? 0.0
                           : static_cast<double>(stats.encoded_bytes) /
                                 static_cast<double>(stats.records);
    const double ratio =
        stats.bytes == 0 ? 0.0
                         : static_cast<double>(stats.encoded_bytes) /
                               static_cast<double>(stats.bytes);
    char storage[512];
    std::snprintf(storage, sizeof(storage),
                  "version %u\nrecords %llu\nchunks_decoded %llu\n"
                  "chunks_skipped %llu\nencoded_bytes %llu\n"
                  "encoded_bytes_per_record %.3f\ncompression_ratio %.4f\n"
                  "mapped %d\n",
                  reader->version(),
                  static_cast<unsigned long long>(stats.records),
                  static_cast<unsigned long long>(stats.chunks),
                  static_cast<unsigned long long>(stats.chunks_skipped),
                  static_cast<unsigned long long>(stats.encoded_bytes), per_record,
                  ratio, reader->mapped() ? 1 : 0);
    sink.Section("storage", storage);
    sink.Finish();
  } else {
    TextRenderSink sink(stdout);
    for (const auto& pass : passes) {
      pass->Render(sink);
    }
  }
  return 0;
}
