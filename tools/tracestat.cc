// tracestat — runs the full analysis pipeline over a recorded trace file:
// summary, usage patterns, value histogram, origins, provenance, and an
// optional blame window.
//
// Usage: tracestat <trace-file> [--blame <start-s> <end-s>] [--user-only]
//                  [--no-jiffies]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/analysis/classify.h"
#include "src/analysis/histogram.h"
#include "src/analysis/origins.h"
#include "src/analysis/provenance.h"
#include "src/analysis/render.h"
#include "src/analysis/summary.h"
#include "src/trace/file.h"

int main(int argc, char** argv) {
  using namespace tempo;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace-file> [--blame <start-s> <end-s>] [--user-only] "
                 "[--no-jiffies]\n",
                 argv[0]);
    return 2;
  }
  bool user_only = false;
  bool jiffies = true;
  double blame_start = -1;
  double blame_end = -1;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--user-only") == 0) {
      user_only = true;
    } else if (std::strcmp(argv[i], "--no-jiffies") == 0) {
      jiffies = false;
    } else if (std::strcmp(argv[i], "--blame") == 0 && i + 2 < argc) {
      blame_start = std::atof(argv[i + 1]);
      blame_end = std::atof(argv[i + 2]);
      i += 2;
    }
  }

  const auto trace = ReadTraceFile(argv[1]);
  if (!trace.has_value()) {
    std::fprintf(stderr, "error: cannot read trace file %s\n", argv[1]);
    return 1;
  }

  const TraceSummary summary = Summarize(trace->records, argv[1]);
  std::printf("%s\n", RenderSummaryTable({summary}).c_str());

  const auto classes = ClassifyTrace(trace->records, ClassifyOptions{});
  std::printf("usage patterns:\n%s\n",
              RenderPatternHistogram({{"trace", PatternHistogram(classes)}}).c_str());

  HistogramOptions histogram_options;
  histogram_options.user_only = user_only;
  histogram_options.jiffy_quantise_kernel = jiffies;
  const ValueHistogram histogram = ComputeValueHistogram(trace->records, histogram_options);
  std::printf("common values:\n%s\n",
              RenderValueHistogram(histogram, jiffies).c_str());

  OriginOptions origin_options;
  origin_options.min_percent = 0.5;
  std::printf("origins:\n%s\n",
              RenderOrigins(ComputeOrigins(trace->records, trace->callsites,
                                           origin_options)).c_str());

  std::printf("provenance:\n%s\n",
              RenderProvenance(BuildProvenanceForest(trace->records,
                                                     trace->callsites)).c_str());

  if (blame_start >= 0 && blame_end > blame_start) {
    const auto blame = BlameWindow(trace->records, trace->callsites,
                                   FromSeconds(blame_start), FromSeconds(blame_end));
    std::printf("%s",
                RenderBlame(blame, FromSeconds(blame_start), FromSeconds(blame_end)).c_str());
  }
  return 0;
}
